//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the deterministic subset of the `rand` 0.8 API the
//! workspace uses: [`rngs::SmallRng`] / [`rngs::StdRng`], seeding via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range`, `gen_bool` and `gen`. The generator is xoshiro256++ seeded
//! through splitmix64 — high-quality and fully deterministic, though the
//! streams differ from upstream `rand` (only reproducibility within this
//! workspace matters).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-length byte array upstream).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64` (splitmix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that `gen_range` can sample from a range.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples one value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Generates a uniform `f64` in `[0, 1)` (subset of upstream `gen`).
    fn gen(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is degenerate for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    /// The "standard" generator — same engine as [`SmallRng`] here.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let f = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
