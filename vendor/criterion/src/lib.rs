//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's
//! benches (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `iter`, `iter_batched`, the `criterion_group!`/`criterion_main!`
//! macros). Measurement is a simple mean over `sample_size` timed
//! iterations with `std::time::Instant` — adequate for relative
//! comparisons, with none of criterion's statistics.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizes for `iter_batched` (all treated identically here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (recorded, not printed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from just a parameter (group name provides the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called `samples` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.samples;
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = self.samples;
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn report(name: &str, b: &Bencher) {
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / b.iters as u32
    };
    println!("bench: {name:<50} {:>12.0} ns/iter", per_iter.as_nanos() as f64);
}

impl Criterion {
    /// Overrides the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput (ignored by this stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
