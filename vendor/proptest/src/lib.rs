//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the (small) subset of proptest that the workspace's property
//! tests use: the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, range / tuple / `collection::vec` /
//! `collection::btree_map` / `bool::ANY` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled inputs so it can be reproduced (generation is fully
//! deterministic — the RNG stream depends only on the case index).

#![warn(missing_docs)]

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The runner internals used by the generated test bodies.
pub mod test_runner {
    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// `prop_assert!` failed with a message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason (upstream constructor shape).
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (inputs don't satisfy the test's assumptions).
        pub fn reject(_reason: impl Into<String>) -> Self {
            TestCaseError::Reject
        }
    }

    /// The deterministic generator handed to strategies.
    #[derive(Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for one case of one property.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0x1ACE5157EED5_u64 ^ case.wrapping_mul(0x9E3779B97F4A7C15),
            }
        }

        /// The next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A uniform index in `[0, n)` (`n > 0`).
        pub fn index(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Strategies: deterministic value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
    }

    /// A strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by collection strategies.
    pub trait SizeBounds {
        /// Samples a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.index((self.end - self.start) as u64) as usize
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.index((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors of values from `element` with length in `len`.
    pub fn vec<S: Strategy, L: SizeBounds>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeBounds> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`; duplicate keys collapse,
    /// so the resulting size is at most the sampled size.
    #[derive(Debug)]
    pub struct BTreeMapStrategy<K, V, L> {
        key: K,
        value: V,
        len: L,
    }

    /// Generates maps with up to `len` entries.
    pub fn btree_map<K, V, L>(key: K, value: V, len: L) -> BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeBounds,
    {
        BTreeMapStrategy { key, value, len }
    }

    impl<K, V, L> Strategy for BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeBounds,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Supports the subset of upstream syntax used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_prop(x in 0u32..100, v in proptest::collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each property function. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut iter: u64 = 0;
            while passed < config.cases {
                iter += 1;
                assert!(
                    iter <= config.cases as u64 * 20 + 1000,
                    "proptest {}: too many rejected cases ({} passed of {})",
                    stringify!($name),
                    passed,
                    config.cases
                );
                let mut __rng = $crate::test_runner::TestRng::for_case(iter);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (iter {}): {}\ninputs: {}",
                            stringify!($name),
                            passed,
                            iter,
                            msg,
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is re-generated) if the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
