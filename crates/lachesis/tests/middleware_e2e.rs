//! End-to-end middleware tests: Lachesis scheduling real (simulated)
//! queries through drivers, the metric store, policies and translators.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    CpuSharesTranslator, LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver,
};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, Nice, SimDuration};
use spe::{
    deploy, Consume, CostModel, EngineConfig, LogicalGraph, Partitioning, PassThrough, Placement,
    Role, RunningQuery, Tuple,
};

/// A pipeline with one expensive "hot" operator that needs more CPU than a
/// fair share when competitors are present.
fn skewed_pipeline(name: &str, rate: f64) -> LogicalGraph {
    let mut b = LogicalGraph::builder(name);
    let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
        Box::new(PassThrough)
    });
    let light = b.op("light", Role::Transform, CostModel::micros(30), 1, || {
        Box::new(PassThrough)
    });
    let hot = b.op("hot", Role::Transform, CostModel::micros(400), 1, || {
        Box::new(PassThrough)
    });
    let light2 = b.op("light2", Role::Transform, CostModel::micros(30), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
        Box::new(Consume)
    });
    b.edge(src, light, Partitioning::Forward);
    b.edge(light, hot, Partitioning::Forward);
    b.edge(hot, light2, Partitioning::Forward);
    b.edge(light2, sink, Partitioning::Forward);
    b.source("gen", src, rate, |seq, now| Tuple::new(now, seq, vec![]));
    b.build().unwrap()
}

struct Setup {
    kernel: Kernel,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
}

/// Deploys `n_queries` skewed pipelines on one odroid-class node.
fn setup(n_queries: usize, rate: f64) -> Setup {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
    let queries = (0..n_queries)
        .map(|i| {
            deploy(
                &mut kernel,
                skewed_pipeline(&format!("q{i}"), rate),
                EngineConfig::storm(),
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
            .unwrap()
        })
        .collect();
    Setup {
        kernel,
        queries,
        store,
    }
}

#[test]
fn lachesis_moves_nice_toward_the_bottleneck() {
    // 3 queries × 5 ops on 4 CPUs at a rate that overloads the hot ops.
    let mut s = setup(3, 2500.0);
    let lachesis = LachesisBuilder::new()
        .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .build();
    lachesis.start(&mut s.kernel);
    s.kernel.run_for(SimDuration::from_secs(10));
    // The hot operator's queue dominates, so its thread must have the best
    // (lowest) nice value in its query.
    for q in &s.queries {
        let hot_idx = 2; // src, light, hot, light2, sink
        let hot_tid = q.cell(hot_idx).thread().unwrap();
        let hot_nice = s.kernel.thread_info(hot_tid).unwrap().nice;
        assert!(
            hot_nice <= Nice::new(0).unwrap(),
            "hot op of {} got nice {hot_nice} (default range is [-5, 5])",
            q.name()
        );
        let light_tid = q.cell(1).thread().unwrap();
        let light_nice = s.kernel.thread_info(light_tid).unwrap().nice;
        assert!(hot_nice < light_nice, "hot prioritized over light");
    }
}

/// The paper's core claim (Figs. 5–10): near saturation, Lachesis-QS
/// sustains higher throughput and much lower latency than default OS
/// scheduling.
#[test]
fn lachesis_qs_beats_default_os_scheduling_near_saturation() {
    let rate = 2400.0;
    let run = |with_lachesis: bool| -> (u64, f64) {
        let mut s = setup(3, rate);
        if with_lachesis {
            let lachesis = LachesisBuilder::new()
                .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
                .policy(
                    0,
                    Scope::AllQueries,
                    QueueSizePolicy::default(),
                    NiceTranslator::new(),
                )
                .build();
            lachesis.start(&mut s.kernel);
        }
        // Warm up, reset, measure.
        s.kernel.run_for(SimDuration::from_secs(5));
        for q in &s.queries {
            q.reset_stats();
        }
        s.kernel.run_for(SimDuration::from_secs(20));
        let egress: u64 = s.queries.iter().map(|q| q.egress_total()).sum();
        let lat: f64 = s
            .queries
            .iter()
            .filter_map(|q| q.latency_histogram().mean())
            .sum::<f64>()
            / s.queries.len() as f64;
        (egress, lat)
    };
    let (os_egress, os_lat) = run(false);
    let (la_egress, la_lat) = run(true);
    assert!(
        la_egress as f64 >= os_egress as f64 * 1.02,
        "throughput: lachesis {la_egress} vs os {os_egress}"
    );
    assert!(
        la_lat < os_lat,
        "latency: lachesis {la_lat} vs os {os_lat}"
    );
}

#[test]
fn cpu_shares_translator_schedules_many_operators() {
    // More operators than nice levels would allow distinct priorities for:
    // use per-operator cgroups like the paper's §6.4.
    let mut s = setup(3, 2000.0);
    let lachesis = LachesisBuilder::new()
        .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            CpuSharesTranslator::new("qs"),
        )
        .build();
    lachesis.start(&mut s.kernel);
    s.kernel.run_for(SimDuration::from_secs(5));
    // Every operator thread ended up in its own lachesis cgroup.
    for q in &s.queries {
        for i in 0..q.op_count() {
            let tid = q.cell(i).thread().unwrap();
            let cg = s.kernel.thread_info(tid).unwrap().cgroup;
            let info = s.kernel.cgroup_info(cg).unwrap();
            assert!(
                info.name.contains("lachesis-qs"),
                "thread of {} in {}",
                q.cell(i).name(),
                info.name
            );
        }
    }
}

#[test]
fn per_query_policies_can_differ() {
    // G3: schedule query 0 with QS/nice and query 1 with QS/cpu.shares.
    // Overload so queue sizes differ and QS produces non-uniform priorities.
    let mut s = setup(2, 3000.0);
    let lachesis = LachesisBuilder::new()
        .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
        .policy(
            0,
            Scope::Query(0),
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .policy(
            0,
            Scope::Query(1),
            QueueSizePolicy::new(SimDuration::from_secs(2)),
            CpuSharesTranslator::new("q1"),
        )
        .build();
    lachesis.start(&mut s.kernel);
    s.kernel.run_for(SimDuration::from_secs(6));
    // Query 0 threads stay in the SPE's root cgroup with adjusted nice;
    // query 1 threads moved into lachesis cgroups.
    let q0_tid = s.queries[0].cell(2).thread().unwrap();
    let q1_tid = s.queries[1].cell(2).thread().unwrap();
    let q0_info = s.kernel.thread_info(q0_tid).unwrap();
    let q1_info = s.kernel.thread_info(q1_tid).unwrap();
    assert_ne!(q0_info.nice, Nice::DEFAULT, "query 0 niced");
    let q1_cg = s.kernel.cgroup_info(q1_info.cgroup).unwrap();
    assert!(q1_cg.name.contains("lachesis-q1"));
}
