//! Middleware crash-recovery end-to-end test: Lachesis is killed at an
//! arbitrary scheduling round mid-experiment, cold-restarted from its
//! crash-recovery snapshot, and must converge to the same final priority
//! assignment as an uninterrupted run (ISSUE acceptance criterion).

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    AdmissionConfig, AdmissionDecision, BindingHealth, Lachesis, LachesisBuilder, NiceTranslator,
    QueueSizePolicy, Scope, SloClass, SnapshotError, StoreDriver, WatchdogConfig,
};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, SimDuration};
use spe::{
    deploy, Consume, CostModel, EngineConfig, LogicalGraph, Partitioning, PassThrough, Placement,
    Role, RunningQuery, Tuple,
};

fn skewed_pipeline(name: &str, rate: f64) -> LogicalGraph {
    let mut b = LogicalGraph::builder(name);
    let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
        Box::new(PassThrough)
    });
    let light = b.op("light", Role::Transform, CostModel::micros(30), 1, || {
        Box::new(PassThrough)
    });
    let hot = b.op("hot", Role::Transform, CostModel::micros(400), 1, || {
        Box::new(PassThrough)
    });
    let light2 = b.op("light2", Role::Transform, CostModel::micros(30), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
        Box::new(Consume)
    });
    b.edge(src, light, Partitioning::Forward);
    b.edge(light, hot, Partitioning::Forward);
    b.edge(hot, light2, Partitioning::Forward);
    b.edge(light2, sink, Partitioning::Forward);
    b.source("gen", src, rate, |seq, now| Tuple::new(now, seq, vec![]));
    b.build().unwrap()
}

struct Setup {
    kernel: Kernel,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
}

fn setup(n_queries: usize, rate: f64) -> Setup {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
    let queries = (0..n_queries)
        .map(|i| {
            deploy(
                &mut kernel,
                skewed_pipeline(&format!("q{i}"), rate),
                EngineConfig::storm(),
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
            .unwrap()
        })
        .collect();
    Setup {
        kernel,
        queries,
        store,
    }
}

fn build_middleware(s: &Setup) -> Lachesis {
    LachesisBuilder::new()
        .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .build()
}

/// The final nice of every operator thread, in deterministic order.
fn final_nices(s: &Setup) -> Vec<i32> {
    s.queries
        .iter()
        .flat_map(|q| {
            (0..q.op_count()).map(|i| {
                let tid = q.cell(i).thread().unwrap();
                s.kernel.thread_info(tid).unwrap().nice.value()
            })
        })
        .collect()
}

const TOTAL: SimDuration = SimDuration::from_secs(30);

/// Uninterrupted reference run: one middleware instance for the full
/// experiment.
fn run_uninterrupted() -> (Vec<i32>, u64) {
    let mut s = setup(2, 2500.0);
    build_middleware(&s).start(&mut s.kernel);
    s.kernel.run_for(TOTAL);
    let egress = s.queries.iter().map(|q| q.egress_total()).sum();
    (final_nices(&s), egress)
}

/// Kill-and-restart run: the middleware is cancelled at `kill_ms` (an
/// arbitrary offset, deliberately not aligned to a scheduling round), the
/// experiment runs headless for `down_ms`, then an identically configured
/// instance restores the last snapshot, re-applies it and resumes.
fn run_interrupted(kill_ms: u64, down_ms: u64) -> (Vec<i32>, u64) {
    let mut s = setup(2, 2500.0);
    let sink = Rc::new(RefCell::new(String::new()));
    let cb = build_middleware(&s).start_with_snapshots(&mut s.kernel, Rc::clone(&sink));

    s.kernel.run_for(SimDuration::from_millis(kill_ms));
    s.kernel.cancel_callback(cb);
    let saved = sink.borrow().clone();
    assert!(
        saved.starts_with("lachesis-snapshot v2"),
        "snapshot written before the kill"
    );

    // The outage: queries keep running, nobody schedules.
    s.kernel.run_for(SimDuration::from_millis(down_ms));

    // Cold restart: fresh instance, same configuration, restore + re-apply.
    let mut restarted = build_middleware(&s);
    restarted.restore(&saved).expect("snapshot restores");
    assert_eq!(
        restarted.binding_health(0),
        Some(BindingHealth::Engaged),
        "health restored from the snapshot"
    );
    assert_eq!(
        restarted.reapply_snapshot(&mut s.kernel),
        1,
        "the saved schedule re-applied cleanly"
    );
    restarted.start(&mut s.kernel);

    s.kernel
        .run_for(TOTAL - SimDuration::from_millis(kill_ms + down_ms));
    let egress = s.queries.iter().map(|q| q.egress_total()).sum();
    (final_nices(&s), egress)
}

#[test]
fn kill_and_restart_converges_to_uninterrupted_schedule() {
    let (reference, egress_ref) = run_uninterrupted();
    // Kill at t=11.3s (mid-experiment, not round-aligned), down for 4s.
    let (restarted, egress_restarted) = run_interrupted(11_300, 4_000);

    assert_eq!(
        restarted, reference,
        "kill-and-restart converged to the uninterrupted final assignment"
    );
    // The assignment is a real skewed schedule, not everything-default:
    // each query's hot operator holds a better nice than its light one.
    let per_query = reference.len() / 2;
    for q in 0..2 {
        let light = reference[q * per_query + 1];
        let hot = reference[q * per_query + 2];
        assert!(
            hot <= 0 && hot < light,
            "query {q}: hot nice {hot} vs light nice {light}"
        );
    }
    // Graceful degradation during the outage, not collapse.
    assert!(egress_restarted > 0, "queries produced throughout");
    let ratio = egress_restarted as f64 / egress_ref as f64;
    assert!(
        ratio > 0.5,
        "restarted run kept most of the throughput: {ratio:.2}"
    );
}

#[test]
fn convergence_holds_at_different_kill_points() {
    let (reference, _) = run_uninterrupted();
    for (kill_ms, down_ms) in [(5_700, 2_000), (19_100, 6_500)] {
        let (restarted, _) = run_interrupted(kill_ms, down_ms);
        assert_eq!(
            restarted, reference,
            "kill at {kill_ms}ms / down {down_ms}ms converged"
        );
    }
}

/// Restoring a snapshot taken mid-outage must reconcile the fresh fault
/// log with the restored health: a non-engaged binding reopens a degraded
/// interval, so the eventual recovery is recorded instead of silently
/// no-opping (`mark_recovered` needs an open interval) and the restored
/// instance never reports the outage window as healthy.
#[test]
fn restore_reopens_degraded_intervals_from_snapshot_health() {
    use lachesis_metrics::FaultPlan;
    use simos::SimTime;

    // Snapshot at 4.5s (one failure in: Degraded) and at 10s (past the
    // consecutive-failure threshold: FallenBack).
    for (kill_ms, expect_fallen_back) in [(4_500u64, false), (10_000, true)] {
        let mut s = setup(1, 1000.0);
        let outage_from = SimTime::ZERO + SimDuration::from_secs(3);
        let outage_until = SimTime::ZERO + SimDuration::from_secs(60);
        let plan = Rc::new(RefCell::new(
            FaultPlan::new(7).fetch_failure(Some("storm"), outage_from, outage_until, 1.0),
        ));
        let sink = Rc::new(RefCell::new(String::new()));
        let faulted = LachesisBuilder::new()
            .driver(
                StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)).with_faults(plan),
            )
            .policy(
                0,
                Scope::AllQueries,
                QueueSizePolicy::default(),
                NiceTranslator::new(),
            )
            .build();
        let cb = faulted.start_with_snapshots(&mut s.kernel, Rc::clone(&sink));
        s.kernel.run_for(SimDuration::from_millis(kill_ms));
        s.kernel.cancel_callback(cb);
        let saved = sink.borrow().clone();

        // Fresh instance with a healthy driver restores mid-outage state.
        let mut restored = build_middleware(&s);
        restored.restore(&saved).expect("snapshot restores");
        let health = restored.binding_health(0).expect("binding exists");
        assert_eq!(
            matches!(health, BindingHealth::FallenBack { .. }),
            expect_fallen_back,
            "kill at {kill_ms}ms: {health:?}"
        );
        assert!(
            !matches!(health, BindingHealth::Engaged),
            "snapshot was taken mid-outage: {health:?}"
        );
        let log = restored.fault_log();
        assert_eq!(
            log.borrow().currently_degraded(),
            vec![0],
            "fresh log reconciled with restored health"
        );
        assert_eq!(
            log.borrow().degraded_intervals()[0].fell_back,
            expect_fallen_back
        );
        assert!(log.borrow().recovery_times().is_empty());

        // With metrics flowing again the binding re-engages, and the
        // recovery closes the reopened interval.
        restored.start(&mut s.kernel);
        s.kernel.run_for(SimDuration::from_secs(10));
        assert!(
            log.borrow().currently_degraded().is_empty(),
            "recovery closed the reopened interval"
        );
        assert_eq!(log.borrow().recovery_times().len(), 1);
    }
}

#[test]
fn restore_round_trips_and_rejects_mismatched_config() {
    let mut s = setup(1, 1000.0);
    let sink = Rc::new(RefCell::new(String::new()));
    build_middleware(&s).start_with_snapshots(&mut s.kernel, Rc::clone(&sink));
    s.kernel.run_for(SimDuration::from_secs(5));
    let saved = sink.borrow().clone();

    // Restoring into an identical instance reproduces the snapshot.
    let mut twin = build_middleware(&s);
    twin.restore(&saved).unwrap();
    assert_eq!(twin.snapshot(), saved, "restore/snapshot round-trips");

    // A differently configured instance refuses the snapshot.
    let mut other = LachesisBuilder::new()
        .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
        .policy(0, Scope::AllQueries, QueueSizePolicy::default(), NiceTranslator::new())
        .policy(0, Scope::Query(0), QueueSizePolicy::default(), NiceTranslator::new())
        .build();
    assert_eq!(
        other.restore(&saved),
        Err(SnapshotError::BindingCountMismatch {
            expected: 2,
            found: 1
        })
    );
    assert_eq!(
        twin.restore("corrupted checkpoint"),
        Err(SnapshotError::BadHeader)
    );
}

fn build_multitenant(s: &Setup) -> Lachesis {
    let mut b = LachesisBuilder::new()
        .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .admission(AdmissionConfig::default())
        .watchdog(WatchdogConfig::default());
    for (i, class) in [SloClass::BestEffort, SloClass::Premium].iter().enumerate() {
        b = b.tenant(&format!("tenant {i}"), 0, i, *class, Box::new(|_| {}));
    }
    b.build()
}

/// v2 snapshots carry the admission demand book and the watchdog ladder:
/// a restart must not forget who holds CPU budget or which tenants were
/// already degraded, and the round trip is byte-exact. A v1 document
/// (no multi-tenant sections) still restores.
#[test]
fn snapshot_v2_round_trips_admission_and_watchdog_state() {
    let mut s = setup(2, 2500.0);
    let mw = build_multitenant(&s);
    let admission = mw.admission_controller().expect("admission configured");

    // Admit one tenant through the middleware-owned controller and queue
    // a second, booking demand and two history records.
    let node = s.queries[0].cell(0).node();
    let small = skewed_pipeline("arriving", 2500.0);
    let big = skewed_pipeline("flash", 9000.0);
    assert_eq!(
        admission
            .borrow_mut()
            .decide(&mut s.kernel, "tenant 0", &small, &[node]),
        AdmissionDecision::Admit
    );
    admission
        .borrow_mut()
        .decide(&mut s.kernel, "tenant 1", &big, &[node]);
    let demand = admission.borrow().tenant_demand("tenant 0");
    assert!(demand.is_some());

    let saved = mw.snapshot();
    assert!(saved.starts_with("lachesis-snapshot v2"));
    assert!(saved.contains("admission tenants=1 records=2"));
    assert!(saved.contains("watchdog "));

    // A fresh twin restores the full multi-tenant state, byte-exactly.
    let mut twin = build_multitenant(&s);
    assert!(twin
        .admission_controller()
        .unwrap()
        .borrow()
        .history()
        .is_empty());
    twin.restore(&saved).expect("v2 snapshot restores");
    let twin_adm = twin.admission_controller().unwrap();
    assert_eq!(twin_adm.borrow().tenant_demand("tenant 0"), demand);
    assert_eq!(twin_adm.borrow().history().len(), 2);
    assert_eq!(twin.snapshot(), saved, "v2 restore/snapshot round-trips");

    // Backward compatibility: a v1 document restores the bindings and
    // leaves the (empty) multi-tenant state untouched.
    let v1 = "lachesis-snapshot v1\nbindings 1\n\
              binding 0 health=engaged next_run=5000000 announced=1 applied=0\n";
    let mut old = build_multitenant(&s);
    old.restore(v1).expect("v1 snapshot still restores");
    assert_eq!(old.binding_health(0), Some(BindingHealth::Engaged));
    assert!(old
        .admission_controller()
        .unwrap()
        .borrow()
        .history()
        .is_empty());
}
