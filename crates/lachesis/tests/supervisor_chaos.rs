//! Chaos end-to-end test: Lachesis scheduling real (simulated) queries
//! while a seeded [`FaultPlan`] breaks metric fetches, corrupts metric
//! points and fails scheduler applies. The supervisor must keep the
//! queries running (no panic), degrade to default CFS during the outage,
//! record everything in the [`FaultLog`], and re-converge the schedule
//! once metrics recover — deterministically under a fixed fault seed.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    BindingHealth, FaultLog, LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver,
    SupervisorConfig,
};
use lachesis_metrics::{FaultPlan, TimeSeriesStore};
use simos::{machines, Kernel, Nice, SimDuration, SimTime};
use spe::{
    deploy, Consume, CostModel, EngineConfig, LogicalGraph, Partitioning, PassThrough, Placement,
    Role, RunningQuery, Tuple,
};

fn skewed_pipeline(name: &str, rate: f64) -> LogicalGraph {
    let mut b = LogicalGraph::builder(name);
    let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
        Box::new(PassThrough)
    });
    let light = b.op("light", Role::Transform, CostModel::micros(30), 1, || {
        Box::new(PassThrough)
    });
    let hot = b.op("hot", Role::Transform, CostModel::micros(400), 1, || {
        Box::new(PassThrough)
    });
    let light2 = b.op("light2", Role::Transform, CostModel::micros(30), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
        Box::new(Consume)
    });
    b.edge(src, light, Partitioning::Forward);
    b.edge(light, hot, Partitioning::Forward);
    b.edge(hot, light2, Partitioning::Forward);
    b.edge(light2, sink, Partitioning::Forward);
    b.source("gen", src, rate, |seq, now| Tuple::new(now, seq, vec![]));
    b.build().unwrap()
}

struct Setup {
    kernel: Kernel,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
}

fn setup(n_queries: usize, rate: f64) -> Setup {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
    let queries = (0..n_queries)
        .map(|i| {
            deploy(
                &mut kernel,
                skewed_pipeline(&format!("q{i}"), rate),
                EngineConfig::storm(),
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
            .unwrap()
        })
        .collect();
    Setup {
        kernel,
        queries,
        store,
    }
}

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// The chaos scenario: point corruption at [4, 6), a total metric outage
/// at [6, 14) (long enough to cross the fallback threshold), and a
/// scheduler-apply fault at [17, 18).
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .nan_values(at(4), at(6), 1.0)
        .metric_dropout(at(4), at(6), 0.3)
        .fetch_failure(Some("storm"), at(6), at(14), 1.0)
        .apply_failure(Some("set_nice"), at(17), at(18), 1.0)
}

struct ChaosRun {
    egress_mid: u64,
    egress_end: u64,
    mean_latency: f64,
    hot_nice: Vec<i32>,
    light_nice: Vec<i32>,
    events: Vec<(&'static str, SimTime, Option<usize>)>,
    errors: Vec<(&'static str, u64)>,
    intervals: usize,
    fell_back: bool,
    recovery_secs: Vec<f64>,
}

fn run_chaos(seed: u64) -> ChaosRun {
    let mut s = setup(3, 2500.0);
    let plan = Rc::new(RefCell::new(chaos_plan(seed)));
    {
        let hook_plan = Rc::clone(&plan);
        s.kernel
            .set_fault_hook(move |op, now| hook_plan.borrow_mut().kernel_fault(op, now));
    }
    let lachesis = LachesisBuilder::new()
        .driver(
            StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store))
                .with_faults(Rc::clone(&plan)),
        )
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .build();
    let log: Rc<RefCell<FaultLog>> = lachesis.fault_log();
    lachesis.start(&mut s.kernel);

    // Through the corruption window and deep into the outage: the binding
    // must be degraded by now (backoff rounds at 6, 7, 9, fallback at 13).
    s.kernel.run_for(SimDuration::from_secs(13) + SimDuration::from_millis(500));
    {
        let log = log.borrow();
        assert_eq!(log.currently_degraded(), vec![0], "binding 0 degraded mid-outage");
        assert!(
            log.degraded_intervals().iter().any(|i| i.fell_back),
            "long outage must trigger the CFS fallback: {log}"
        );
    }
    let egress_mid: u64 = s.queries.iter().map(|q| q.egress_total()).sum();
    assert!(egress_mid > 0, "queries kept producing through the outage");

    // Past recovery: the supervisor must close the degraded interval.
    s.kernel.run_for(SimDuration::from_secs(2) + SimDuration::from_millis(500));
    assert!(
        log.borrow().currently_degraded().is_empty(),
        "binding re-engaged once metrics recovered: {}",
        log.borrow()
    );

    // Through the apply-fault window and out the other side.
    s.kernel.run_for(SimDuration::from_secs(10));
    let egress_end: u64 = s.queries.iter().map(|q| q.egress_total()).sum();
    let mean_latency = s
        .queries
        .iter()
        .filter_map(|q| q.latency_histogram().mean())
        .sum::<f64>()
        / s.queries.len() as f64;
    let nice_of = |q: &RunningQuery, op: usize| -> i32 {
        let tid = q.cell(op).thread().unwrap();
        s.kernel.thread_info(tid).unwrap().nice.value()
    };
    let log = log.borrow();
    ChaosRun {
        egress_mid,
        egress_end,
        mean_latency,
        hot_nice: s.queries.iter().map(|q| nice_of(q, 2)).collect(),
        light_nice: s.queries.iter().map(|q| nice_of(q, 1)).collect(),
        events: log
            .events()
            .iter()
            .map(|e| (e.kind, e.at, e.binding))
            .collect(),
        errors: log.errors_by_kind().iter().map(|(&k, &n)| (k, n)).collect(),
        intervals: log.degraded_intervals().len(),
        fell_back: log.degraded_intervals().iter().any(|i| i.fell_back),
        recovery_secs: log
            .recovery_times()
            .iter()
            .map(|d| d.as_nanos() as f64 / 1e9)
            .collect(),
    }
}

#[test]
fn chaos_run_degrades_and_reconverges() {
    let r = run_chaos(42);

    // Queries completed work throughout; latency stayed bounded.
    assert!(r.egress_end > r.egress_mid, "egress resumed after recovery");
    assert!(
        r.mean_latency.is_finite() && r.mean_latency > 0.0,
        "latency bounded: {}",
        r.mean_latency
    );

    // Both fault windows were observed and recovered from.
    assert!(r.fell_back, "metric outage triggered the CFS fallback");
    assert!(
        r.intervals >= 2,
        "metric outage and apply fault each opened an interval, got {}",
        r.intervals
    );
    assert_eq!(r.recovery_secs.len(), r.intervals, "all intervals closed");
    // The outage began at t=6s and the first post-outage wake is t=14s.
    assert!(
        (7.0..=9.0).contains(&r.recovery_secs[0]),
        "outage recovery took {:.1}s",
        r.recovery_secs[0]
    );
    let kinds: Vec<&str> = r.errors.iter().map(|(k, _)| *k).collect();
    assert!(kinds.contains(&"metric_fetch"), "fetch errors counted: {kinds:?}");
    assert!(kinds.contains(&"apply_kernel"), "apply errors counted: {kinds:?}");

    // Priorities re-converged after recovery: the hot operator again holds
    // the best nice in every query.
    for (q, (&hot, &light)) in r.hot_nice.iter().zip(&r.light_nice).enumerate() {
        assert!(
            hot <= 0 && hot < light,
            "query {q}: hot nice {hot} vs light nice {light} after recovery"
        );
    }
}

#[test]
fn chaos_run_is_deterministic_under_a_fixed_seed() {
    let a = run_chaos(42);
    let b = run_chaos(42);
    assert_eq!(a.events, b.events, "identical fault-log event sequences");
    assert_eq!(a.errors, b.errors, "identical error counters");
    assert_eq!(a.egress_end, b.egress_end, "identical workload outcome");
    assert_eq!(a.hot_nice, b.hot_nice, "identical final schedule");
}

/// Satellite: a policy scope that resolves to zero operators (e.g. a
/// query index that does not exist) must be a clean no-op, not an error.
#[test]
fn zero_operator_scope_is_a_no_op() {
    let mut s = setup(1, 500.0);
    let mut lachesis = LachesisBuilder::new()
        .driver(StoreDriver::storm(s.queries.clone(), Rc::clone(&s.store)))
        .policy(
            0,
            Scope::Query(99),
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .build();
    let log = lachesis.fault_log();
    s.kernel.run_for(SimDuration::from_secs(3));
    lachesis.run_if_due(&mut s.kernel).expect("empty scope is fine");
    assert_eq!(lachesis.binding_health(0), Some(BindingHealth::Engaged));
    assert_eq!(log.borrow().total_errors(), 0);
    // No operator thread was touched: everything still at the default nice.
    for i in 0..s.queries[0].op_count() {
        let tid = s.queries[0].cell(i).thread().unwrap();
        assert_eq!(s.kernel.thread_info(tid).unwrap().nice, Nice::DEFAULT);
    }
}

/// Satellite: the exponential retry backoff must saturate, not overflow.
/// A long outage window combined with a huge configured cap used to wrap
/// `SimDuration` multiplication (`period * 2^63`) and panic in debug
/// builds; the exponent is now capped at 16 doublings and the multiply
/// saturates.
#[test]
fn backoff_saturates_instead_of_overflowing() {
    let cfg = SupervisorConfig {
        max_backoff_periods: u64::MAX,
        ..SupervisorConfig::default()
    };
    let period = SimDuration::from_secs(1);
    // Growth stops at 2^16 periods no matter how long the outage lasts.
    assert_eq!(cfg.backoff(period, 17), period * 65_536);
    assert_eq!(cfg.backoff(period, 64), cfg.backoff(period, 17));
    assert_eq!(cfg.backoff(period, u32::MAX), cfg.backoff(period, 17));
    // Extreme periods saturate instead of wrapping around.
    assert_eq!(cfg.backoff(SimDuration::MAX, u32::MAX), SimDuration::MAX);
    // The default config's cap and early doublings are unchanged.
    let dflt = SupervisorConfig::default();
    assert_eq!(dflt.backoff(period, 1), period);
    assert_eq!(dflt.backoff(period, 2), period * 2);
    assert_eq!(dflt.backoff(period, 3), period * 4);
    assert_eq!(dflt.backoff(period, 9), period * 4);
}
