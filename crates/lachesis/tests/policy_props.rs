//! Property-based tests of policies, normalization and schedules.

use lachesis::{
    min_max, min_max_anchored, to_nice, to_nice_in_range, to_shares, GroupingSchedule, OpRef,
    PriorityKind, SinglePrioritySchedule,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization is monotone: a higher priority never receives a worse
    /// (higher) nice value than a lower priority.
    #[test]
    fn to_nice_is_monotone(values in proptest::collection::vec(0.0f64..1e6, 2..64)) {
        let nices = to_nice(&values, PriorityKind::Linear);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(
                        nices[i] <= nices[j],
                        "priority {} got nice {} but priority {} got nice {}",
                        values[i], nices[i], values[j], nices[j]
                    );
                }
            }
        }
    }

    /// Same for the logarithmic (HR-style) normalization with positive
    /// priorities.
    #[test]
    fn log_to_nice_is_monotone(values in proptest::collection::vec(1e-6f64..1e9, 2..64)) {
        let nices = to_nice(&values, PriorityKind::Logarithmic);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(nices[i] <= nices[j]);
                }
            }
        }
    }

    /// Shares normalization stays in range and is monotone.
    #[test]
    fn to_shares_in_range_and_monotone(
        values in proptest::collection::vec(0.0f64..1e6, 1..64),
        lo in 2u64..256,
        span in 1u64..4096,
    ) {
        let hi = lo + span;
        let shares = to_shares(&values, PriorityKind::Linear, lo, hi);
        for (i, &s) in shares.iter().enumerate() {
            prop_assert!((lo..=hi).contains(&s));
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(shares[i] >= shares[j]);
                }
            }
        }
    }

    /// Range-restricted nice values stay inside the requested range.
    #[test]
    fn to_nice_in_range_respects_bounds(
        values in proptest::collection::vec(0.0f64..1e6, 1..64),
        lo in -20i32..10,
        span in 1i32..20,
    ) {
        let hi = (lo + span).min(19);
        prop_assume!(lo < hi);
        for n in to_nice_in_range(&values, PriorityKind::Linear, lo, hi) {
            prop_assert!((lo..=hi).contains(&n.value()), "nice {n} outside [{lo},{hi}]");
        }
    }

    /// A NaN entry (an injected faulty metric) maps to the midpoint of the
    /// target range and leaves every other entry's normalization exactly
    /// as if the NaN were absent — it can no longer poison priorities.
    #[test]
    fn nan_priorities_do_not_poison_outputs(
        values in proptest::collection::vec(0.0f64..1e6, 2..32),
        pick in 0usize..32,
    ) {
        let idx = pick % values.len();
        let mut poisoned = values.clone();
        poisoned[idx] = f64::NAN;
        let nices = to_nice_in_range(&poisoned, PriorityKind::Linear, -5, 5);
        let shares = to_shares(&poisoned, PriorityKind::Linear, 205, 2048);

        let mut clean = values.clone();
        clean.remove(idx);
        let clean_nices = to_nice_in_range(&clean, PriorityKind::Linear, -5, 5);
        let clean_shares = to_shares(&clean, PriorityKind::Linear, 205, 2048);

        let mut j = 0;
        for i in 0..poisoned.len() {
            prop_assert!((-5..=5).contains(&nices[i].value()), "nice {}", nices[i]);
            prop_assert!((205..=2048).contains(&shares[i]), "shares {}", shares[i]);
            if i != idx {
                prop_assert_eq!(nices[i], clean_nices[j]);
                prop_assert_eq!(shares[i], clean_shares[j]);
                j += 1;
            }
        }
    }

    /// Anchored min-max equals plain min-max whenever the minimum is 0, and
    /// never widens the spread of near-equal positive values.
    #[test]
    fn anchored_min_max_properties(values in proptest::collection::vec(0.0f64..1e6, 2..64)) {
        let base = 1e5;
        let near_equal: Vec<f64> = values.iter().map(|v| base + v % 10.0).collect();
        let out = min_max_anchored(&near_equal, -20.0, 19.0);
        let spread = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - out.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(spread <= 39.0 * (10.0 / base) + 1e-9, "spread {spread}");

        let mut with_zero = values.clone();
        with_zero.push(0.0);
        let a = min_max_anchored(&with_zero, 0.0, 1.0);
        let b = min_max(&with_zero, 0.0, 1.0);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Schedules round-trip: every inserted (op, priority) pair is
    /// retrievable and iteration is sorted by entity.
    #[test]
    fn schedule_round_trip(entries in proptest::collection::btree_map(
        (0usize..8, 0usize..64), -1e9f64..1e9, 0..64)
    ) {
        let sched: SinglePrioritySchedule = entries
            .iter()
            .map(|(&(q, o), &p)| (OpRef::new(q, o), p))
            .collect();
        prop_assert_eq!(sched.len(), entries.len());
        for (&(q, o), &p) in &entries {
            prop_assert_eq!(sched.get(OpRef::new(q, o)), Some(p));
        }
        let order: Vec<OpRef> = sched.iter().map(|(op, _)| op).collect();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(order, sorted);
    }

    /// Per-operator grouping preserves every operator exactly once.
    #[test]
    fn per_operator_grouping_is_a_partition(entries in proptest::collection::btree_map(
        (0usize..4, 0usize..32), 0.0f64..100.0, 1..32)
    ) {
        let sched: SinglePrioritySchedule = entries
            .iter()
            .map(|(&(q, o), &p)| (OpRef::new(q, o), p))
            .collect();
        let grouping = GroupingSchedule::per_operator(&sched);
        prop_assert_eq!(grouping.len(), sched.len());
        let mut seen = std::collections::BTreeSet::new();
        for (_, _, ops) in grouping.iter() {
            prop_assert_eq!(ops.len(), 1);
            prop_assert!(seen.insert(ops[0]), "duplicate op in grouping");
        }
    }
}
