//! SPE drivers (paper §4): the bridge between Lachesis and the engines.
//!
//! A driver pulls runtime information from an SPE's *public* APIs — here,
//! the [`RunningQuery`] monitoring handle (topology, threads) and the
//! Graphite-like metric store the SPE reports into. It never touches SPE
//! internals, which is the paper's central design constraint (G2).

use std::cell::RefCell;
use std::rc::Rc;

use lachesis_metrics::{
    EntityValues, FaultPlan, FetchError, MetricName, MetricSource, TimeSeriesStore,
};
use simos::{SimTime, ThreadId};
use spe::{metric_path, LogicalOpId, RunningQuery, SpeKind};

use crate::entity::OpRef;

/// The abstract driver interface Lachesis' policies and translators use.
///
/// Implementations must also act as a [`MetricSource`] for the metric
/// provider (Algorithm 3 fetches raw metrics through drivers).
pub trait SpeDriver: MetricSource<OpRef> {
    /// The driver's display name.
    fn name(&self) -> &str;
    /// The SPE personality this driver talks to.
    fn kind(&self) -> SpeKind;
    /// The queries managed by this driver. Returns clones of the cheap
    /// `Rc`-backed handles so the set can grow at runtime (tenant churn)
    /// behind a shared cell without invalidating callers.
    fn queries(&self) -> Vec<RunningQuery>;
    /// All physical operators across all queries.
    fn entities(&self) -> Vec<OpRef>;
    /// The kernel thread executing an operator, if bound.
    fn thread_of(&self, op: OpRef) -> Option<ThreadId>;
    /// Downstream physical operators (for path-based policies).
    fn downstream(&self, op: OpRef) -> Vec<OpRef>;
    /// Physical operators implementing a logical operator.
    fn physical_of(&self, query: usize, logical: LogicalOpId) -> Vec<OpRef>;
    /// Logical operators fused into a physical operator.
    fn logical_of(&self, op: OpRef) -> Vec<LogicalOpId>;
    /// Whether the operator's chain ends in an egress.
    fn is_egress(&self, op: OpRef) -> bool;
    /// Re-evaluates the driver's staleness fence against `now`, if it has
    /// one (see [`MirrorDriver::with_fence`](crate::MirrorDriver)). A
    /// fenced driver reports no entities, taking its operators out of
    /// scheduling scope until fresh metrics arrive. Returns `Some(fenced)`
    /// **only when the fence state changed** on this call — the middleware
    /// traces the transition and re-applies the last schedule on unfence —
    /// and `None` otherwise. Drivers without fencing always return `None`.
    fn refresh_fence(&self, _now: SimTime) -> Option<bool> {
        None
    }
}

/// The standard driver: reads topology from [`RunningQuery`] handles and
/// metrics from the shared time-series store, exactly like the paper's
/// Graphite-backed deployment (§6.1). Works for every [`SpeKind`]; what
/// differs per SPE is *which* raw metrics exist in the store.
pub struct StoreDriver {
    kind: SpeKind,
    queries: Rc<RefCell<Vec<RunningQuery>>>,
    store: Rc<RefCell<TimeSeriesStore>>,
    faults: Option<Rc<RefCell<FaultPlan>>>,
}

impl std::fmt::Debug for StoreDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreDriver")
            .field("kind", &self.kind)
            .field("queries", &self.queries.borrow().len())
            .finish_non_exhaustive()
    }
}

impl StoreDriver {
    /// Creates a driver for queries running on one SPE.
    ///
    /// # Panics
    ///
    /// Panics if a query's engine kind differs from `kind`.
    pub fn new(
        kind: SpeKind,
        queries: Vec<RunningQuery>,
        store: Rc<RefCell<TimeSeriesStore>>,
    ) -> Self {
        Self::shared(kind, Rc::new(RefCell::new(queries)), store)
    }

    /// Creates a driver over a *shared* query list: a churn harness keeps
    /// the `Rc` and pushes freshly deployed queries into it while the
    /// middleware runs, so arriving tenants become visible to the policies
    /// at their next round without rebuilding the driver.
    ///
    /// # Panics
    ///
    /// Panics if a query's engine kind differs from `kind`.
    pub fn shared(
        kind: SpeKind,
        queries: Rc<RefCell<Vec<RunningQuery>>>,
        store: Rc<RefCell<TimeSeriesStore>>,
    ) -> Self {
        for q in queries.borrow().iter() {
            assert_eq!(q.kind(), kind, "query {} runs on {:?}", q.name(), q.kind());
        }
        StoreDriver {
            kind,
            queries,
            store,
            faults: None,
        }
    }

    /// Appends a query to the managed set (tenant arrival).
    ///
    /// # Panics
    ///
    /// Panics if the query's engine kind differs from the driver's.
    pub fn add_query(&self, query: RunningQuery) {
        assert_eq!(
            query.kind(),
            self.kind,
            "query {} runs on {:?}",
            query.name(),
            query.kind()
        );
        self.queries.borrow_mut().push(query);
    }

    /// Attaches a [`FaultPlan`] whose rules this driver consults on every
    /// fetch: `FetchFailure` rules make [`MetricSource::try_fetch`] error,
    /// `StaleMetrics`/`FetchLatency` rules shift the store read-cursor back
    /// in time, and `MetricDropout`/`NanValues` rules corrupt individual
    /// points. Sharing one plan between several drivers (and the kernel's
    /// fault hook) keeps the whole experiment on a single seed.
    pub fn with_faults(mut self, faults: Rc<RefCell<FaultPlan>>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Convenience constructor for a Storm driver.
    pub fn storm(queries: Vec<RunningQuery>, store: Rc<RefCell<TimeSeriesStore>>) -> Self {
        Self::new(SpeKind::Storm, queries, store)
    }

    /// Convenience constructor for a Flink driver.
    pub fn flink(queries: Vec<RunningQuery>, store: Rc<RefCell<TimeSeriesStore>>) -> Self {
        Self::new(SpeKind::Flink, queries, store)
    }

    /// Convenience constructor for a Liebre driver.
    pub fn liebre(queries: Vec<RunningQuery>, store: Rc<RefCell<TimeSeriesStore>>) -> Self {
        Self::new(SpeKind::Liebre, queries, store)
    }
}

impl MetricSource<OpRef> for StoreDriver {
    fn source_name(&self) -> &str {
        self.kind.name()
    }

    fn provides(&self, metric: MetricName) -> bool {
        self.kind.exposed_metrics().contains(&metric)
    }

    fn fetch(&self, metric: MetricName) -> EntityValues<OpRef> {
        let store = self.store.borrow();
        let mut out = EntityValues::new();
        for (qi, q) in self.queries.borrow().iter().enumerate() {
            for op in 0..q.op_count() {
                let path = metric_path(self.kind, q.name(), op, metric);
                if let Some((t, v)) = store.latest(&path) {
                    out.insert_at(OpRef::new(qi, op), v, t);
                }
            }
        }
        out
    }

    fn try_fetch(&self, metric: MetricName, now: SimTime) -> Result<EntityValues<OpRef>, FetchError> {
        let Some(faults) = &self.faults else {
            return Ok(self.fetch(metric));
        };
        let mut plan = faults.borrow_mut();
        let name = self.kind.name();
        if plan.fetch_fails(name, now) {
            return Err(FetchError::new(format!(
                "injected fetch failure for {name} at {now:?}"
            )));
        }
        let cutoff = plan.fetch_cutoff(name, now);
        let store = self.store.borrow();
        let mut out = EntityValues::new();
        for (qi, q) in self.queries.borrow().iter().enumerate() {
            for op in 0..q.op_count() {
                let path = metric_path(self.kind, q.name(), op, metric);
                let point = match cutoff {
                    Some(t) => store.latest_at(&path, t),
                    None => store.latest(&path),
                };
                let Some((t, v)) = point else { continue };
                let fault = plan.point_fault(name, now);
                if fault.drop {
                    continue;
                }
                let v = if fault.nan { f64::NAN } else { v };
                out.insert_at(OpRef::new(qi, op), v, t);
            }
        }
        Ok(out)
    }
}

impl SpeDriver for StoreDriver {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn kind(&self) -> SpeKind {
        self.kind
    }

    fn queries(&self) -> Vec<RunningQuery> {
        self.queries.borrow().clone()
    }

    fn entities(&self) -> Vec<OpRef> {
        let mut out = Vec::new();
        for (qi, q) in self.queries.borrow().iter().enumerate() {
            for op in 0..q.op_count() {
                out.push(OpRef::new(qi, op));
            }
        }
        out
    }

    fn thread_of(&self, op: OpRef) -> Option<ThreadId> {
        self.queries.borrow().get(op.query)?.cell(op.op).thread()
    }

    fn downstream(&self, op: OpRef) -> Vec<OpRef> {
        let queries = self.queries.borrow();
        let Some(q) = queries.get(op.query) else {
            return Vec::new();
        };
        let mut out: Vec<OpRef> = q.physical().ops[op.op]
            .out_edges
            .iter()
            .flat_map(|e| e.targets.iter().map(|&t| OpRef::new(op.query, t)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn physical_of(&self, query: usize, logical: LogicalOpId) -> Vec<OpRef> {
        let queries = self.queries.borrow();
        let Some(q) = queries.get(query) else {
            return Vec::new();
        };
        q.physical()
            .physical_of(logical)
            .iter()
            .map(|&p| OpRef::new(query, p))
            .collect()
    }

    fn logical_of(&self, op: OpRef) -> Vec<LogicalOpId> {
        self.queries
            .borrow()
            .get(op.query)
            .map(|q| q.physical().ops[op.op].chain.clone())
            .unwrap_or_default()
    }

    fn is_egress(&self, op: OpRef) -> bool {
        self.queries
            .borrow()
            .get(op.query)
            .is_some_and(|q| q.physical().ops[op.op].egress.is_some())
    }
}
