//! Additional scheduling policies from the literature the paper cites
//! (§7): the **Chain** policy (Babcock et al., SIGMOD '03) that minimizes
//! memory usage, and the **Rate-Based** policy (Urhan & Franklin,
//! VLDB '01) that minimizes single-query average latency — both expressible
//! unchanged on Lachesis' metric/translator interfaces (G1).

use lachesis_metrics::{names, MetricName};
use simos::SimDuration;

use crate::normalize::PriorityKind;
use crate::policies::best_output_path;
use crate::policy::{Policy, PolicyView};
use crate::schedule::SinglePrioritySchedule;

/// **Chain** \[6\]: prioritizes operators that release buffered memory the
/// fastest. An operator's *memory release rate* is `(1 − selectivity) /
/// cost` along its steepest downstream segment: running it sheds queued
/// tuples at that rate. Keeping total queue memory minimal is the policy's
/// goal (the paper's §7 notes Lachesis can host it unchanged).
#[derive(Debug, Clone)]
pub struct ChainPolicy {
    period: SimDuration,
}

impl ChainPolicy {
    /// Creates the policy with the given scheduling period.
    pub fn new(period: SimDuration) -> Self {
        ChainPolicy { period }
    }
}

impl Default for ChainPolicy {
    fn default() -> Self {
        Self::new(SimDuration::from_secs(1))
    }
}

impl Policy for ChainPolicy {
    fn name(&self) -> &str {
        "chain"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        vec![names::COST, names::SELECTIVITY, names::QUEUE_SIZE]
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        view.scope
            .iter()
            .map(|&op| {
                let sel = view.metric_of(names::SELECTIVITY, op).unwrap_or(1.0);
                let cost = view.metric_of(names::COST, op).unwrap_or(1e-6).max(1e-9);
                let backlog = view.metric_of(names::QUEUE_SIZE, op).unwrap_or(0.0);
                // Memory release rate of the operator itself; operators with
                // nothing queued release nothing.
                let release = (1.0 - sel).max(0.0) / cost;
                (op, if backlog > 0.0 { release } else { 0.0 })
            })
            .collect()
    }
}

/// **Rate-Based (RB)** \[55\]: prioritizes the operator path with the
/// highest *output rate* toward the sink of a single query — the
/// single-query specialization of Highest-Rate (the paper's §7 notes HR
/// supersedes it for multi-query workloads).
#[derive(Debug, Clone)]
pub struct RateBasedPolicy {
    period: SimDuration,
}

impl RateBasedPolicy {
    /// Creates the policy with the given scheduling period.
    pub fn new(period: SimDuration) -> Self {
        RateBasedPolicy { period }
    }
}

impl Default for RateBasedPolicy {
    fn default() -> Self {
        Self::new(SimDuration::from_secs(1))
    }
}

impl Policy for RateBasedPolicy {
    fn name(&self) -> &str {
        "rb"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        vec![names::COST, names::SELECTIVITY]
    }

    fn priority_kind(&self) -> PriorityKind {
        PriorityKind::Logarithmic
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        // Identical path machinery to HR, but weighted by the operator's
        // own processing rate (1/cost) rather than the global rate — the
        // original RB formulation for one query.
        view.scope
            .iter()
            .map(|&op| {
                let (psel, pcost) = best_output_path(view.driver, op, &|o| {
                    (
                        view.metric_of(names::SELECTIVITY, o).unwrap_or(1.0),
                        view.metric_of(names::COST, o).unwrap_or(1e-6),
                    )
                });
                let own_cost = view.metric_of(names::COST, op).unwrap_or(1e-6).max(1e-9);
                (op, (psel / pcost.max(1e-12)) / own_cost)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::OpRef;
    use crate::driver::SpeDriver;
    use lachesis_metrics::{EntityValues, MetricProvider, MetricSource};
    use simos::SimTime;

    /// Pipeline 0 -> 1 -> 2 with per-op (selectivity, cost, queue).
    struct Src(Vec<(f64, f64, f64)>);
    impl MetricSource<OpRef> for Src {
        fn source_name(&self) -> &str {
            "src"
        }
        fn provides(&self, m: MetricName) -> bool {
            m == names::COST || m == names::SELECTIVITY || m == names::QUEUE_SIZE
        }
        fn fetch(&self, m: MetricName) -> EntityValues<OpRef> {
            self.0
                .iter()
                .enumerate()
                .map(|(i, &(sel, cost, q))| {
                    let v = if m == names::SELECTIVITY {
                        sel
                    } else if m == names::COST {
                        cost
                    } else {
                        q
                    };
                    (OpRef::new(0, i), v)
                })
                .collect()
        }
    }

    struct PipeDriver(usize);
    impl MetricSource<OpRef> for PipeDriver {
        fn source_name(&self) -> &str {
            "pipe"
        }
        fn provides(&self, _m: MetricName) -> bool {
            false
        }
        fn fetch(&self, _m: MetricName) -> EntityValues<OpRef> {
            Default::default()
        }
    }
    impl SpeDriver for PipeDriver {
        fn name(&self) -> &str {
            "pipe"
        }
        fn kind(&self) -> spe::SpeKind {
            spe::SpeKind::Liebre
        }
        fn queries(&self) -> Vec<spe::RunningQuery> {
            Vec::new()
        }
        fn entities(&self) -> Vec<OpRef> {
            (0..self.0).map(|o| OpRef::new(0, o)).collect()
        }
        fn thread_of(&self, _op: OpRef) -> Option<simos::ThreadId> {
            None
        }
        fn downstream(&self, op: OpRef) -> Vec<OpRef> {
            if op.op + 1 < self.0 {
                vec![OpRef::new(0, op.op + 1)]
            } else {
                vec![]
            }
        }
        fn physical_of(&self, query: usize, logical: usize) -> Vec<OpRef> {
            vec![OpRef::new(query, logical)]
        }
        fn logical_of(&self, op: OpRef) -> Vec<usize> {
            vec![op.op]
        }
        fn is_egress(&self, op: OpRef) -> bool {
            op.op == self.0 - 1
        }
    }

    fn schedule_with(
        policy: &mut dyn Policy,
        metrics: Vec<(f64, f64, f64)>,
    ) -> SinglePrioritySchedule {
        let n = metrics.len();
        let mut provider = MetricProvider::new();
        for m in policy.required_metrics() {
            provider.register(m);
        }
        provider.update(SimTime::ZERO, &[&Src(metrics)]).unwrap();
        let driver = PipeDriver(n);
        let scope: Vec<OpRef> = (0..n).map(|o| OpRef::new(0, o)).collect();
        let view = PolicyView::new(SimTime::ZERO, &driver, &scope, &provider, 0);
        policy.schedule(&view)
    }

    #[test]
    fn chain_prefers_selective_cheap_backlogged_ops() {
        let mut chain = ChainPolicy::default();
        // op0: drops half its input cheaply with backlog;
        // op1: passes everything (releases nothing);
        // op2: drops a lot but is expensive.
        let s = schedule_with(
            &mut chain,
            vec![(0.5, 1e-4, 10.0), (1.0, 1e-4, 10.0), (0.1, 1e-2, 10.0)],
        );
        let p0 = s.get(OpRef::new(0, 0)).unwrap();
        let p1 = s.get(OpRef::new(0, 1)).unwrap();
        let p2 = s.get(OpRef::new(0, 2)).unwrap();
        assert!(p0 > p2, "cheap filter beats expensive filter: {p0} vs {p2}");
        assert_eq!(p1, 0.0, "pass-through releases no memory");
    }

    #[test]
    fn chain_ignores_empty_queues() {
        let mut chain = ChainPolicy::default();
        let s = schedule_with(&mut chain, vec![(0.5, 1e-4, 0.0), (0.5, 1e-4, 5.0)]);
        assert_eq!(s.get(OpRef::new(0, 0)), Some(0.0));
        assert!(s.get(OpRef::new(0, 1)).unwrap() > 0.0);
    }

    #[test]
    fn rate_based_prefers_fast_ops_near_sink() {
        let mut rb = RateBasedPolicy::default();
        let s = schedule_with(
            &mut rb,
            vec![(1.0, 1e-4, 0.0), (1.0, 1e-4, 0.0), (1.0, 1e-4, 0.0)],
        );
        // Same cost everywhere: the sink-adjacent op has the shortest
        // (cheapest) path and wins.
        let p: Vec<f64> = (0..3).map(|o| s.get(OpRef::new(0, o)).unwrap()).collect();
        assert!(p[2] > p[1] && p[1] > p[0], "{p:?}");
    }

    #[test]
    fn metadata() {
        assert_eq!(ChainPolicy::default().name(), "chain");
        assert_eq!(RateBasedPolicy::default().name(), "rb");
        assert_eq!(
            RateBasedPolicy::default().priority_kind(),
            PriorityKind::Logarithmic
        );
    }
}
