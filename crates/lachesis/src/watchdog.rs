//! Starvation detection and graceful degradation under overload.
//!
//! When demand exceeds capacity, nice-based schedules can leave the
//! lowest-priority operators with *no* CPU at all — queues grow, latency
//! explodes, and the policies (which need fresh metrics from those very
//! operators) cannot fix it. The [`StarvationWatchdog`] rides the
//! middleware loop: from the metrics the policies already pull it detects
//! operators that received no CPU for N consecutive rounds despite having
//! queued input, escalates their priority floor (a nice boost the next
//! policy round can override once the operator runs again), and — if
//! starvation persists — triggers graceful degradation of the most
//! expendable tenant (shed-mode flip or suspension via its registered
//! hook). Every decision is traced as a supervisor-track instant.

use std::collections::HashMap;
use std::rc::Rc;

use lachesis_metrics::{names, MetricProvider, Sample};
use simos::{Kernel, Nice, SimTime, TraceEvent, TraceTrack};

use crate::admission::SloClass;
use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::supervisor::FaultLog;

/// Tunables of the starvation watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive starved rounds before the first priority boost.
    pub starved_rounds: u32,
    /// Nice decrement applied per escalation level.
    pub escalate_step: i32,
    /// The lowest (strongest) nice the escalation ladder reaches.
    pub escalate_limit: i32,
    /// Consecutive starved rounds before a tenant is degraded. Must be
    /// ≥ [`starved_rounds`](Self::starved_rounds): boosts get a chance
    /// to work before anyone is degraded.
    pub degrade_after: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            starved_rounds: 2,
            escalate_step: 3,
            escalate_limit: -15,
            degrade_after: 6,
        }
    }
}

/// A degradation hook: flips the tenant's query to shed mode, zeroes its
/// source rate, or whatever else makes the tenant cheaper. Runs at most
/// once per tenant.
pub type DegradeHook = Box<dyn FnMut(&mut Kernel)>;

pub(crate) struct TenantEntry {
    pub name: String,
    pub driver_idx: usize,
    pub query_idx: usize,
    pub class: SloClass,
    pub degraded: bool,
    pub hook: DegradeHook,
}

#[derive(Debug, Default, Clone, Copy)]
struct OpWatch {
    /// Cumulative CPU seconds (or tuples, for SPEs without a CPU-time
    /// metric) at the last observed sample.
    last_progress: Option<f64>,
    /// Timestamp of that sample: an unchanged timestamp means no fresh
    /// data, not starvation.
    last_at: Option<SimTime>,
    starved: u32,
    level: u32,
}

/// Detects starved operators from pulled metrics, escalates their
/// priority floor and degrades tenants when starvation persists.
///
/// Owned by [`Lachesis`](crate::Lachesis) (see
/// [`LachesisBuilder::watchdog`](crate::LachesisBuilder::watchdog)); runs
/// once per middleware wake, after the policy rounds, so its boosts
/// override this round's schedule and the next healthy round can take
/// back over.
pub struct StarvationWatchdog {
    config: WatchdogConfig,
    watch: HashMap<(usize, OpRef), OpWatch>,
    tenants: Vec<TenantEntry>,
}

impl std::fmt::Debug for StarvationWatchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StarvationWatchdog")
            .field("config", &self.config)
            .field("tenants", &self.tenants.len())
            .finish_non_exhaustive()
    }
}

impl StarvationWatchdog {
    pub(crate) fn new(config: WatchdogConfig) -> Self {
        StarvationWatchdog {
            config,
            watch: HashMap::new(),
            tenants: Vec::new(),
        }
    }

    pub(crate) fn add_tenant(&mut self, entry: TenantEntry) {
        self.tenants.push(entry);
    }

    /// Metrics the watchdog needs registered with the provider.
    pub(crate) fn required_metrics() -> [lachesis_metrics::MetricName; 3] {
        [names::CPU_TIME, names::TUPLES_IN, names::QUEUE_SIZE]
    }

    /// The watchdog's recoverable state, for crash-recovery snapshots
    /// (key-sorted so identical state encodes identically).
    pub(crate) fn export_state(&self) -> crate::snapshot::WatchdogSnapshot {
        let mut watch: Vec<_> = self
            .watch
            .iter()
            .map(|(&k, &w)| (k, (w.last_progress, w.last_at, w.starved, w.level)))
            .collect();
        watch.sort_by_key(|&(k, _)| k);
        crate::snapshot::WatchdogSnapshot {
            watch,
            degraded: self.tenants.iter().map(|t| t.degraded).collect(),
        }
    }

    /// Restores the starvation ladder and degraded flags from snapshotted
    /// state. Tenant flags pair up by registration order; a count mismatch
    /// (reconfigured tenant set) restores the overlapping prefix only.
    pub(crate) fn import_state(&mut self, state: crate::snapshot::WatchdogSnapshot) {
        self.watch = state
            .watch
            .into_iter()
            .map(|(k, (last_progress, last_at, starved, level))| {
                (
                    k,
                    OpWatch {
                        last_progress,
                        last_at,
                        starved,
                        level,
                    },
                )
            })
            .collect();
        for (t, d) in self.tenants.iter_mut().zip(state.degraded) {
            t.degraded = d;
        }
    }

    /// One watchdog round over every driver's operators.
    pub(crate) fn run(
        &mut self,
        kernel: &mut Kernel,
        drivers: &[Rc<dyn SpeDriver>],
        provider: &MetricProvider<OpRef>,
        log: &mut FaultLog,
    ) {
        let now = kernel.now();
        let mut worst: Option<(usize, OpRef, u32)> = None;
        for (di, driver) in drivers.iter().enumerate() {
            let cpu = provider.get(di, names::CPU_TIME);
            let tuples = provider.get(di, names::TUPLES_IN);
            let queue = provider.get(di, names::QUEUE_SIZE);
            let mut entities = driver.entities();
            entities.sort_unstable();
            for op in entities {
                // Progress signal: cumulative CPU time where the SPE
                // exposes it, cumulative input tuples otherwise.
                let progress: Option<Sample> = cpu
                    .and_then(|v| v.sample(&op))
                    .or_else(|| tuples.and_then(|v| v.sample(&op)));
                let queued = queue
                    .and_then(|v| v.sample(&op))
                    .map(|s| s.value)
                    .unwrap_or(0.0);
                let w = self.watch.entry((di, op)).or_default();
                let Some(sample) = progress else { continue };
                if w.last_at.is_some() && w.last_at == sample.at {
                    // Stale fetch (dropout/outage): no new information,
                    // so neither count nor clear starvation.
                    continue;
                }
                let delta = sample.value - w.last_progress.unwrap_or(sample.value);
                let had_baseline = w.last_progress.is_some();
                w.last_progress = Some(sample.value);
                w.last_at = sample.at;
                // Starved: a fresh sample shows zero progress while input
                // is queued. Negative deltas are stat resets (warm-up
                // end): re-anchor without judging.
                if had_baseline && delta == 0.0 && queued > 0.0 {
                    w.starved += 1;
                } else {
                    w.starved = 0;
                    w.level = 0;
                    continue;
                }
                if w.starved >= self.config.starved_rounds {
                    self.boost(kernel, drivers, di, op);
                }
                let s = self.watch[&(di, op)].starved;
                if s >= self.config.degrade_after
                    && worst.is_none_or(|(_, _, ws)| s > ws)
                {
                    worst = Some((di, op, s));
                }
            }
        }
        if let Some((di, op, rounds)) = worst {
            self.degrade(kernel, log, now, di, op, rounds);
        }
    }

    /// Raises the operator's priority floor one escalation level.
    fn boost(
        &mut self,
        kernel: &mut Kernel,
        drivers: &[Rc<dyn SpeDriver>],
        di: usize,
        op: OpRef,
    ) {
        let Some(tid) = drivers[di].thread_of(op) else {
            return;
        };
        let w = self.watch.get_mut(&(di, op)).expect("entry exists");
        w.level += 1;
        let nice_val = (-(w.level as i64 * self.config.escalate_step as i64))
            .max(self.config.escalate_limit as i64) as i32;
        let Ok(nice) = Nice::new(nice_val) else {
            return;
        };
        if kernel.set_nice(tid, nice).is_err() {
            return;
        }
        let rounds = w.starved;
        if let Some(t) = kernel.trace_sink() {
            t.borrow_mut().push(
                kernel.now(),
                TraceEvent::Instant {
                    track: TraceTrack::Supervisor,
                    name: "starve_boost",
                    args: vec![
                        ("driver", di as f64),
                        ("query", op.query as f64),
                        ("op", op.op as f64),
                        ("nice", nice_val as f64),
                        ("rounds", rounds as f64),
                    ],
                },
            );
        }
    }

    /// Degrades the most expendable non-degraded tenant: lowest SLO
    /// class first, registration order as the tiebreak.
    fn degrade(
        &mut self,
        kernel: &mut Kernel,
        log: &mut FaultLog,
        now: SimTime,
        di: usize,
        op: OpRef,
        rounds: u32,
    ) {
        // Never sacrifice a higher class than the one starving: if the
        // starved operator belongs to a registered tenant, the victim's
        // class must not exceed it (degrading a Premium tenant to save a
        // BestEffort one would invert the SLO order).
        let starving_class = self
            .tenants
            .iter()
            .find(|t| t.driver_idx == di && t.query_idx == op.query)
            .map(|t| t.class);
        let Some(ti) = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.degraded)
            .filter(|(_, t)| starving_class.is_none_or(|c| t.class <= c))
            .min_by_key(|(i, t)| (t.class, *i))
            .map(|(i, _)| i)
        else {
            return;
        };
        let t = &mut self.tenants[ti];
        t.degraded = true;
        (t.hook)(kernel);
        log.note(
            now,
            None,
            "watchdog_degrade",
            format!(
                "operator q{}op{} of driver {di} starved {rounds} rounds; degraded tenant {}",
                op.query, op.op, t.name
            ),
        );
        let class = t.class;
        if let Some(tr) = kernel.trace_sink() {
            tr.borrow_mut().push(
                kernel.now(),
                TraceEvent::Instant {
                    track: TraceTrack::Supervisor,
                    name: "degrade_tenant",
                    args: vec![
                        ("tenant", ti as f64),
                        ("class", class.code()),
                        ("driver", di as f64),
                        ("query", op.query as f64),
                        ("op", op.op as f64),
                        ("rounds", rounds as f64),
                    ],
                },
            );
        }
        // Give the degradation a full window to take effect before the
        // next tenant is considered.
        for w in self.watch.values_mut() {
            w.starved = 0;
        }
    }
}
