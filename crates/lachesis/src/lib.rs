//! # lachesis — a middleware for customizing OS scheduling of stream
//! processing queries
//!
//! A faithful Rust reproduction of *Lachesis* (Palyvos-Giannas, Mencagli,
//! Papatriantafilou, Gulisano — Middleware '21). Lachesis runs **outside**
//! the stream processing engines: it pulls runtime metrics through per-SPE
//! [drivers](SpeDriver), computes operator priorities with pluggable
//! [scheduling policies](Policy), and enforces them by steering the OS
//! scheduler through [translators](Translator) built on `nice` and cgroup
//! `cpu.shares` — never modifying the SPE or the queries.
//!
//! The OS here is the [`simos`] simulator and the SPEs are the [`spe`]
//! substrate engines, so whole experiments are deterministic.
//!
//! ## Quickstart
//!
//! ```no_run
//! use lachesis::{LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver};
//! use simos::Kernel;
//! # fn queries() -> (Kernel, Vec<spe::RunningQuery>, std::rc::Rc<std::cell::RefCell<lachesis_metrics::TimeSeriesStore>>) { unimplemented!() }
//!
//! let (mut kernel, queries, store) = queries();
//! let lachesis = LachesisBuilder::new()
//!     .driver(StoreDriver::storm(queries, store))
//!     .policy(0, Scope::AllQueries, QueueSizePolicy::default(), NiceTranslator::new())
//!     .build();
//! lachesis.start(&mut kernel);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admission;
mod driver;
mod entity;
mod middleware;
mod normalize;
mod policies;
mod policies_deadline;
mod policies_ext;
mod policy;
mod remote;
mod schedule;
mod snapshot;
mod supervisor;
mod transform;
mod translate;
mod translate_ext;
mod watchdog;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionRecord, SloClass,
};
pub use driver::{SpeDriver, StoreDriver};
pub use entity::OpRef;
pub use middleware::{Lachesis, LachesisBuilder, LachesisError, Scope};
pub use normalize::{log_min_max, min_max, min_max_anchored, to_nice, to_nice_in_range, to_shares, PriorityKind};
pub use policies::{
    best_output_path, FcfsPolicy, HighestRatePolicy, QueueSizePolicy, RandomPolicy,
};
pub use policies_deadline::{estimated_path_delay, residual_depth, DeadlinePolicy};
pub use policies_ext::{ChainPolicy, RateBasedPolicy};
pub use policy::{Policy, PolicyView};
pub use remote::{
    install_lease_guard, CmdApplier, CmdOutbox, MirrorDriver, MirrorQuery, RemoteCmd,
    RemoteNiceTranslator, RemoteSend,
};
pub use schedule::{GroupingSchedule, Schedule, SinglePrioritySchedule};
pub use snapshot::SnapshotError;
pub use supervisor::{
    BindingHealth, DegradedInterval, FaultEvent, FaultLog, SupervisorConfig,
};
pub use transform::{transform_logical, LogicalSchedule};
pub use translate::{
    CombinedTranslator, CpuSharesTranslator, NiceTranslator, TranslateError, Translator,
};
pub use translate_ext::{CpuQuotaTranslator, RealTimeTranslator};
pub use watchdog::{DegradeHook, StarvationWatchdog, WatchdogConfig};
