//! Supervision and graceful degradation of the scheduling loop.
//!
//! The paper's prototype assumes metrics always arrive and `nice`/cgroup
//! writes always succeed; a deployed middleware cannot. This module gives
//! every policy binding a small supervisor state machine:
//!
//! * **Engaged** — the normal state: metrics are fresh, schedules apply.
//! * **Degraded** — a transient failure (metric fetch error, failed apply)
//!   was observed. The last successfully applied schedule is *held* (the
//!   kernel keeps running it — doing nothing is the correct hold), and the
//!   binding retries with exponential backoff.
//! * **FallenBack** — after `max_consecutive_failures` the binding stops
//!   trusting its stale view entirely and resets its operators to default
//!   CFS scheduling (`nice` 0, `cpu.shares` 1024), the exact state they
//!   would have without Lachesis. It keeps probing every period and
//!   re-engages automatically once metrics flow again.
//!
//! Everything the supervisor observes is recorded in a [`FaultLog`] that
//! tests and experiments can assert on: error counters by kind, degraded
//! intervals per binding, and recovery times.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use simos::{SimDuration, SimTime};

/// Tunables of the per-binding supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Consecutive failures after which a binding falls back to default
    /// CFS parameters instead of holding a (by then old) schedule.
    pub max_consecutive_failures: u32,
    /// Staleness threshold, in units of the binding's policy period: a
    /// metric sample older than `staleness_factor × period` no longer
    /// represents the operator, and the operator is excluded from the
    /// policy view.
    pub staleness_factor: u64,
    /// Cap on the exponential retry backoff, in policy periods.
    pub max_backoff_periods: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_consecutive_failures: 3,
            staleness_factor: 3,
            max_backoff_periods: 4,
        }
    }
}

impl SupervisorConfig {
    /// The age beyond which a sample is stale for a policy with `period`.
    pub fn staleness_threshold(&self, period: SimDuration) -> SimDuration {
        period * self.staleness_factor
    }

    /// Retry delay after `consecutive_failures` failures (exponential,
    /// capped at [`max_backoff_periods`](Self::max_backoff_periods)).
    ///
    /// The exponent is capped at 16 doublings and the final multiply
    /// saturates, so a long outage window (or a huge configured cap)
    /// yields `SimDuration::MAX`-bounded delays instead of overflowing.
    pub fn backoff(&self, period: SimDuration, consecutive_failures: u32) -> SimDuration {
        let exp = consecutive_failures.saturating_sub(1).min(16);
        let factor = (1u64 << exp).min(self.max_backoff_periods.max(1));
        period.saturating_mul(factor)
    }
}

/// The supervisor state of one policy binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BindingHealth {
    /// Scheduling normally.
    #[default]
    Engaged,
    /// Transient failures observed; holding the last good schedule and
    /// retrying with backoff.
    Degraded {
        /// Failures since the last successful scheduling round.
        consecutive_failures: u32,
    },
    /// Operators were reset to default CFS parameters; probing for
    /// recovery every period.
    FallenBack {
        /// When the fallback was applied.
        since: SimTime,
    },
}

impl BindingHealth {
    /// Failures since the last success (0 when engaged).
    pub fn consecutive_failures(&self) -> u32 {
        match *self {
            BindingHealth::Engaged => 0,
            BindingHealth::Degraded {
                consecutive_failures,
            } => consecutive_failures,
            // Fallback only happens after the threshold was crossed; the
            // counter's job (deciding *when* to fall back) is done.
            BindingHealth::FallenBack { .. } => u32::MAX,
        }
    }
}

/// One recorded supervisor observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When it happened.
    pub at: SimTime,
    /// The policy binding involved, if any (`None` = provider-level).
    pub binding: Option<usize>,
    /// Stable machine-readable kind (e.g. `"metric_fetch"`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// A window during which a binding was not scheduling normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedInterval {
    /// The policy binding.
    pub binding: usize,
    /// When degradation began.
    pub from: SimTime,
    /// When the binding re-engaged (`None` = still degraded).
    pub until: Option<SimTime>,
    /// Whether the binding fell back to default CFS during the window.
    pub fell_back: bool,
}

impl DegradedInterval {
    /// Time from degradation to recovery, if recovered.
    pub fn recovery_time(&self) -> Option<SimDuration> {
        self.until.map(|u| u - self.from)
    }
}

/// Structured health record of a supervised Lachesis instance.
///
/// Shared (via `Rc<RefCell<_>>`) between the middleware loop and the test
/// or experiment observing it; grab it with `Lachesis::fault_log()` before
/// handing the instance to the kernel.
#[derive(Debug, Default)]
pub struct FaultLog {
    errors: BTreeMap<&'static str, u64>,
    events: Vec<FaultEvent>,
    intervals: Vec<DegradedInterval>,
    open: HashMap<usize, usize>,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an error observation, bumping the per-kind counter.
    pub fn record_error(
        &mut self,
        at: SimTime,
        binding: Option<usize>,
        kind: &'static str,
        detail: impl Into<String>,
    ) {
        *self.errors.entry(kind).or_insert(0) += 1;
        self.events.push(FaultEvent {
            at,
            binding,
            kind,
            detail: detail.into(),
        });
    }

    /// Records a state-transition event (not counted as an error).
    pub fn note(
        &mut self,
        at: SimTime,
        binding: Option<usize>,
        kind: &'static str,
        detail: impl Into<String>,
    ) {
        self.events.push(FaultEvent {
            at,
            binding,
            kind,
            detail: detail.into(),
        });
    }

    /// Opens a degraded interval for `binding` (no-op if one is open).
    pub fn mark_degraded(&mut self, at: SimTime, binding: usize) {
        if self.open.contains_key(&binding) {
            return;
        }
        self.open.insert(binding, self.intervals.len());
        self.intervals.push(DegradedInterval {
            binding,
            from: at,
            until: None,
            fell_back: false,
        });
        self.note(at, Some(binding), "degraded", "entering degraded mode");
    }

    /// Marks the binding's open degraded interval as fallen back (opening
    /// one if needed).
    pub fn mark_fallen_back(&mut self, at: SimTime, binding: usize) {
        self.mark_degraded(at, binding);
        if let Some(&i) = self.open.get(&binding) {
            self.intervals[i].fell_back = true;
        }
        self.note(at, Some(binding), "fallback", "reset to default CFS");
    }

    /// Closes the binding's open degraded interval.
    pub fn mark_recovered(&mut self, at: SimTime, binding: usize) {
        if let Some(i) = self.open.remove(&binding) {
            self.intervals[i].until = Some(at);
            self.note(at, Some(binding), "recovered", "re-engaged");
        }
    }

    /// Re-opens a degraded interval for a binding restored from a crash
    /// snapshot in a non-engaged state. A fresh log has no record of the
    /// pre-crash outage; without this, the later recovery would be a
    /// no-op ([`mark_recovered`](Self::mark_recovered) needs an open
    /// interval) and the binding would count as healthy during a window
    /// it demonstrably was not.
    pub fn reopen_degraded(&mut self, at: SimTime, binding: usize, fell_back: bool) {
        if fell_back {
            self.mark_fallen_back(at, binding);
        } else {
            self.mark_degraded(at, binding);
        }
    }

    /// Error counters by kind.
    pub fn errors_by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.errors
    }

    /// The counter for one error kind.
    pub fn error_count(&self, kind: &str) -> u64 {
        self.errors.get(kind).copied().unwrap_or(0)
    }

    /// Total errors across all kinds.
    pub fn total_errors(&self) -> u64 {
        self.errors.values().sum()
    }

    /// All degraded intervals, open and closed, in order of opening.
    pub fn degraded_intervals(&self) -> &[DegradedInterval] {
        &self.intervals
    }

    /// Degradation→recovery durations of all *closed* intervals.
    pub fn recovery_times(&self) -> Vec<SimDuration> {
        self.intervals
            .iter()
            .filter_map(DegradedInterval::recovery_time)
            .collect()
    }

    /// Bindings currently inside an open degraded interval.
    pub fn currently_degraded(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.open.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Every recorded event, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} errors ({}), {} degraded interval(s), {} open",
            self.total_errors(),
            self.errors
                .iter()
                .map(|(k, n)| format!("{k}: {n}"))
                .collect::<Vec<_>>()
                .join(", "),
            self.intervals.len(),
            self.open.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = SupervisorConfig::default();
        let p = SimDuration::from_secs(1);
        assert_eq!(cfg.backoff(p, 1), p);
        assert_eq!(cfg.backoff(p, 2), p * 2);
        assert_eq!(cfg.backoff(p, 3), p * 4);
        assert_eq!(cfg.backoff(p, 10), p * 4, "capped at max_backoff_periods");
        assert_eq!(cfg.backoff(p, 0), p, "zero failures still waits a period");
    }

    #[test]
    fn staleness_threshold_scales_with_period() {
        let cfg = SupervisorConfig::default();
        assert_eq!(
            cfg.staleness_threshold(SimDuration::from_millis(500)),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn intervals_open_close_and_measure_recovery() {
        let mut log = FaultLog::new();
        log.record_error(t(1), Some(0), "metric_fetch", "boom");
        log.mark_degraded(t(1), 0);
        log.mark_degraded(t(2), 0); // idempotent while open
        assert_eq!(log.currently_degraded(), vec![0]);
        log.mark_fallen_back(t(3), 0);
        log.mark_recovered(t(5), 0);
        assert!(log.currently_degraded().is_empty());
        let ints = log.degraded_intervals();
        assert_eq!(ints.len(), 1);
        assert_eq!(ints[0].from, t(1));
        assert_eq!(ints[0].until, Some(t(5)));
        assert!(ints[0].fell_back);
        assert_eq!(log.recovery_times(), vec![SimDuration::from_secs(4)]);
        // A second outage opens a fresh interval.
        log.mark_degraded(t(7), 0);
        assert_eq!(log.degraded_intervals().len(), 2);
        assert_eq!(log.recovery_times().len(), 1, "open interval not counted");
    }

    #[test]
    fn counters_accumulate_by_kind() {
        let mut log = FaultLog::new();
        log.record_error(t(0), None, "metric_fetch", "a");
        log.record_error(t(1), Some(1), "apply_kernel", "b");
        log.record_error(t(2), None, "metric_fetch", "c");
        assert_eq!(log.error_count("metric_fetch"), 2);
        assert_eq!(log.error_count("apply_kernel"), 1);
        assert_eq!(log.error_count("nope"), 0);
        assert_eq!(log.total_errors(), 3);
        log.note(t(3), None, "recovered", "not an error");
        assert_eq!(log.total_errors(), 3, "notes are not errors");
        assert_eq!(log.events().len(), 4);
    }
}
