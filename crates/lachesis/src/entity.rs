//! Entity references (paper §3): the things metrics and schedules talk
//! about — physical operators, identified per driver by query index and
//! physical-operator id.

use std::fmt;

use spe::PhysOpId;

/// A physical operator of one query managed by one SPE driver.
///
/// `OpRef` is the entity key of Lachesis' metric provider and schedules;
/// it is scoped to a driver (driver index lives outside the key, matching
/// the per-driver metric caches of Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpRef {
    /// Index of the query within the driver.
    pub query: usize,
    /// Physical operator id within the query.
    pub op: PhysOpId,
}

impl OpRef {
    /// Creates a reference.
    pub fn new(query: usize, op: PhysOpId) -> Self {
        OpRef { query, op }
    }
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}/op{}", self.query, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(OpRef::new(1, 2).to_string(), "q1/op2");
        assert!(OpRef::new(0, 5) < OpRef::new(1, 0));
        assert!(OpRef::new(1, 0) < OpRef::new(1, 1));
    }
}
