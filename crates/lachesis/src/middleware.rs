//! The Lachesis middleware main loop (paper §4, Algorithm 1).
//!
//! Lachesis runs as its own (simulated) process: a periodic activity that
//! wakes at the GCD of all policy periods, refreshes metrics through the
//! provider, runs every due policy, and applies the resulting schedules
//! through their translators.

use std::fmt;
use std::rc::Rc;

use lachesis_metrics::{ratio_metric, names, MetricError, MetricProvider, MetricSource};
use simos::{CallbackId, Kernel, SimDuration, SimTime};

use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::policy::{Policy, PolicyView};
use crate::schedule::Schedule;
use crate::translate::{TranslateError, Translator};

/// Which operators a policy binding schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// Every operator of every query of the driver.
    AllQueries,
    /// Only the operators of one query (multi-query setups, G3).
    Query(usize),
    /// Only the operators placed on one node — used to run *independent*
    /// Lachesis instances per device in scale-out deployments (§6.5).
    Node(simos::NodeId),
}

/// Errors surfaced by the middleware loop.
#[derive(Debug, Clone, PartialEq)]
pub enum LachesisError {
    /// Metric resolution failed (misconfigured metrics, Algorithm 3 L15).
    Metric(MetricError),
    /// A translator failed to apply a schedule.
    Translate(TranslateError),
}

impl fmt::Display for LachesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LachesisError::Metric(e) => write!(f, "metric error: {e}"),
            LachesisError::Translate(e) => write!(f, "translation error: {e}"),
        }
    }
}

impl std::error::Error for LachesisError {}

impl From<MetricError> for LachesisError {
    fn from(e: MetricError) -> Self {
        LachesisError::Metric(e)
    }
}

impl From<TranslateError> for LachesisError {
    fn from(e: TranslateError) -> Self {
        LachesisError::Translate(e)
    }
}

struct PolicyBinding {
    driver_idx: usize,
    scope: Scope,
    policy: Box<dyn Policy>,
    translator: Box<dyn Translator>,
    next_run: SimTime,
}

/// The Lachesis middleware.
///
/// Build with [`LachesisBuilder`], then either call
/// [`run_if_due`](Lachesis::run_if_due) manually or hand the instance to
/// the kernel with [`start`](Lachesis::start).
pub struct Lachesis {
    drivers: Vec<Rc<dyn SpeDriver>>,
    provider: MetricProvider<OpRef>,
    bindings: Vec<PolicyBinding>,
}

impl fmt::Debug for Lachesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lachesis")
            .field("drivers", &self.drivers.len())
            .field("policies", &self.bindings.len())
            .finish_non_exhaustive()
    }
}

/// Builder for [`Lachesis`].
///
/// # Examples
///
/// ```no_run
/// use lachesis::{LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver};
/// # let driver: StoreDriver = unimplemented!();
/// let lachesis = LachesisBuilder::new()
///     .driver(driver)
///     .policy(0, Scope::AllQueries, QueueSizePolicy::default(), NiceTranslator::new())
///     .build();
/// ```
#[derive(Default)]
pub struct LachesisBuilder {
    drivers: Vec<Rc<dyn SpeDriver>>,
    bindings: Vec<PolicyBinding>,
}

impl fmt::Debug for LachesisBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LachesisBuilder")
            .field("drivers", &self.drivers.len())
            .field("policies", &self.bindings.len())
            .finish_non_exhaustive()
    }
}

impl LachesisBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an SPE driver; drivers are indexed in registration order.
    pub fn driver(mut self, driver: impl SpeDriver + 'static) -> Self {
        self.drivers.push(Rc::new(driver));
        self
    }

    /// Binds a policy + translator to (a scope of) a driver's operators.
    /// Each policy runs at its own period (Algorithm 1).
    pub fn policy(
        mut self,
        driver_idx: usize,
        scope: Scope,
        policy: impl Policy + 'static,
        translator: impl Translator + 'static,
    ) -> Self {
        self.bindings.push(PolicyBinding {
            driver_idx,
            scope,
            policy: Box::new(policy),
            translator: Box::new(translator),
            next_run: SimTime::ZERO,
        });
        self
    }

    /// Finalizes the middleware: installs the standard derived-metric
    /// definitions and registers every policy's required metrics
    /// (Algorithm 1, L1).
    ///
    /// # Panics
    ///
    /// Panics if a binding references an unregistered driver index or no
    /// policies were bound.
    pub fn build(self) -> Lachesis {
        assert!(!self.bindings.is_empty(), "no policies bound");
        for b in &self.bindings {
            assert!(
                b.driver_idx < self.drivers.len(),
                "policy bound to unknown driver {}",
                b.driver_idx
            );
        }
        let mut provider = MetricProvider::new();
        // Standard derivations: SPEs that do not expose cost/selectivity
        // get them derived from raw counters (paper Fig. 4).
        provider.define(ratio_metric(
            names::SELECTIVITY,
            names::TUPLES_OUT,
            names::TUPLES_IN,
        ));
        provider.define(ratio_metric(names::COST, names::CPU_TIME, names::TUPLES_IN));
        for b in &self.bindings {
            for m in b.policy.required_metrics() {
                provider.register(m);
            }
        }
        Lachesis {
            drivers: self.drivers,
            provider,
            bindings: self.bindings,
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Lachesis {
    /// The wake-up period: the GCD of all policy periods (Algorithm 1 L9).
    pub fn wake_period(&self) -> SimDuration {
        let nanos = self
            .bindings
            .iter()
            .map(|b| b.policy.period().as_nanos().max(1))
            .fold(0, gcd);
        SimDuration::from_nanos(nanos.max(1))
    }

    /// Runs every due policy once (Algorithm 1 L3-L8). Call at each wake.
    ///
    /// # Errors
    ///
    /// Returns the first metric or translation error; the middleware can be
    /// driven further afterwards (the error is not fatal to the queries).
    pub fn run_if_due(&mut self, kernel: &mut Kernel) -> Result<(), LachesisError> {
        let now = kernel.now();
        if !self.bindings.iter().any(|b| b.next_run <= now) {
            return Ok(());
        }
        // L4: refresh all metrics once per wake with due policies.
        {
            let sources: Vec<&dyn MetricSource<OpRef>> = self
                .drivers
                .iter()
                .map(|d| d.as_ref() as &dyn MetricSource<OpRef>)
                .collect();
            self.provider.update(&sources)?;
        }
        let provider = &self.provider;
        let drivers = &self.drivers;
        for b in &mut self.bindings {
            if b.next_run > now {
                continue;
            }
            b.next_run = now + b.policy.period();
            let driver = Rc::clone(&drivers[b.driver_idx]);
            let scope: Vec<OpRef> = match &b.scope {
                Scope::AllQueries => driver.entities(),
                Scope::Query(q) => driver
                    .entities()
                    .into_iter()
                    .filter(|op| op.query == *q)
                    .collect(),
                Scope::Node(node) => driver
                    .entities()
                    .into_iter()
                    .filter(|op| {
                        driver
                            .queries()
                            .get(op.query)
                            .is_some_and(|q| q.cell(op.op).node() == *node)
                    })
                    .collect(),
            };
            let schedule = {
                let view = PolicyView::new(now, driver.as_ref(), &scope, provider, b.driver_idx);
                b.policy.schedule(&view)
            };
            b.translator.apply(
                kernel,
                driver.as_ref(),
                &Schedule::Single(schedule),
                b.policy.priority_kind(),
            )?;
        }
        Ok(())
    }

    /// Installs the middleware as a periodic kernel activity and hands
    /// ownership to the kernel. Returns the callback id (for cancellation).
    ///
    /// # Panics
    ///
    /// Scheduling errors inside the loop panic: experiments must fail
    /// loudly rather than silently run unscheduled.
    pub fn start(mut self, kernel: &mut Kernel) -> CallbackId {
        let period = self.wake_period();
        kernel.schedule_periodic(period, period, move |k| {
            self.run_if_due(k).expect("lachesis scheduling failed");
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_of_periods() {
        assert_eq!(gcd(50, 1000), 50);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
    }
}
