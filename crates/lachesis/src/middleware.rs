//! The Lachesis middleware main loop (paper §4, Algorithm 1).
//!
//! Lachesis runs as its own (simulated) process: a periodic activity that
//! wakes at the GCD of all policy periods, refreshes metrics through the
//! provider, runs every due policy, and applies the resulting schedules
//! through their translators.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use lachesis_metrics::{ratio_metric, names, MetricError, MetricProvider, MetricSource};
use simos::{CallbackId, Kernel, Nice, SimDuration, SimTime, TraceEvent, TraceTrack};

use crate::admission::{AdmissionConfig, AdmissionController, SloClass};
use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::policy::{Policy, PolicyView};
use crate::schedule::Schedule;
use crate::snapshot::SnapshotError;
use crate::supervisor::{BindingHealth, FaultLog, SupervisorConfig};
use crate::translate::{TranslateError, Translator};
use crate::watchdog::{DegradeHook, StarvationWatchdog, TenantEntry, WatchdogConfig};

/// Which operators a policy binding schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// Every operator of every query of the driver.
    AllQueries,
    /// Only the operators of one query (multi-query setups, G3).
    Query(usize),
    /// Only the operators placed on one node — used to run *independent*
    /// Lachesis instances per device in scale-out deployments (§6.5).
    Node(simos::NodeId),
}

/// Errors surfaced by the middleware loop.
#[derive(Debug, Clone, PartialEq)]
pub enum LachesisError {
    /// Metric resolution failed (misconfigured metrics, Algorithm 3 L15).
    Metric(MetricError),
    /// A translator failed to apply a schedule.
    Translate(TranslateError),
}

impl fmt::Display for LachesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LachesisError::Metric(e) => write!(f, "metric error: {e}"),
            LachesisError::Translate(e) => write!(f, "translation error: {e}"),
        }
    }
}

impl std::error::Error for LachesisError {}

impl LachesisError {
    /// Whether retrying later can plausibly succeed. Transient errors are
    /// handled by the supervisor (degrade, retry, fall back); persistent
    /// ones are misconfigurations surfaced to the caller.
    pub fn is_transient(&self) -> bool {
        match self {
            LachesisError::Metric(e) => e.is_transient(),
            // A kernel refusal or an unbound thread can heal (fault windows
            // end, threads respawn); a schedule-format mismatch cannot.
            LachesisError::Translate(TranslateError::Kernel(_)) => true,
            LachesisError::Translate(TranslateError::MissingThread(_)) => true,
            LachesisError::Translate(TranslateError::WrongFormat { .. }) => false,
        }
    }

    /// Stable label for [`FaultLog`] counters.
    pub fn kind_label(&self) -> &'static str {
        match self {
            LachesisError::Metric(MetricError::FetchFailed { .. }) => "metric_fetch",
            LachesisError::Metric(_) => "metric_config",
            LachesisError::Translate(TranslateError::Kernel(_)) => "apply_kernel",
            LachesisError::Translate(TranslateError::MissingThread(_)) => "apply_missing_thread",
            LachesisError::Translate(TranslateError::WrongFormat { .. }) => "apply_format",
        }
    }
}

impl From<MetricError> for LachesisError {
    fn from(e: MetricError) -> Self {
        LachesisError::Metric(e)
    }
}

impl From<TranslateError> for LachesisError {
    fn from(e: TranslateError) -> Self {
        LachesisError::Translate(e)
    }
}

struct PolicyBinding {
    driver_idx: usize,
    scope: Scope,
    policy: Box<dyn Policy>,
    translator: Box<dyn Translator>,
    next_run: SimTime,
    health: BindingHealth,
    /// Whether the initial `engage` supervisor trace event was emitted.
    announced: bool,
    /// The last successfully applied `(op, priority)` pairs — the state a
    /// crash-recovery snapshot re-applies on cold restart.
    last_applied: Vec<(OpRef, f64)>,
}

/// The Lachesis middleware.
///
/// Build with [`LachesisBuilder`], then either call
/// [`run_if_due`](Lachesis::run_if_due) manually or hand the instance to
/// the kernel with [`start`](Lachesis::start).
pub struct Lachesis {
    drivers: Vec<Rc<dyn SpeDriver>>,
    provider: MetricProvider<OpRef>,
    bindings: Vec<PolicyBinding>,
    supervisor: SupervisorConfig,
    watchdog: Option<StarvationWatchdog>,
    admission: Option<Rc<RefCell<AdmissionController>>>,
    log: Rc<RefCell<FaultLog>>,
}

impl fmt::Debug for Lachesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lachesis")
            .field("drivers", &self.drivers.len())
            .field("policies", &self.bindings.len())
            .finish_non_exhaustive()
    }
}

/// Builder for [`Lachesis`].
///
/// # Examples
///
/// ```no_run
/// use lachesis::{LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver};
/// # let driver: StoreDriver = unimplemented!();
/// let lachesis = LachesisBuilder::new()
///     .driver(driver)
///     .policy(0, Scope::AllQueries, QueueSizePolicy::default(), NiceTranslator::new())
///     .build();
/// ```
#[derive(Default)]
pub struct LachesisBuilder {
    drivers: Vec<Rc<dyn SpeDriver>>,
    bindings: Vec<PolicyBinding>,
    supervisor: Option<SupervisorConfig>,
    watchdog: Option<StarvationWatchdog>,
    admission: Option<AdmissionConfig>,
}

impl fmt::Debug for LachesisBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LachesisBuilder")
            .field("drivers", &self.drivers.len())
            .field("policies", &self.bindings.len())
            .finish_non_exhaustive()
    }
}

impl LachesisBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an SPE driver; drivers are indexed in registration order.
    pub fn driver(mut self, driver: impl SpeDriver + 'static) -> Self {
        self.drivers.push(Rc::new(driver));
        self
    }

    /// Binds a policy + translator to (a scope of) a driver's operators.
    /// Each policy runs at its own period (Algorithm 1).
    pub fn policy(
        mut self,
        driver_idx: usize,
        scope: Scope,
        policy: impl Policy + 'static,
        translator: impl Translator + 'static,
    ) -> Self {
        self.bindings.push(PolicyBinding {
            driver_idx,
            scope,
            policy: Box::new(policy),
            translator: Box::new(translator),
            next_run: SimTime::ZERO,
            health: BindingHealth::Engaged,
            announced: false,
            last_applied: Vec::new(),
        });
        self
    }

    /// Overrides the supervisor tunables (defaults: fall back after 3
    /// consecutive failures, staleness threshold 3 policy periods, retry
    /// backoff capped at 4 periods).
    pub fn supervisor(mut self, config: SupervisorConfig) -> Self {
        self.supervisor = Some(config);
        self
    }

    /// Enables the [`StarvationWatchdog`]: after every wake's policy
    /// rounds it checks each operator for metric-visible starvation
    /// (queued input, zero progress), escalates priority floors and —
    /// when starvation persists — degrades the most expendable
    /// registered [tenant](Self::tenant).
    pub fn watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(StarvationWatchdog::new(config));
        self
    }

    /// Gives the middleware an [`AdmissionController`]: deployment
    /// harnesses grab the shared handle with
    /// [`admission_controller`](Lachesis::admission_controller) to gate
    /// `deploy` on it, and in return the controller's demand book and
    /// decision history ride the crash-recovery snapshot — a restarted
    /// middleware does not forget who holds CPU budget.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Registers a tenant for graceful degradation: `query_idx` names
    /// the tenant's query within driver `driver_idx`, `class` orders who
    /// is degraded first, and `hook` performs the degradation (flip the
    /// query to shed mode, zero its source rate, …). Requires
    /// [`watchdog`](Self::watchdog) to have been called first.
    ///
    /// # Panics
    ///
    /// Panics if no watchdog is configured.
    pub fn tenant(
        mut self,
        name: &str,
        driver_idx: usize,
        query_idx: usize,
        class: SloClass,
        hook: DegradeHook,
    ) -> Self {
        self.watchdog
            .as_mut()
            .expect("call .watchdog(..) before .tenant(..)")
            .add_tenant(TenantEntry {
                name: name.to_owned(),
                driver_idx,
                query_idx,
                class,
                degraded: false,
                hook,
            });
        self
    }

    /// Finalizes the middleware: installs the standard derived-metric
    /// definitions and registers every policy's required metrics
    /// (Algorithm 1, L1).
    ///
    /// # Panics
    ///
    /// Panics if a binding references an unregistered driver index or no
    /// policies were bound.
    pub fn build(self) -> Lachesis {
        assert!(!self.bindings.is_empty(), "no policies bound");
        for b in &self.bindings {
            assert!(
                b.driver_idx < self.drivers.len(),
                "policy bound to unknown driver {}",
                b.driver_idx
            );
        }
        let mut provider = MetricProvider::new();
        // Standard derivations: SPEs that do not expose cost/selectivity
        // get them derived from raw counters (paper Fig. 4).
        provider.define(ratio_metric(
            names::SELECTIVITY,
            names::TUPLES_OUT,
            names::TUPLES_IN,
        ));
        provider.define(ratio_metric(names::COST, names::CPU_TIME, names::TUPLES_IN));
        for b in &self.bindings {
            for m in b.policy.required_metrics() {
                provider.register(m);
            }
        }
        if self.watchdog.is_some() {
            for m in StarvationWatchdog::required_metrics() {
                provider.register(m);
            }
        }
        Lachesis {
            drivers: self.drivers,
            provider,
            bindings: self.bindings,
            supervisor: self.supervisor.unwrap_or_default(),
            watchdog: self.watchdog,
            admission: self
                .admission
                .map(|c| Rc::new(RefCell::new(AdmissionController::new(c)))),
            log: Rc::new(RefCell::new(FaultLog::new())),
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Lachesis {
    /// The wake-up period: the GCD of all policy periods (Algorithm 1 L9).
    pub fn wake_period(&self) -> SimDuration {
        let nanos = self
            .bindings
            .iter()
            .map(|b| b.policy.period().as_nanos().max(1))
            .fold(0, gcd);
        SimDuration::from_nanos(nanos.max(1))
    }

    /// The shared fault log. Clone the `Rc` *before*
    /// [`start`](Lachesis::start) consumes the instance to observe health
    /// while the simulation runs.
    pub fn fault_log(&self) -> Rc<RefCell<FaultLog>> {
        Rc::clone(&self.log)
    }

    /// The supervisor state of one policy binding (registration order).
    pub fn binding_health(&self, idx: usize) -> Option<BindingHealth> {
        self.bindings.get(idx).map(|b| b.health)
    }

    /// The shared admission controller, when
    /// [`LachesisBuilder::admission`] configured one. Deployment harnesses
    /// call `decide`/`observe`/`depart` through this handle; its state is
    /// captured by [`snapshot`](Lachesis::snapshot) and brought back by
    /// [`restore`](Lachesis::restore).
    pub fn admission_controller(&self) -> Option<Rc<RefCell<AdmissionController>>> {
        self.admission.as_ref().map(Rc::clone)
    }

    /// Runs every due policy once (Algorithm 1 L3-L8). Call at each wake.
    ///
    /// Transient failures — metric fetch errors, kernel apply refusals —
    /// never surface as `Err`: the per-binding supervisor records them in
    /// the [`FaultLog`], holds the last applied schedule, retries with
    /// backoff, and after
    /// [`max_consecutive_failures`](SupervisorConfig::max_consecutive_failures)
    /// resets the binding's operators to default CFS parameters until
    /// metrics recover. Operators whose metric samples are older than the
    /// staleness threshold are excluded from the policy view.
    ///
    /// # Errors
    ///
    /// Returns the first *persistent* error (metric misconfiguration or a
    /// schedule-format mismatch) after recording it; those will fail on
    /// every retry and need a code or configuration fix.
    pub fn run_if_due(&mut self, kernel: &mut Kernel) -> Result<(), LachesisError> {
        let now = kernel.now();
        if !self.bindings.iter().any(|b| b.next_run <= now) {
            return Ok(());
        }
        // L4: refresh all metrics once per wake with due policies. A
        // failing source holds its previous values (aging toward the
        // staleness threshold) instead of poisoning the healthy ones.
        let mut failed_sources: HashSet<usize> = HashSet::new();
        let mut persistent: Option<LachesisError> = None;
        {
            let sources: Vec<&dyn MetricSource<OpRef>> = self
                .drivers
                .iter()
                .map(|d| d.as_ref() as &dyn MetricSource<OpRef>)
                .collect();
            for (i, e) in self.provider.update_reporting(now, &sources) {
                let e = LachesisError::from(e);
                self.log
                    .borrow_mut()
                    .record_error(now, None, e.kind_label(), e.to_string());
                failed_sources.insert(i);
                if !e.is_transient() && persistent.is_none() {
                    persistent = Some(e);
                }
            }
        }
        // Re-evaluate staleness fences before resolving scopes: a fenced
        // driver reports no entities, so its bindings idle over an empty
        // scope instead of scheduling from a silently stale mirror. On
        // unfence the last applied schedule is restored through the same
        // path a restart uses, without waiting for the next policy round.
        for d_idx in 0..self.drivers.len() {
            let Some(fenced) = self.drivers[d_idx].refresh_fence(now) else {
                continue;
            };
            Self::emit(kernel, || TraceEvent::Instant {
                track: TraceTrack::Supervisor,
                name: if fenced { "fence" } else { "unfence" },
                args: vec![("driver", d_idx as f64)],
            });
            if !fenced {
                for idx in 0..self.bindings.len() {
                    if self.bindings[idx].driver_idx == d_idx {
                        self.reapply_binding(kernel, idx);
                    }
                }
            }
        }
        for idx in 0..self.bindings.len() {
            if self.bindings[idx].next_run > now {
                continue;
            }
            if !self.bindings[idx].announced {
                self.bindings[idx].announced = true;
                Self::emit(kernel, || TraceEvent::Instant {
                    track: TraceTrack::Supervisor,
                    name: "engage",
                    args: vec![("binding", idx as f64)],
                });
            }
            Self::emit(kernel, || TraceEvent::SpanBegin {
                track: TraceTrack::Middleware,
                name: "round",
                args: vec![("binding", idx as f64)],
            });
            let outcome = self.run_binding(kernel, idx, now, &failed_sources);
            let ok = outcome.is_ok();
            self.settle_binding(kernel, idx, now, outcome, &mut persistent);
            Self::emit(kernel, || TraceEvent::SpanEnd {
                track: TraceTrack::Middleware,
                name: "round",
                args: vec![("binding", idx as f64), ("ok", ok as u8 as f64)],
            });
        }
        // The watchdog runs after the policy rounds so its priority
        // boosts override this round's schedule for starved operators.
        if let Some(wd) = &mut self.watchdog {
            let mut log = self.log.borrow_mut();
            wd.run(kernel, &self.drivers, &self.provider, &mut log);
        }
        match persistent {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Appends a middleware/supervisor event to the kernel's trace sink,
    /// if one is installed (one branch when tracing is off).
    #[inline]
    fn emit(kernel: &Kernel, event: impl FnOnce() -> TraceEvent) {
        if let Some(t) = kernel.trace_sink() {
            t.borrow_mut().push(kernel.now(), event());
        }
    }

    /// Resolves a binding's scope (before staleness filtering).
    fn resolve_scope(driver: &dyn SpeDriver, scope: &Scope) -> Vec<OpRef> {
        match scope {
            Scope::AllQueries => driver.entities(),
            Scope::Query(q) => driver
                .entities()
                .into_iter()
                .filter(|op| op.query == *q)
                .collect(),
            Scope::Node(node) => driver
                .entities()
                .into_iter()
                .filter(|op| {
                    driver
                        .queries()
                        .get(op.query)
                        .is_some_and(|q| q.cell(op.op).node() == *node)
                })
                .collect(),
        }
    }

    /// Whether every timestamped sample the provider holds for `op` is
    /// older than the staleness threshold (untimestamped samples count as
    /// fresh; an operator with no samples at all is kept — policies already
    /// handle missing metrics).
    fn op_is_stale(&self, driver_idx: usize, op: OpRef, now: SimTime, max_age: SimDuration) -> bool {
        let mut saw_sample = false;
        for metric in self.provider.registered() {
            let Some(values) = self.provider.get(driver_idx, metric) else {
                continue;
            };
            let Some(sample) = values.sample(&op) else {
                continue;
            };
            saw_sample = true;
            if !sample.is_stale(now, max_age) {
                return false;
            }
        }
        saw_sample
    }

    /// One scheduling attempt for one due binding. `Ok(())` means a
    /// schedule was computed and applied from fresh metrics.
    fn run_binding(
        &mut self,
        kernel: &mut Kernel,
        idx: usize,
        now: SimTime,
        failed_sources: &HashSet<usize>,
    ) -> Result<(), LachesisError> {
        let driver_idx = self.bindings[idx].driver_idx;
        if failed_sources.contains(&driver_idx) {
            // This round's view of the driver is last period's data; count
            // the fetch failure against this binding and hold.
            return Err(LachesisError::Metric(MetricError::FetchFailed {
                metric: names::TUPLES_IN,
                source: self.drivers[driver_idx].name().to_owned(),
                reason: "metric refresh failed this period".to_owned(),
            }));
        }
        let driver = Rc::clone(&self.drivers[driver_idx]);
        let full_scope = Self::resolve_scope(driver.as_ref(), &self.bindings[idx].scope);
        let max_age = self
            .supervisor
            .staleness_threshold(self.bindings[idx].policy.period());
        let scope: Vec<OpRef> = full_scope
            .iter()
            .copied()
            .filter(|&op| !self.op_is_stale(driver_idx, op, now, max_age))
            .collect();
        if full_scope.is_empty() {
            // Nothing in scope — the driver is fenced (or every query
            // departed). Not an error: hold `last_applied` untouched so
            // the unfence/heal path can restore it, and try again next
            // period.
            return Ok(());
        }
        let excluded = full_scope.len() - scope.len();
        if excluded > 0 {
            self.log.borrow_mut().note(
                now,
                Some(idx),
                "stale_excluded",
                format!("{excluded} operator(s) with stale metrics excluded"),
            );
        }
        if scope.is_empty() {
            // Nothing fresh to schedule on: treat like a failed round so
            // repeated total staleness eventually falls back to CFS.
            return Err(LachesisError::Metric(MetricError::FetchFailed {
                metric: names::TUPLES_IN,
                source: driver.name().to_owned(),
                reason: "all operators have stale metrics".to_owned(),
            }));
        }
        let b = &mut self.bindings[idx];
        let schedule = {
            let view = PolicyView::new(now, driver.as_ref(), &scope, &self.provider, driver_idx);
            b.policy.schedule(&view)
        };
        if kernel.trace_sink().is_some() {
            // Record the round's policy inputs and computed priorities; the
            // translated nice/shares values follow as kernel NiceChange /
            // SharesChange events nested inside the same round span.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (_, p) in schedule.iter() {
                if p.is_finite() {
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
            }
            let mut args = vec![
                ("binding", idx as f64),
                ("ops", scope.len() as f64),
                ("excluded", excluded as f64),
            ];
            if lo.is_finite() && hi.is_finite() {
                args.push(("prio_min", lo));
                args.push(("prio_max", hi));
            }
            Self::emit(kernel, move || TraceEvent::Instant {
                track: TraceTrack::Middleware,
                name: "schedule",
                args,
            });
        }
        b.translator.apply(
            kernel,
            driver.as_ref(),
            &Schedule::Single(schedule.clone()),
            b.policy.priority_kind(),
        )?;
        b.last_applied = schedule.iter().collect();
        Ok(())
    }

    /// Updates supervisor state after a scheduling attempt: reschedules the
    /// binding, records errors, applies backoff/fallback/recovery.
    fn settle_binding(
        &mut self,
        kernel: &mut Kernel,
        idx: usize,
        now: SimTime,
        outcome: Result<(), LachesisError>,
        persistent: &mut Option<LachesisError>,
    ) {
        let period = self.bindings[idx].policy.period();
        match outcome {
            Ok(()) => {
                let b = &mut self.bindings[idx];
                b.next_run = now + period;
                if b.health != BindingHealth::Engaged {
                    b.health = BindingHealth::Engaged;
                    self.log.borrow_mut().mark_recovered(now, idx);
                    Self::emit(kernel, || TraceEvent::Instant {
                        track: TraceTrack::Supervisor,
                        name: "recover",
                        args: vec![("binding", idx as f64)],
                    });
                }
            }
            Err(e) => {
                self.log
                    .borrow_mut()
                    .record_error(now, Some(idx), e.kind_label(), e.to_string());
                if !e.is_transient() {
                    if persistent.is_none() {
                        *persistent = Some(e);
                    }
                    // No retry-backoff dance for a persistent error: it is a
                    // bug to fix, not an outage to ride out. Keep the period
                    // so the log shows it recurring.
                    self.bindings[idx].next_run = now + period;
                    return;
                }
                let failures = self.bindings[idx].health.consecutive_failures();
                if failures >= self.supervisor.max_consecutive_failures
                    || matches!(self.bindings[idx].health, BindingHealth::FallenBack { .. })
                {
                    if !matches!(self.bindings[idx].health, BindingHealth::FallenBack { .. }) {
                        self.apply_cfs_fallback(kernel, idx, now);
                    } else {
                        Self::emit(kernel, || TraceEvent::Instant {
                            track: TraceTrack::Supervisor,
                            name: "retry",
                            args: vec![("binding", idx as f64)],
                        });
                    }
                    // Probe for recovery every period.
                    self.bindings[idx].next_run = now + period;
                } else {
                    let failures = failures + 1;
                    let b = &mut self.bindings[idx];
                    b.health = BindingHealth::Degraded {
                        consecutive_failures: failures,
                    };
                    b.next_run = now + self.supervisor.backoff(period, failures);
                    self.log.borrow_mut().mark_degraded(now, idx);
                    Self::emit(kernel, || TraceEvent::Instant {
                        track: TraceTrack::Supervisor,
                        name: "degrade",
                        args: vec![("binding", idx as f64), ("failures", failures as f64)],
                    });
                }
            }
        }
    }

    /// Resets every operator in the binding's scope to default CFS
    /// parameters (`nice` 0, `cpu.shares` 1024) — the schedule the SPE
    /// would have without Lachesis. Best-effort: apply faults may still be
    /// active; whatever fails is retried at the next probe.
    fn apply_cfs_fallback(&mut self, kernel: &mut Kernel, idx: usize, now: SimTime) {
        let driver = Rc::clone(&self.drivers[self.bindings[idx].driver_idx]);
        let scope = Self::resolve_scope(driver.as_ref(), &self.bindings[idx].scope);
        let nice0 = Nice::new(0).expect("nice 0 is always valid");
        let mut reset_groups: HashSet<simos::CgroupId> = HashSet::new();
        let mut complete = true;
        for op in scope {
            let Some(tid) = driver.thread_of(op) else {
                continue;
            };
            if kernel.set_nice(tid, nice0).is_err() {
                complete = false;
                continue;
            }
            let Ok(info) = kernel.thread_info(tid) else {
                continue;
            };
            let node_root = kernel.node_root(info.node).ok();
            if Some(info.cgroup) != node_root && reset_groups.insert(info.cgroup) {
                complete &= kernel
                    .set_cpu_shares(info.cgroup, simos::DEFAULT_CPU_SHARES)
                    .is_ok();
            }
        }
        let b = &mut self.bindings[idx];
        b.health = BindingHealth::FallenBack { since: now };
        Self::emit(kernel, || TraceEvent::Instant {
            track: TraceTrack::Supervisor,
            name: "fallback",
            args: vec![("binding", idx as f64)],
        });
        let mut log = self.log.borrow_mut();
        log.mark_fallen_back(now, idx);
        if !complete {
            log.record_error(
                now,
                Some(idx),
                "fallback_partial",
                "some operators could not be reset to CFS defaults",
            );
        }
    }

    /// Serializes the middleware's recoverable state — per-binding
    /// supervisor health, next run time and last applied priorities, plus
    /// (v2) the admission controller's demand book and the watchdog's
    /// starvation ladder when configured — into the versioned text format
    /// of [`crate::snapshot`]. Everything else (drivers, policies, metric
    /// caches) is configuration or soft state a cold restart rebuilds from
    /// the builder and the next metric refresh.
    pub fn snapshot(&self) -> String {
        let bindings: Vec<crate::snapshot::BindingSnapshot> = self
            .bindings
            .iter()
            .map(|b| crate::snapshot::BindingSnapshot {
                health: b.health,
                next_run: b.next_run,
                announced: b.announced,
                applied: b.last_applied.clone(),
            })
            .collect();
        let doc = crate::snapshot::SnapshotDoc {
            bindings,
            admission: self.admission.as_ref().map(|a| a.borrow().export_state()),
            watchdog: self.watchdog.as_ref().map(|w| w.export_state()),
        };
        crate::snapshot::encode(&doc)
    }

    /// Restores state captured by [`snapshot`](Lachesis::snapshot) into a
    /// freshly built, identically configured instance (same drivers, same
    /// policy bindings in the same order). A binding whose stored
    /// `next_run` already passed while the middleware was down is simply
    /// due at the first wake — no rounds are replayed.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the text is not a v1/v2 snapshot
    /// or its binding count does not match this instance. Admission and
    /// watchdog sections restore only into an instance configured with the
    /// corresponding component; otherwise they are ignored (a v1 snapshot
    /// simply carries neither).
    pub fn restore(&mut self, text: &str) -> Result<(), SnapshotError> {
        let decoded = crate::snapshot::decode(text)?;
        if decoded.bindings.len() != self.bindings.len() {
            return Err(SnapshotError::BindingCountMismatch {
                expected: self.bindings.len(),
                found: decoded.bindings.len(),
            });
        }
        if let (Some(cell), Some(state)) = (&self.admission, decoded.admission) {
            cell.borrow_mut().import_state(state);
        }
        if let (Some(wd), Some(state)) = (&mut self.watchdog, decoded.watchdog) {
            wd.import_state(state);
        }
        for (idx, (b, s)) in self.bindings.iter_mut().zip(decoded.bindings).enumerate() {
            b.health = s.health;
            b.next_run = s.next_run;
            b.announced = s.announced;
            b.last_applied = s.applied;
            // Reconcile the (fresh) fault log with the restored health so
            // health accounting stays truthful across the restart: a
            // binding restored into a degraded state gets its interval
            // re-opened (so its eventual recovery is recorded), and a
            // binding restored as Engaged closes any stale open interval
            // (so it does not report unhealthy forever).
            let mut log = self.log.borrow_mut();
            match b.health {
                BindingHealth::Engaged => log.mark_recovered(b.next_run, idx),
                BindingHealth::Degraded { .. } => {
                    log.reopen_degraded(b.next_run, idx, false);
                }
                BindingHealth::FallenBack { since } => {
                    log.reopen_degraded(since, idx, true);
                }
            }
        }
        Ok(())
    }

    /// Re-applies every binding's last snapshotted schedule through its
    /// translator, re-discovering live threads through the driver. Call
    /// once after [`restore`](Lachesis::restore), before resuming the
    /// loop: the OS-level priorities (lost if the kernel restarted, stale
    /// if operators respawned) match the pre-crash schedule again without
    /// waiting for fresh metrics. Idempotent — re-applying an already
    /// in-force schedule is a no-op at the OS level.
    ///
    /// Best-effort by design: an operator that no longer resolves to a
    /// live thread is skipped (the next regular round reschedules
    /// whatever actually runs). Returns the number of bindings whose
    /// schedule was re-applied cleanly.
    pub fn reapply_snapshot(&mut self, kernel: &mut Kernel) -> usize {
        let mut clean = 0;
        for idx in 0..self.bindings.len() {
            if self.reapply_binding(kernel, idx) {
                clean += 1;
            }
        }
        clean
    }

    /// Re-applies one binding's last applied schedule (see
    /// [`reapply_snapshot`](Lachesis::reapply_snapshot)); also the unfence
    /// path — when a fenced driver's metrics freshen, its bindings get
    /// their pre-partition schedule back through here. Returns whether the
    /// schedule was re-applied cleanly.
    fn reapply_binding(&mut self, kernel: &mut Kernel, idx: usize) -> bool {
        let now = kernel.now();
        if self.bindings[idx].last_applied.is_empty() {
            return false;
        }
        let driver = Rc::clone(&self.drivers[self.bindings[idx].driver_idx]);
        let live: std::collections::HashSet<OpRef> = driver.entities().into_iter().collect();
        let b = &mut self.bindings[idx];
        let schedule: crate::schedule::SinglePrioritySchedule = b
            .last_applied
            .iter()
            .copied()
            .filter(|(op, _)| live.contains(op))
            .collect();
        if schedule.is_empty() {
            return false;
        }
        let outcome = b.translator.apply(
            kernel,
            driver.as_ref(),
            &Schedule::Single(schedule),
            b.policy.priority_kind(),
        );
        match outcome {
            Ok(()) => {
                Self::emit(kernel, || TraceEvent::Instant {
                    track: TraceTrack::Supervisor,
                    name: "reapply",
                    args: vec![("binding", idx as f64)],
                });
                true
            }
            Err(e) => {
                let e = LachesisError::from(e);
                self.log.borrow_mut().record_error(
                    now,
                    Some(idx),
                    e.kind_label(),
                    format!("snapshot re-apply: {e}"),
                );
                false
            }
        }
    }

    /// Installs the middleware as a periodic kernel activity and hands
    /// ownership to the kernel. Returns the callback id (for cancellation).
    ///
    /// Errors never panic the simulation: transient ones are supervised
    /// inside [`run_if_due`](Lachesis::run_if_due), and persistent ones are
    /// recorded in the [`FaultLog`] (grab it with
    /// [`fault_log`](Lachesis::fault_log) before calling this) — queries
    /// keep running under the OS default schedule either way.
    pub fn start(mut self, kernel: &mut Kernel) -> CallbackId {
        let period = self.wake_period();
        kernel.schedule_periodic(period, period, move |k| {
            // Persistent errors were already recorded in the fault log by
            // run_if_due; the loop keeps running so queries stay scheduled.
            let _ = self.run_if_due(k);
        })
    }

    /// Like [`start`](Lachesis::start), but writes a fresh crash-recovery
    /// snapshot into `sink` after every wake — the write-ahead state an
    /// external watchdog would persist. Killing the returned callback
    /// ([`Kernel::cancel_callback`]), building an identically configured
    /// instance, [`restore`](Lachesis::restore)-ing the sink's contents and
    /// starting it again resumes scheduling where the dead process left
    /// off.
    pub fn start_with_snapshots(
        mut self,
        kernel: &mut Kernel,
        sink: Rc<RefCell<String>>,
    ) -> CallbackId {
        let period = self.wake_period();
        kernel.schedule_periodic(period, period, move |k| {
            let _ = self.run_if_due(k);
            *sink.borrow_mut() = self.snapshot();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_of_periods() {
        assert_eq!(gcd(50, 1000), 50);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
    }
}
