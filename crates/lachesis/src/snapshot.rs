//! Middleware crash-recovery snapshots.
//!
//! Lachesis is stateful in exactly three places: per-binding supervisor
//! health, the next scheduled run time, and the last successfully applied
//! schedule. A snapshot captures those so a middleware process killed
//! mid-experiment can cold-restart, re-discover live entities through its
//! driver, idempotently re-apply the last known priorities and resume the
//! periodic loop — converging to the same schedule as an uninterrupted run.
//!
//! The format is a versioned line-based text document (no serde in the
//! dependency tree). Priorities are serialized as the hex bit pattern of
//! the `f64` so the round-trip is exact:
//!
//! ```text
//! lachesis-snapshot v2
//! bindings 2
//! binding 0 health=engaged next_run=1500000000 announced=1 applied=2
//! apply 0 q0/op1 3ff0000000000000
//! apply 0 q0/op2 4008000000000000
//! binding 1 health=degraded:2 next_run=2000000000 announced=1 applied=0
//! admission tenants=1 records=1
//! atenant 74332d61 demand=4000000000000000 cpu=0000000000000000 at=1500000000
//! arecord at=1500000000 tenant=74332d61 decision=0 demand=... used=... budget=...
//! watchdog ops=1 tenants=1
//! watch 0 q0/op1 progress=3ff0000000000000 at=1400000000 starved=2 level=1
//! wtenant 0 degraded=0
//! ```
//!
//! v2 adds the optional `admission`/`watchdog` sections (multi-tenant
//! state: the admitted demand book, the decision history, the starvation
//! ladder and which tenants were already degraded). The decoder still
//! accepts v1 documents — they simply restore without those sections.
//! Tenant names are hex-encoded so the whitespace-split line format never
//! ambiguates.

use std::fmt;

use simos::SimTime;

use crate::admission::{AdmissionDecision, AdmissionRecord};
use crate::entity::OpRef;
use crate::supervisor::BindingHealth;

/// Magic first line of every snapshot written by this version.
const HEADER_V2: &str = "lachesis-snapshot v2";
/// Older header this version still reads.
const HEADER_V1: &str = "lachesis-snapshot v1";

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The text does not start with a known snapshot header.
    BadHeader,
    /// A line could not be parsed (1-based line number and content).
    BadLine(usize, String),
    /// The snapshot's binding count does not match the middleware it is
    /// being restored into — snapshots only restore into an identically
    /// configured instance.
    BindingCountMismatch {
        /// Bindings in the middleware being restored into.
        expected: usize,
        /// Bindings recorded in the snapshot.
        found: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "missing `{HEADER_V2}` header"),
            SnapshotError::BadLine(n, l) => write!(f, "unparseable snapshot line {n}: {l:?}"),
            SnapshotError::BindingCountMismatch { expected, found } => write!(
                f,
                "snapshot has {found} binding(s) but the middleware has {expected}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The persisted state of one policy binding.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BindingSnapshot {
    pub health: BindingHealth,
    pub next_run: SimTime,
    pub announced: bool,
    /// `(op, priority)` pairs of the last successfully applied schedule,
    /// in entity order; empty when no apply has succeeded yet.
    pub applied: Vec<(OpRef, f64)>,
}

/// Persisted [`AdmissionController`](crate::AdmissionController) state:
/// the admitted demand book (so a restart does not forget who holds CPU
/// budget) plus the decision history (so SLO accounting spans the crash).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct AdmissionSnapshot {
    /// `(tenant, demand_cores, last_cpu_s, last_at)`, sorted by tenant
    /// name so identical state always encodes to identical bytes.
    pub tenants: Vec<(String, f64, f64, SimTime)>,
    /// Every decision made so far, in order.
    pub records: Vec<AdmissionRecord>,
}

/// `(last_progress, last_at, starved, level)` for one watched operator.
pub(crate) type WatchEntry = (Option<f64>, Option<SimTime>, u32, u32);

/// Persisted [`StarvationWatchdog`](crate::StarvationWatchdog) state: the
/// per-operator starvation ladder and which tenants were degraded, so a
/// restart neither re-degrades an already degraded tenant nor resets a
/// starving operator's escalation back to zero.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct WatchdogSnapshot {
    /// `((driver, op), (last_progress, last_at, starved, level))`,
    /// key-sorted for deterministic encoding.
    pub watch: Vec<((usize, OpRef), WatchEntry)>,
    /// Degraded flag per registered tenant, in registration order.
    pub degraded: Vec<bool>,
}

/// A full decoded snapshot document.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SnapshotDoc {
    pub bindings: Vec<BindingSnapshot>,
    /// `None` when the snapshotting instance had no admission controller
    /// (and always for v1 documents).
    pub admission: Option<AdmissionSnapshot>,
    /// `None` when the snapshotting instance had no watchdog (and always
    /// for v1 documents).
    pub watchdog: Option<WatchdogSnapshot>,
}

fn encode_health(h: BindingHealth) -> String {
    match h {
        BindingHealth::Engaged => "engaged".to_owned(),
        BindingHealth::Degraded {
            consecutive_failures,
        } => format!("degraded:{consecutive_failures}"),
        BindingHealth::FallenBack { since } => format!("fallen_back:{}", since.as_nanos()),
    }
}

fn decode_health(s: &str) -> Option<BindingHealth> {
    if s == "engaged" {
        return Some(BindingHealth::Engaged);
    }
    if let Some(n) = s.strip_prefix("degraded:") {
        return Some(BindingHealth::Degraded {
            consecutive_failures: n.parse().ok()?,
        });
    }
    if let Some(n) = s.strip_prefix("fallen_back:") {
        return Some(BindingHealth::FallenBack {
            since: SimTime::from_nanos(n.parse().ok()?),
        });
    }
    None
}

/// `q<i>/op<j>` — the `Display` form of [`OpRef`].
fn decode_op(s: &str) -> Option<OpRef> {
    let (q, op) = s.split_once('/')?;
    Some(OpRef::new(
        q.strip_prefix('q')?.parse().ok()?,
        op.strip_prefix("op")?.parse().ok()?,
    ))
}

/// Tenant names hex-encode so whitespace (the line separator) in a name
/// can never corrupt the document; the empty name encodes as `-`.
fn encode_name(s: &str) -> String {
    if s.is_empty() {
        return "-".to_owned();
    }
    s.bytes().fold(String::new(), |mut out, b| {
        out.push_str(&format!("{b:02x}"));
        out
    })
}

fn decode_name(s: &str) -> Option<String> {
    if s == "-" {
        return Some(String::new());
    }
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes: Option<Vec<u8>> = s
        .as_bytes()
        .chunks(2)
        .map(|c| u8::from_str_radix(std::str::from_utf8(c).ok()?, 16).ok())
        .collect();
    String::from_utf8(bytes?).ok()
}

fn encode_opt_bits(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:016x}", v.to_bits()),
        None => "-".to_owned(),
    }
}

fn decode_opt_bits(s: &str) -> Option<Option<f64>> {
    if s == "-" {
        return Some(None);
    }
    u64::from_str_radix(s, 16).ok().map(|b| Some(f64::from_bits(b)))
}

fn encode_opt_time(t: Option<SimTime>) -> String {
    match t {
        Some(t) => t.as_nanos().to_string(),
        None => "-".to_owned(),
    }
}

fn decode_opt_time(s: &str) -> Option<Option<SimTime>> {
    if s == "-" {
        return Some(None);
    }
    s.parse().ok().map(|n| Some(SimTime::from_nanos(n)))
}

fn encode_decision(d: AdmissionDecision) -> u8 {
    match d {
        AdmissionDecision::Admit => 0,
        AdmissionDecision::Queue => 1,
        AdmissionDecision::Reject => 2,
    }
}

fn decode_decision(s: &str) -> Option<AdmissionDecision> {
    match s {
        "0" => Some(AdmissionDecision::Admit),
        "1" => Some(AdmissionDecision::Queue),
        "2" => Some(AdmissionDecision::Reject),
        _ => None,
    }
}

pub(crate) fn encode(doc: &SnapshotDoc) -> String {
    let mut out = String::new();
    out.push_str(HEADER_V2);
    out.push('\n');
    out.push_str(&format!("bindings {}\n", doc.bindings.len()));
    for (idx, b) in doc.bindings.iter().enumerate() {
        out.push_str(&format!(
            "binding {idx} health={} next_run={} announced={} applied={}\n",
            encode_health(b.health),
            b.next_run.as_nanos(),
            b.announced as u8,
            b.applied.len(),
        ));
        for (op, p) in &b.applied {
            out.push_str(&format!("apply {idx} {op} {:016x}\n", p.to_bits()));
        }
    }
    if let Some(a) = &doc.admission {
        out.push_str(&format!(
            "admission tenants={} records={}\n",
            a.tenants.len(),
            a.records.len()
        ));
        for (name, demand, cpu, at) in &a.tenants {
            out.push_str(&format!(
                "atenant {} demand={:016x} cpu={:016x} at={}\n",
                encode_name(name),
                demand.to_bits(),
                cpu.to_bits(),
                at.as_nanos(),
            ));
        }
        for r in &a.records {
            out.push_str(&format!(
                "arecord at={} tenant={} decision={} demand={:016x} used={:016x} budget={:016x}\n",
                r.at.as_nanos(),
                encode_name(&r.tenant),
                encode_decision(r.decision),
                r.demand_cores.to_bits(),
                r.used_cores.to_bits(),
                r.budget_cores.to_bits(),
            ));
        }
    }
    if let Some(w) = &doc.watchdog {
        out.push_str(&format!(
            "watchdog ops={} tenants={}\n",
            w.watch.len(),
            w.degraded.len()
        ));
        for ((di, op), (progress, at, starved, level)) in &w.watch {
            out.push_str(&format!(
                "watch {di} {op} progress={} at={} starved={starved} level={level}\n",
                encode_opt_bits(*progress),
                encode_opt_time(*at),
            ));
        }
        for (i, d) in w.degraded.iter().enumerate() {
            out.push_str(&format!("wtenant {i} degraded={}\n", *d as u8));
        }
    }
    out
}

pub(crate) fn decode(text: &str) -> Result<SnapshotDoc, SnapshotError> {
    let mut lines = text.lines().enumerate();
    let bad = |n: usize, l: &str| SnapshotError::BadLine(n + 1, l.to_owned());
    let v2 = match lines.next() {
        Some((_, l)) if l.trim() == HEADER_V2 => true,
        Some((_, l)) if l.trim() == HEADER_V1 => false,
        _ => return Err(SnapshotError::BadHeader),
    };
    let count: usize = match lines.next() {
        Some((n, l)) => l
            .strip_prefix("bindings ")
            .and_then(|c| c.trim().parse().ok())
            .ok_or_else(|| bad(n, l))?,
        None => return Err(SnapshotError::BadHeader),
    };
    let mut out: Vec<BindingSnapshot> = Vec::with_capacity(count);
    let mut admission: Option<AdmissionSnapshot> = None;
    let mut watchdog: Option<WatchdogSnapshot> = None;
    for (n, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let kind = fields.next();
        // The v2 sections are unknown line kinds to a v1 document.
        if !v2
            && matches!(
                kind,
                Some("admission" | "atenant" | "arecord" | "watchdog" | "watch" | "wtenant")
            )
        {
            return Err(bad(n, line));
        }
        match kind {
            Some("binding") => {
                let idx: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                if idx != out.len() {
                    return Err(bad(n, line));
                }
                let mut health = None;
                let mut next_run = None;
                let mut announced = None;
                for f in fields {
                    let (key, val) = f.split_once('=').ok_or_else(|| bad(n, line))?;
                    match key {
                        "health" => health = decode_health(val),
                        "next_run" => {
                            next_run = val.parse().ok().map(SimTime::from_nanos);
                        }
                        "announced" => announced = Some(val == "1"),
                        // `applied=<m>` is advisory; the entry count is
                        // implied by the `apply` lines that follow.
                        "applied" => {}
                        _ => return Err(bad(n, line)),
                    }
                }
                out.push(BindingSnapshot {
                    health: health.ok_or_else(|| bad(n, line))?,
                    next_run: next_run.ok_or_else(|| bad(n, line))?,
                    announced: announced.ok_or_else(|| bad(n, line))?,
                    applied: Vec::new(),
                });
            }
            Some("apply") => {
                let idx: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                let op = fields
                    .next()
                    .and_then(decode_op)
                    .ok_or_else(|| bad(n, line))?;
                let bits = fields
                    .next()
                    .and_then(|f| u64::from_str_radix(f, 16).ok())
                    .ok_or_else(|| bad(n, line))?;
                if idx + 1 != out.len() || fields.next().is_some() {
                    return Err(bad(n, line));
                }
                out[idx].applied.push((op, f64::from_bits(bits)));
            }
            Some("admission") => {
                if admission.is_some() {
                    return Err(bad(n, line));
                }
                admission = Some(AdmissionSnapshot::default());
            }
            Some("atenant") => {
                let a = admission.as_mut().ok_or_else(|| bad(n, line))?;
                let name = fields
                    .next()
                    .and_then(decode_name)
                    .ok_or_else(|| bad(n, line))?;
                let mut kv = |key: &str| -> Option<&str> {
                    fields.next()?.strip_prefix(key)?.strip_prefix('=')
                };
                let demand = kv("demand")
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .map(f64::from_bits)
                    .ok_or_else(|| bad(n, line))?;
                let cpu = kv("cpu")
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .map(f64::from_bits)
                    .ok_or_else(|| bad(n, line))?;
                let at = kv("at")
                    .and_then(|v| v.parse().ok())
                    .map(SimTime::from_nanos)
                    .ok_or_else(|| bad(n, line))?;
                a.tenants.push((name, demand, cpu, at));
            }
            Some("arecord") => {
                let a = admission.as_mut().ok_or_else(|| bad(n, line))?;
                let mut kv = |key: &str| -> Option<&str> {
                    fields.next()?.strip_prefix(key)?.strip_prefix('=')
                };
                let at = kv("at")
                    .and_then(|v| v.parse().ok())
                    .map(SimTime::from_nanos)
                    .ok_or_else(|| bad(n, line))?;
                let tenant = kv("tenant")
                    .and_then(decode_name)
                    .ok_or_else(|| bad(n, line))?;
                let decision = kv("decision")
                    .and_then(decode_decision)
                    .ok_or_else(|| bad(n, line))?;
                let mut bits = |key| {
                    kv(key)
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .map(f64::from_bits)
                        .ok_or_else(|| bad(n, line))
                };
                let demand_cores = bits("demand")?;
                let used_cores = bits("used")?;
                let budget_cores = bits("budget")?;
                a.records.push(AdmissionRecord {
                    at,
                    tenant,
                    decision,
                    demand_cores,
                    used_cores,
                    budget_cores,
                });
            }
            Some("watchdog") => {
                if watchdog.is_some() {
                    return Err(bad(n, line));
                }
                watchdog = Some(WatchdogSnapshot::default());
            }
            Some("watch") => {
                let w = watchdog.as_mut().ok_or_else(|| bad(n, line))?;
                let di: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                let op = fields
                    .next()
                    .and_then(decode_op)
                    .ok_or_else(|| bad(n, line))?;
                let mut kv = |key: &str| -> Option<&str> {
                    fields.next()?.strip_prefix(key)?.strip_prefix('=')
                };
                let progress = kv("progress")
                    .and_then(decode_opt_bits)
                    .ok_or_else(|| bad(n, line))?;
                let at = kv("at")
                    .and_then(decode_opt_time)
                    .ok_or_else(|| bad(n, line))?;
                let starved: u32 = kv("starved")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                let level: u32 = kv("level")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                w.watch.push(((di, op), (progress, at, starved, level)));
            }
            Some("wtenant") => {
                let w = watchdog.as_mut().ok_or_else(|| bad(n, line))?;
                let idx: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                if idx != w.degraded.len() {
                    return Err(bad(n, line));
                }
                let degraded = fields
                    .next()
                    .and_then(|f| f.strip_prefix("degraded="))
                    .and_then(|v| match v {
                        "0" => Some(false),
                        "1" => Some(true),
                        _ => None,
                    })
                    .ok_or_else(|| bad(n, line))?;
                w.degraded.push(degraded);
            }
            _ => return Err(bad(n, line)),
        }
    }
    if out.len() != count {
        return Err(SnapshotError::BindingCountMismatch {
            expected: count,
            found: out.len(),
        });
    }
    Ok(SnapshotDoc {
        bindings: out,
        admission,
        watchdog,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BindingSnapshot> {
        vec![
            BindingSnapshot {
                health: BindingHealth::Engaged,
                next_run: SimTime::from_nanos(1_500_000_000),
                announced: true,
                applied: vec![
                    (OpRef::new(0, 1), 1.0),
                    (OpRef::new(0, 2), -0.25),
                    (OpRef::new(1, 0), f64::NEG_INFINITY),
                ],
            },
            BindingSnapshot {
                health: BindingHealth::Degraded {
                    consecutive_failures: 2,
                },
                next_run: SimTime::from_nanos(2_000_000_000),
                announced: false,
                applied: Vec::new(),
            },
            BindingSnapshot {
                health: BindingHealth::FallenBack {
                    since: SimTime::from_nanos(7),
                },
                next_run: SimTime::ZERO,
                announced: true,
                applied: Vec::new(),
            },
        ]
    }

    #[test]
    fn round_trips_exactly() {
        let original = SnapshotDoc {
            bindings: sample(),
            admission: None,
            watchdog: None,
        };
        let text = encode(&original);
        assert!(text.starts_with("lachesis-snapshot v2\n"));
        let decoded = decode(&text).unwrap();
        assert_eq!(decoded, original);
        // Priorities round-trip bit-exactly, including non-finite values.
        assert_eq!(decoded.bindings[0].applied[2].1, f64::NEG_INFINITY);
    }

    #[test]
    fn v2_sections_round_trip_exactly() {
        let original = SnapshotDoc {
            bindings: sample(),
            admission: Some(AdmissionSnapshot {
                tenants: vec![
                    ("a big tenant".to_owned(), 1.25, 0.5, SimTime::from_nanos(9)),
                    (String::new(), 0.0, 0.0, SimTime::ZERO),
                ],
                records: vec![AdmissionRecord {
                    at: SimTime::from_nanos(3),
                    tenant: "a big tenant".to_owned(),
                    decision: AdmissionDecision::Queue,
                    demand_cores: 1.25,
                    used_cores: 2.5,
                    budget_cores: 3.6,
                }],
            }),
            watchdog: Some(WatchdogSnapshot {
                watch: vec![
                    ((0, OpRef::new(0, 1)), (Some(7.5), Some(SimTime::from_nanos(4)), 2, 1)),
                    ((1, OpRef::new(2, 0)), (None, None, 0, 0)),
                ],
                degraded: vec![false, true],
            }),
        };
        let text = encode(&original);
        let decoded = decode(&text).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn still_reads_v1_documents() {
        let v1 = "lachesis-snapshot v1\nbindings 1\n\
                  binding 0 health=engaged next_run=5 announced=1 applied=1\n\
                  apply 0 q0/op1 3ff0000000000000\n";
        let doc = decode(v1).unwrap();
        assert_eq!(doc.bindings.len(), 1);
        assert_eq!(doc.bindings[0].applied, vec![(OpRef::new(0, 1), 1.0)]);
        assert_eq!(doc.admission, None);
        assert_eq!(doc.watchdog, None);
        // ... but a v1 document must not smuggle v2 sections.
        let bad = format!("{v1}admission tenants=0 records=0\n");
        assert!(matches!(decode(&bad), Err(SnapshotError::BadLine(..))));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode("not a snapshot"), Err(SnapshotError::BadHeader));
        assert!(matches!(
            decode("lachesis-snapshot v1\nbindings 1\nbogus line"),
            Err(SnapshotError::BadLine(3, _))
        ));
        assert_eq!(
            decode("lachesis-snapshot v1\nbindings 2\nbinding 0 health=engaged next_run=0 announced=1 applied=0"),
            Err(SnapshotError::BindingCountMismatch {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn health_encoding_is_stable() {
        assert_eq!(
            decode_health("degraded:3"),
            Some(BindingHealth::Degraded {
                consecutive_failures: 3
            })
        );
        assert_eq!(decode_health("nonsense"), None);
        assert_eq!(decode_op("q2/op5"), Some(OpRef::new(2, 5)));
        assert_eq!(decode_op("2/5"), None);
    }
}
