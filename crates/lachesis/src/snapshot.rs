//! Middleware crash-recovery snapshots.
//!
//! Lachesis is stateful in exactly three places: per-binding supervisor
//! health, the next scheduled run time, and the last successfully applied
//! schedule. A snapshot captures those so a middleware process killed
//! mid-experiment can cold-restart, re-discover live entities through its
//! driver, idempotently re-apply the last known priorities and resume the
//! periodic loop — converging to the same schedule as an uninterrupted run.
//!
//! The format is a versioned line-based text document (no serde in the
//! dependency tree). Priorities are serialized as the hex bit pattern of
//! the `f64` so the round-trip is exact:
//!
//! ```text
//! lachesis-snapshot v1
//! bindings 2
//! binding 0 health=engaged next_run=1500000000 announced=1 applied=2
//! apply 0 q0/op1 3ff0000000000000
//! apply 0 q0/op2 4008000000000000
//! binding 1 health=degraded:2 next_run=2000000000 announced=1 applied=0
//! ```

use std::fmt;

use simos::SimTime;

use crate::entity::OpRef;
use crate::supervisor::BindingHealth;

/// Magic first line of every snapshot.
const HEADER: &str = "lachesis-snapshot v1";

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The text does not start with the v1 header.
    BadHeader,
    /// A line could not be parsed (1-based line number and content).
    BadLine(usize, String),
    /// The snapshot's binding count does not match the middleware it is
    /// being restored into — snapshots only restore into an identically
    /// configured instance.
    BindingCountMismatch {
        /// Bindings in the middleware being restored into.
        expected: usize,
        /// Bindings recorded in the snapshot.
        found: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "missing `{HEADER}` header"),
            SnapshotError::BadLine(n, l) => write!(f, "unparseable snapshot line {n}: {l:?}"),
            SnapshotError::BindingCountMismatch { expected, found } => write!(
                f,
                "snapshot has {found} binding(s) but the middleware has {expected}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The persisted state of one policy binding.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BindingSnapshot {
    pub health: BindingHealth,
    pub next_run: SimTime,
    pub announced: bool,
    /// `(op, priority)` pairs of the last successfully applied schedule,
    /// in entity order; empty when no apply has succeeded yet.
    pub applied: Vec<(OpRef, f64)>,
}

fn encode_health(h: BindingHealth) -> String {
    match h {
        BindingHealth::Engaged => "engaged".to_owned(),
        BindingHealth::Degraded {
            consecutive_failures,
        } => format!("degraded:{consecutive_failures}"),
        BindingHealth::FallenBack { since } => format!("fallen_back:{}", since.as_nanos()),
    }
}

fn decode_health(s: &str) -> Option<BindingHealth> {
    if s == "engaged" {
        return Some(BindingHealth::Engaged);
    }
    if let Some(n) = s.strip_prefix("degraded:") {
        return Some(BindingHealth::Degraded {
            consecutive_failures: n.parse().ok()?,
        });
    }
    if let Some(n) = s.strip_prefix("fallen_back:") {
        return Some(BindingHealth::FallenBack {
            since: SimTime::from_nanos(n.parse().ok()?),
        });
    }
    None
}

/// `q<i>/op<j>` — the `Display` form of [`OpRef`].
fn decode_op(s: &str) -> Option<OpRef> {
    let (q, op) = s.split_once('/')?;
    Some(OpRef::new(
        q.strip_prefix('q')?.parse().ok()?,
        op.strip_prefix("op")?.parse().ok()?,
    ))
}

pub(crate) fn encode(bindings: &[BindingSnapshot]) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("bindings {}\n", bindings.len()));
    for (idx, b) in bindings.iter().enumerate() {
        out.push_str(&format!(
            "binding {idx} health={} next_run={} announced={} applied={}\n",
            encode_health(b.health),
            b.next_run.as_nanos(),
            b.announced as u8,
            b.applied.len(),
        ));
        for (op, p) in &b.applied {
            out.push_str(&format!("apply {idx} {op} {:016x}\n", p.to_bits()));
        }
    }
    out
}

pub(crate) fn decode(text: &str) -> Result<Vec<BindingSnapshot>, SnapshotError> {
    let mut lines = text.lines().enumerate();
    let bad = |n: usize, l: &str| SnapshotError::BadLine(n + 1, l.to_owned());
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        _ => return Err(SnapshotError::BadHeader),
    }
    let count: usize = match lines.next() {
        Some((n, l)) => l
            .strip_prefix("bindings ")
            .and_then(|c| c.trim().parse().ok())
            .ok_or_else(|| bad(n, l))?,
        None => return Err(SnapshotError::BadHeader),
    };
    let mut out: Vec<BindingSnapshot> = Vec::with_capacity(count);
    for (n, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some("binding") => {
                let idx: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                if idx != out.len() {
                    return Err(bad(n, line));
                }
                let mut health = None;
                let mut next_run = None;
                let mut announced = None;
                for f in fields {
                    let (key, val) = f.split_once('=').ok_or_else(|| bad(n, line))?;
                    match key {
                        "health" => health = decode_health(val),
                        "next_run" => {
                            next_run = val.parse().ok().map(SimTime::from_nanos);
                        }
                        "announced" => announced = Some(val == "1"),
                        // `applied=<m>` is advisory; the entry count is
                        // implied by the `apply` lines that follow.
                        "applied" => {}
                        _ => return Err(bad(n, line)),
                    }
                }
                out.push(BindingSnapshot {
                    health: health.ok_or_else(|| bad(n, line))?,
                    next_run: next_run.ok_or_else(|| bad(n, line))?,
                    announced: announced.ok_or_else(|| bad(n, line))?,
                    applied: Vec::new(),
                });
            }
            Some("apply") => {
                let idx: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| bad(n, line))?;
                let op = fields
                    .next()
                    .and_then(decode_op)
                    .ok_or_else(|| bad(n, line))?;
                let bits = fields
                    .next()
                    .and_then(|f| u64::from_str_radix(f, 16).ok())
                    .ok_or_else(|| bad(n, line))?;
                if idx + 1 != out.len() || fields.next().is_some() {
                    return Err(bad(n, line));
                }
                out[idx].applied.push((op, f64::from_bits(bits)));
            }
            _ => return Err(bad(n, line)),
        }
    }
    if out.len() != count {
        return Err(SnapshotError::BindingCountMismatch {
            expected: count,
            found: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BindingSnapshot> {
        vec![
            BindingSnapshot {
                health: BindingHealth::Engaged,
                next_run: SimTime::from_nanos(1_500_000_000),
                announced: true,
                applied: vec![
                    (OpRef::new(0, 1), 1.0),
                    (OpRef::new(0, 2), -0.25),
                    (OpRef::new(1, 0), f64::NEG_INFINITY),
                ],
            },
            BindingSnapshot {
                health: BindingHealth::Degraded {
                    consecutive_failures: 2,
                },
                next_run: SimTime::from_nanos(2_000_000_000),
                announced: false,
                applied: Vec::new(),
            },
            BindingSnapshot {
                health: BindingHealth::FallenBack {
                    since: SimTime::from_nanos(7),
                },
                next_run: SimTime::ZERO,
                announced: true,
                applied: Vec::new(),
            },
        ]
    }

    #[test]
    fn round_trips_exactly() {
        let original = sample();
        let text = encode(&original);
        assert!(text.starts_with("lachesis-snapshot v1\n"));
        let decoded = decode(&text).unwrap();
        assert_eq!(decoded, original);
        // Priorities round-trip bit-exactly, including non-finite values.
        assert_eq!(decoded[0].applied[2].1, f64::NEG_INFINITY);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode("not a snapshot"), Err(SnapshotError::BadHeader));
        assert!(matches!(
            decode("lachesis-snapshot v1\nbindings 1\nbogus line"),
            Err(SnapshotError::BadLine(3, _))
        ));
        assert_eq!(
            decode("lachesis-snapshot v1\nbindings 2\nbinding 0 health=engaged next_run=0 announced=1 applied=0"),
            Err(SnapshotError::BindingCountMismatch {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn health_encoding_is_stable() {
        assert_eq!(
            decode_health("degraded:3"),
            Some(BindingHealth::Degraded {
                consecutive_failures: 3
            })
        );
        assert_eq!(decode_health("nonsense"), None);
        assert_eq!(decode_op("q2/op5"), Some(OpRef::new(2, 5)));
        assert_eq!(decode_op("2/5"), None);
    }
}
