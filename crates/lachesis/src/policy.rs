//! Scheduling policies (paper Def. 3.2, §5.1).
//!
//! A policy consumes metrics (through the provider) and outputs real-valued
//! priorities for physical operators — higher means more CPU. Policies are
//! SPE-agnostic: they never see engine internals, only metrics and the
//! abstract topology exposed by the driver.

use lachesis_metrics::{EntityValues, MetricName, MetricProvider};
use simos::{SimDuration, SimTime};

use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::normalize::PriorityKind;
use crate::schedule::SinglePrioritySchedule;

/// Everything a policy may look at while computing a schedule.
pub struct PolicyView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The driver whose operators are being scheduled.
    pub driver: &'a dyn SpeDriver,
    /// The operators this policy instance is responsible for.
    pub scope: &'a [OpRef],
    provider: &'a MetricProvider<OpRef>,
    source_idx: usize,
}

impl std::fmt::Debug for PolicyView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyView")
            .field("now", &self.now)
            .field("scope", &self.scope.len())
            .finish_non_exhaustive()
    }
}

impl<'a> PolicyView<'a> {
    /// Creates a view (used by the middleware loop and by tests).
    pub fn new(
        now: SimTime,
        driver: &'a dyn SpeDriver,
        scope: &'a [OpRef],
        provider: &'a MetricProvider<OpRef>,
        source_idx: usize,
    ) -> Self {
        PolicyView {
            now,
            driver,
            scope,
            provider,
            source_idx,
        }
    }

    /// The per-entity values of a metric, as of the last provider update.
    pub fn metric(&self, name: MetricName) -> Option<&'a EntityValues<OpRef>> {
        self.provider.get(self.source_idx, name)
    }

    /// One entity's metric value. NaN values (e.g. from a corrupted metric
    /// backend) are reported as missing so every policy falls back to its
    /// per-metric default instead of propagating NaN into priorities.
    pub fn metric_of(&self, name: MetricName, op: OpRef) -> Option<f64> {
        self.metric(name)?.get(&op).filter(|v| !v.is_nan())
    }
}

/// A scheduling policy (paper Definition 3.2).
///
/// # Examples
///
/// A policy that statically prioritizes egress operators:
///
/// ```
/// use lachesis::{Policy, PolicyView, SinglePrioritySchedule};
/// use lachesis_metrics::MetricName;
/// use simos::SimDuration;
///
/// struct SinksFirst;
///
/// impl Policy for SinksFirst {
///     fn name(&self) -> &str { "sinks-first" }
///     fn period(&self) -> SimDuration { SimDuration::from_secs(1) }
///     fn required_metrics(&self) -> Vec<MetricName> { Vec::new() }
///     fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
///         view.scope
///             .iter()
///             .map(|&op| (op, if view.driver.is_egress(op) { 1.0 } else { 0.0 }))
///             .collect()
///     }
/// }
/// ```
pub trait Policy {
    /// The policy's display name.
    fn name(&self) -> &str;

    /// How often the policy wants to run.
    fn period(&self) -> SimDuration;

    /// The metrics the policy needs (registered with the provider at
    /// startup — Algorithm 1, L1).
    fn required_metrics(&self) -> Vec<MetricName>;

    /// The shape of the produced priorities (selects normalization, §5.3).
    fn priority_kind(&self) -> PriorityKind {
        PriorityKind::Linear
    }

    /// Computes priorities for the operators in `view.scope`.
    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule;
}

impl Policy for Box<dyn Policy> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn period(&self) -> SimDuration {
        self.as_ref().period()
    }
    fn required_metrics(&self) -> Vec<MetricName> {
        self.as_ref().required_metrics()
    }
    fn priority_kind(&self) -> PriorityKind {
        self.as_ref().priority_kind()
    }
    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        self.as_mut().schedule(view)
    }
}
