//! The four scheduling policies evaluated in the paper (§5.1) plus the
//! building blocks for user-defined ones.

use lachesis_metrics::{names, MetricName};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simos::SimDuration;

use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::normalize::PriorityKind;
use crate::policy::{Policy, PolicyView};
use crate::schedule::SinglePrioritySchedule;

/// **Queue Size (QS)** \[EdgeWise\]: prioritizes operators with more input
/// tuples waiting, balancing queue sizes for higher throughput and lower
/// latency.
#[derive(Debug, Clone)]
pub struct QueueSizePolicy {
    period: SimDuration,
}

impl QueueSizePolicy {
    /// Creates the policy with the given scheduling period.
    pub fn new(period: SimDuration) -> Self {
        QueueSizePolicy { period }
    }
}

impl Default for QueueSizePolicy {
    fn default() -> Self {
        Self::new(SimDuration::from_secs(1))
    }
}

impl Policy for QueueSizePolicy {
    fn name(&self) -> &str {
        "qs"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        vec![names::QUEUE_SIZE]
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        view.scope
            .iter()
            .map(|&op| (op, view.metric_of(names::QUEUE_SIZE, op).unwrap_or(0.0)))
            .collect()
    }
}

/// **First-Come-First-Serve (FCFS)** \[7\]: prioritizes operators whose
/// pending input has been in the system longest, minimizing maximum
/// latency.
#[derive(Debug, Clone)]
pub struct FcfsPolicy {
    period: SimDuration,
}

impl FcfsPolicy {
    /// Creates the policy with the given scheduling period.
    pub fn new(period: SimDuration) -> Self {
        FcfsPolicy { period }
    }
}

impl Default for FcfsPolicy {
    fn default() -> Self {
        Self::new(SimDuration::from_secs(1))
    }
}

impl Policy for FcfsPolicy {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        vec![names::HEAD_WAIT]
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        view.scope
            .iter()
            .map(|&op| (op, view.metric_of(names::HEAD_WAIT, op).unwrap_or(0.0)))
            .collect()
    }
}

/// **RANDOM**: uniformly random priorities — the control policy showing
/// that Lachesis' gains are not an artifact of merely perturbing OS
/// priorities (§6.3).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    period: SimDuration,
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates the policy with the given period and RNG seed.
    pub fn new(period: SimDuration, seed: u64) -> Self {
        RandomPolicy {
            period,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        Vec::new()
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        view.scope
            .iter()
            .map(|&op| (op, self.rng.gen_range(0.0..1.0)))
            .collect()
    }
}

/// **Highest Rate (HR)** \[50\]: prioritizes operators on productive (high
/// selectivity), inexpensive (low cost) paths to a sink, minimizing average
/// tuple latency. Priorities are logarithmically spaced.
#[derive(Debug, Clone)]
pub struct HighestRatePolicy {
    period: SimDuration,
}

impl HighestRatePolicy {
    /// Creates the policy with the given scheduling period.
    pub fn new(period: SimDuration) -> Self {
        HighestRatePolicy { period }
    }
}

impl Default for HighestRatePolicy {
    fn default() -> Self {
        Self::new(SimDuration::from_secs(1))
    }
}

impl Policy for HighestRatePolicy {
    fn name(&self) -> &str {
        "hr"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        // On SPEs that expose cost/selectivity these are fetched directly;
        // elsewhere the provider derives them (Fig. 4 / Algorithm 3).
        vec![names::COST, names::SELECTIVITY]
    }

    fn priority_kind(&self) -> PriorityKind {
        PriorityKind::Logarithmic
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        view.scope
            .iter()
            .map(|&op| {
                let (sel, cost) = best_output_path(view.driver, op, &|o| {
                    (
                        view.metric_of(names::SELECTIVITY, o).unwrap_or(1.0),
                        view.metric_of(names::COST, o).unwrap_or(1e-6),
                    )
                });
                (op, sel / cost.max(1e-12))
            })
            .collect()
    }
}

/// Finds the operator's best output path (highest selectivity-product over
/// cost-sum ratio) to any sink; returns `(path_selectivity, path_cost)`.
///
/// These are the `Path Selectivity` / `Path Cost` derived metrics of the
/// paper's Fig. 4, computed over the physical DAG exposed by the driver.
pub fn best_output_path(
    driver: &dyn SpeDriver,
    op: OpRef,
    metrics: &dyn Fn(OpRef) -> (f64, f64),
) -> (f64, f64) {
    fn dfs(
        driver: &dyn SpeDriver,
        op: OpRef,
        metrics: &dyn Fn(OpRef) -> (f64, f64),
        depth: usize,
    ) -> (f64, f64) {
        let (sel, cost) = metrics(op);
        let downstream = driver.downstream(op);
        if downstream.is_empty() || depth > 64 {
            return (sel, cost);
        }
        let mut best: Option<(f64, f64)> = None;
        for d in downstream {
            let (dsel, dcost) = dfs(driver, d, metrics, depth + 1);
            let (psel, pcost) = (sel * dsel, cost + dcost);
            let rate = psel / pcost.max(1e-12);
            if best.is_none_or(|(bs, bc)| rate > bs / bc.max(1e-12)) {
                best = Some((psel, pcost));
            }
        }
        best.unwrap_or((sel, cost))
    }
    dfs(driver, op, metrics, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lachesis_metrics::MetricProvider;
    use simos::SimTime;

    // A tiny fake driver with a diamond topology:
    //       0
    //      / \
    //     1   2
    //      \ /
    //       3 (sink)
    struct FakeDriver;
    impl lachesis_metrics::MetricSource<OpRef> for FakeDriver {
        fn source_name(&self) -> &str {
            "fake"
        }
        fn provides(&self, _m: MetricName) -> bool {
            false
        }
        fn fetch(&self, _m: MetricName) -> lachesis_metrics::EntityValues<OpRef> {
            Default::default()
        }
    }
    impl SpeDriver for FakeDriver {
        fn name(&self) -> &str {
            "fake"
        }
        fn kind(&self) -> spe::SpeKind {
            spe::SpeKind::Liebre
        }
        fn queries(&self) -> Vec<spe::RunningQuery> {
            Vec::new()
        }
        fn entities(&self) -> Vec<OpRef> {
            (0..4).map(|o| OpRef::new(0, o)).collect()
        }
        fn thread_of(&self, _op: OpRef) -> Option<simos::ThreadId> {
            None
        }
        fn downstream(&self, op: OpRef) -> Vec<OpRef> {
            match op.op {
                0 => vec![OpRef::new(0, 1), OpRef::new(0, 2)],
                1 | 2 => vec![OpRef::new(0, 3)],
                _ => vec![],
            }
        }
        fn physical_of(&self, query: usize, logical: usize) -> Vec<OpRef> {
            vec![OpRef::new(query, logical)]
        }
        fn logical_of(&self, op: OpRef) -> Vec<usize> {
            vec![op.op]
        }
        fn is_egress(&self, op: OpRef) -> bool {
            op.op == 3
        }
    }

    fn view_with<'a>(
        provider: &'a MetricProvider<OpRef>,
        driver: &'a FakeDriver,
        scope: &'a [OpRef],
    ) -> PolicyView<'a> {
        PolicyView::new(SimTime::ZERO, driver, scope, provider, 0)
    }

    fn provider_with(metric: MetricName, vals: &[(usize, f64)]) -> MetricProvider<OpRef> {
        // Build a provider whose single source exposes `metric` directly.
        struct Src(MetricName, Vec<(usize, f64)>);
        impl lachesis_metrics::MetricSource<OpRef> for Src {
            fn source_name(&self) -> &str {
                "src"
            }
            fn provides(&self, m: MetricName) -> bool {
                m == self.0
            }
            fn fetch(&self, _m: MetricName) -> lachesis_metrics::EntityValues<OpRef> {
                self.1
                    .iter()
                    .map(|&(o, v)| (OpRef::new(0, o), v))
                    .collect()
            }
        }
        let mut p = MetricProvider::new();
        p.register(metric);
        p.update(SimTime::ZERO, &[&Src(metric, vals.to_vec())]).unwrap();
        p
    }

    #[test]
    fn qs_priorities_are_queue_sizes() {
        let provider = provider_with(names::QUEUE_SIZE, &[(0, 10.0), (1, 3.0)]);
        let driver = FakeDriver;
        let scope: Vec<OpRef> = (0..2).map(|o| OpRef::new(0, o)).collect();
        let mut qs = QueueSizePolicy::default();
        let s = qs.schedule(&view_with(&provider, &driver, &scope));
        assert_eq!(s.get(OpRef::new(0, 0)), Some(10.0));
        assert_eq!(s.get(OpRef::new(0, 1)), Some(3.0));
    }

    #[test]
    fn fcfs_priorities_are_head_waits() {
        let provider = provider_with(names::HEAD_WAIT, &[(0, 0.5), (1, 2.0)]);
        let driver = FakeDriver;
        let scope: Vec<OpRef> = (0..2).map(|o| OpRef::new(0, o)).collect();
        let mut p = FcfsPolicy::default();
        let s = p.schedule(&view_with(&provider, &driver, &scope));
        assert!(s.get(OpRef::new(0, 1)) > s.get(OpRef::new(0, 0)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let provider = MetricProvider::new();
        let driver = FakeDriver;
        let scope: Vec<OpRef> = (0..4).map(|o| OpRef::new(0, o)).collect();
        let mut a = RandomPolicy::new(SimDuration::from_secs(1), 7);
        let mut b = RandomPolicy::new(SimDuration::from_secs(1), 7);
        let va = a.schedule(&view_with(&provider, &driver, &scope));
        let vb = b.schedule(&view_with(&provider, &driver, &scope));
        assert_eq!(va, vb);
        let vc = a.schedule(&view_with(&provider, &driver, &scope));
        assert_ne!(va, vc, "subsequent periods differ");
    }

    #[test]
    fn best_path_prefers_productive_cheap_branch() {
        let driver = FakeDriver;
        // Branch via op1: selectivity 1.0, cost 1.0 (cheap).
        // Branch via op2: selectivity 1.0, cost 10.0 (expensive).
        let metrics = |o: OpRef| -> (f64, f64) {
            match o.op {
                0 => (1.0, 1.0),
                1 => (1.0, 1.0),
                2 => (1.0, 10.0),
                _ => (1.0, 1.0),
            }
        };
        let (sel, cost) = best_output_path(&driver, OpRef::new(0, 0), &metrics);
        assert_eq!(sel, 1.0);
        assert_eq!(cost, 3.0, "cheap path 0->1->3 chosen");
    }

    #[test]
    fn hr_ranks_upstream_of_cheap_path_higher() {
        // Give ops their cost/selectivity through the provider.
        struct Src;
        impl lachesis_metrics::MetricSource<OpRef> for Src {
            fn source_name(&self) -> &str {
                "src"
            }
            fn provides(&self, m: MetricName) -> bool {
                m == names::COST || m == names::SELECTIVITY
            }
            fn fetch(&self, m: MetricName) -> lachesis_metrics::EntityValues<OpRef> {
                (0..4)
                    .map(|o| {
                        let v = if m == names::COST {
                            if o == 2 {
                                10e-6
                            } else {
                                1e-6
                            }
                        } else {
                            1.0
                        };
                        (OpRef::new(0, o), v)
                    })
                    .collect()
            }
        }
        let mut provider = MetricProvider::new();
        provider.register(names::COST);
        provider.register(names::SELECTIVITY);
        provider.update(SimTime::ZERO, &[&Src]).unwrap();
        let driver = FakeDriver;
        let scope: Vec<OpRef> = (0..4).map(|o| OpRef::new(0, o)).collect();
        let mut hr = HighestRatePolicy::default();
        let s = hr.schedule(&view_with(&provider, &driver, &scope));
        // The cheap mid-path operator (1) outranks the expensive one (2).
        assert!(s.get(OpRef::new(0, 1)).unwrap() > s.get(OpRef::new(0, 2)).unwrap());
        // The sink (3) has the highest rate of all (shortest path).
        assert!(s.get(OpRef::new(0, 3)).unwrap() >= s.get(OpRef::new(0, 1)).unwrap());
    }

    #[test]
    fn policy_metadata() {
        assert_eq!(QueueSizePolicy::default().name(), "qs");
        assert_eq!(
            QueueSizePolicy::default().required_metrics(),
            vec![names::QUEUE_SIZE]
        );
        assert_eq!(
            HighestRatePolicy::default().priority_kind(),
            PriorityKind::Logarithmic
        );
        assert_eq!(
            FcfsPolicy::new(SimDuration::from_millis(50)).period(),
            SimDuration::from_millis(50)
        );
    }
}
