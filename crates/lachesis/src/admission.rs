//! Admission control for multi-tenant deployments.
//!
//! Lachesis's policies assume the admitted query set fits the box; this
//! module decides whether it does *before* `deploy`, in the style of DRS:
//! a query's resource demand is the sum of its per-operator service
//! demands (arrival rate × service time, in cores), compared against the
//! node's online CPU budget scaled by a target utilization. Demand for a
//! query that has not run yet comes from the static graph estimate
//! ([`spe::LogicalGraph::estimated_cores`]); once a tenant runs, its
//! demand is refined from live CPU-time metrics so the estimate tracks
//! reality (flash crowds included).
//!
//! Every decision is traced as a supervisor-track instant so experiments
//! can reconstruct the admission log from the trace alone.

use std::collections::HashMap;

use simos::{Kernel, NodeId, SimTime, TraceEvent, TraceTrack};
use spe::{LogicalGraph, RunningQuery};

/// SLO class of a tenant, ordered from most to least expendable.
///
/// Graceful degradation under overload walks this order upward:
/// best-effort tenants are shed or suspended before standard ones, and
/// premium tenants only as a last resort (Cameo's insight that per-query
/// latency targets are the currency of degradation decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// No latency promise; first to be degraded.
    BestEffort,
    /// Ordinary latency target.
    Standard,
    /// Strictest latency target; degraded last.
    Premium,
}

impl SloClass {
    /// Stable numeric code used in trace-instant arguments.
    pub fn code(self) -> f64 {
        match self {
            SloClass::BestEffort => 0.0,
            SloClass::Standard => 1.0,
            SloClass::Premium => 2.0,
        }
    }
}

/// The outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Capacity suffices: deploy now.
    Admit,
    /// The box is currently full but the query alone would fit: hold it
    /// and retry when a tenant departs or demand drops.
    Queue,
    /// The query's own demand exceeds the whole budget: it can never run
    /// acceptably on this box.
    Reject,
}

impl AdmissionDecision {
    /// Stable numeric code used in trace-instant arguments
    /// (0 = admit, 1 = queue, 2 = reject).
    pub fn code(self) -> f64 {
        match self {
            AdmissionDecision::Admit => 0.0,
            AdmissionDecision::Queue => 1.0,
            AdmissionDecision::Reject => 2.0,
        }
    }
}

/// Tunables of the admission controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Fraction of the online CPU budget the admitted set may claim.
    /// Below 1.0 leaves headroom for estimation error and the middleware
    /// itself (DRS keeps utilization strictly under capacity so queues
    /// stay stable).
    pub target_utilization: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            target_utilization: 0.9,
        }
    }
}

/// One recorded admission decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRecord {
    /// When the decision was made.
    pub at: SimTime,
    /// The arriving tenant.
    pub tenant: String,
    /// The decision.
    pub decision: AdmissionDecision,
    /// The arriving query's estimated demand, in cores.
    pub demand_cores: f64,
    /// Demand already admitted at decision time, in cores.
    pub used_cores: f64,
    /// The usable budget (target utilization × online CPUs), in cores.
    pub budget_cores: f64,
}

/// Live demand book-keeping for one admitted tenant.
#[derive(Debug, Clone)]
struct TenantDemand {
    demand_cores: f64,
    /// Cumulative CPU seconds at the last observation, summed over the
    /// query's operators.
    last_cpu_s: f64,
    last_at: SimTime,
}

/// DRS-style admission controller: tracks the demand of admitted tenants
/// and gates `deploy` on the remaining CPU budget.
#[derive(Debug, Default)]
pub struct AdmissionController {
    config: AdmissionConfig,
    admitted: HashMap<String, TenantDemand>,
    history: Vec<AdmissionRecord>,
}

impl AdmissionController {
    /// Creates a controller with the given tunables.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            admitted: HashMap::new(),
            history: Vec::new(),
        }
    }

    /// The usable budget in cores: target utilization × online CPUs
    /// across `nodes` (offline CPUs — hotplug faults — shrink it).
    pub fn budget_cores(&self, kernel: &Kernel, nodes: &[NodeId]) -> f64 {
        let online: usize = nodes
            .iter()
            .map(|&n| kernel.online_cpus(n).unwrap_or(0))
            .sum();
        self.config.target_utilization * online as f64
    }

    /// Total demand of the currently admitted tenants, in cores.
    pub fn used_cores(&self) -> f64 {
        self.admitted.values().map(|t| t.demand_cores).sum()
    }

    /// Decides whether `tenant`'s query may deploy now. The caller
    /// deploys on [`Admit`](AdmissionDecision::Admit), holds the query
    /// for a retry on [`Queue`](AdmissionDecision::Queue) and drops it on
    /// [`Reject`](AdmissionDecision::Reject). The decision (with its
    /// inputs) is appended to [`history`](Self::history) and emitted as a
    /// supervisor-track `admission` trace instant.
    pub fn decide(
        &mut self,
        kernel: &mut Kernel,
        tenant: &str,
        graph: &LogicalGraph,
        nodes: &[NodeId],
    ) -> AdmissionDecision {
        let demand = graph.estimated_cores();
        let budget = self.budget_cores(kernel, nodes);
        let used = self.used_cores();
        let decision = if used + demand <= budget {
            AdmissionDecision::Admit
        } else if demand <= budget {
            AdmissionDecision::Queue
        } else {
            AdmissionDecision::Reject
        };
        let now = kernel.now();
        if decision == AdmissionDecision::Admit {
            self.admitted.insert(
                tenant.to_owned(),
                TenantDemand {
                    demand_cores: demand,
                    last_cpu_s: 0.0,
                    last_at: now,
                },
            );
        }
        self.history.push(AdmissionRecord {
            at: now,
            tenant: tenant.to_owned(),
            decision,
            demand_cores: demand,
            used_cores: used,
            budget_cores: budget,
        });
        if let Some(t) = kernel.trace_sink() {
            t.borrow_mut().push(
                now,
                TraceEvent::Instant {
                    track: TraceTrack::Supervisor,
                    name: "admission",
                    args: vec![
                        ("decision", decision.code()),
                        ("demand", demand),
                        ("used", used),
                        ("budget", budget),
                    ],
                },
            );
        }
        decision
    }

    /// Refines an admitted tenant's demand from the live CPU time its
    /// query consumed since the last observation (Δcpu/Δt in cores) —
    /// the same signal DRS reads from its queueing model, here taken
    /// from the SPE's public monitoring handle. Call it periodically;
    /// flash crowds raise the measured demand and tenant departures
    /// release it. Negative deltas (stats reset at the end of warm-up)
    /// re-anchor the baseline without changing the estimate.
    pub fn observe(&mut self, now: SimTime, tenant: &str, query: &RunningQuery) {
        let Some(t) = self.admitted.get_mut(tenant) else {
            return;
        };
        let cpu_s: f64 = (0..query.op_count())
            .map(|i| query.cell(i).cpu_cost().as_secs_f64())
            .sum();
        let dt = (now - t.last_at).as_secs_f64();
        let dcpu = cpu_s - t.last_cpu_s;
        if dcpu >= 0.0 && dt > 0.0 {
            t.demand_cores = dcpu / dt;
        }
        t.last_cpu_s = cpu_s;
        t.last_at = now;
    }

    /// Releases a tenant's demand (departure or suspension).
    pub fn depart(&mut self, tenant: &str) {
        self.admitted.remove(tenant);
    }

    /// The current demand estimate for an admitted tenant, in cores.
    pub fn tenant_demand(&self, tenant: &str) -> Option<f64> {
        self.admitted.get(tenant).map(|t| t.demand_cores)
    }

    /// Every decision made, in order.
    pub fn history(&self) -> &[AdmissionRecord] {
        &self.history
    }

    /// The controller's recoverable state, for crash-recovery snapshots
    /// (tenant-sorted so identical state encodes identically).
    pub(crate) fn export_state(&self) -> crate::snapshot::AdmissionSnapshot {
        let mut tenants: Vec<(String, f64, f64, SimTime)> = self
            .admitted
            .iter()
            .map(|(name, t)| (name.clone(), t.demand_cores, t.last_cpu_s, t.last_at))
            .collect();
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        crate::snapshot::AdmissionSnapshot {
            tenants,
            records: self.history.clone(),
        }
    }

    /// Replaces the demand book and decision history with snapshotted
    /// state (restart path — the config stays as built).
    pub(crate) fn import_state(&mut self, state: crate::snapshot::AdmissionSnapshot) {
        self.admitted = state
            .tenants
            .into_iter()
            .map(|(name, demand_cores, last_cpu_s, last_at)| {
                (
                    name,
                    TenantDemand {
                        demand_cores,
                        last_cpu_s,
                        last_at,
                    },
                )
            })
            .collect();
        self.history = state.records;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe::{Consume, CostModel, PassThrough, Role, Tuple};

    fn graph(rate_tps: f64, cost_us: u64) -> LogicalGraph {
        let mut b = LogicalGraph::builder("g");
        let src = b.op("src", Role::Ingress, CostModel::micros(cost_us), 1, || {
            Box::new(PassThrough)
        });
        let sink = b.op("sink", Role::Egress, CostModel::micros(cost_us), 1, || {
            Box::new(Consume)
        });
        b.edge(src, sink, spe::Partitioning::Forward);
        b.source("gen", src, rate_tps, |s, now| Tuple::new(now, s, vec![]));
        b.build().unwrap()
    }

    #[test]
    fn admits_until_budget_then_queues_then_rejects() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4); // budget = 0.9 × 4 = 3.6 cores
        let mut ac = AdmissionController::new(AdmissionConfig::default());
        // 1000 t/s × 1000 µs × 2 ops = 2 cores.
        let g = graph(1000.0, 1000);
        assert_eq!(
            ac.decide(&mut kernel, "a", &g, &[node]),
            AdmissionDecision::Admit
        );
        // Second identical query: 2 + 2 > 3.6, but 2 ≤ 3.6 → queue.
        assert_eq!(
            ac.decide(&mut kernel, "b", &g, &[node]),
            AdmissionDecision::Queue
        );
        // A query needing 4 cores can never fit → reject.
        let big = graph(2000.0, 1000);
        assert_eq!(
            ac.decide(&mut kernel, "c", &big, &[node]),
            AdmissionDecision::Reject
        );
        // Departure frees the budget.
        ac.depart("a");
        assert_eq!(
            ac.decide(&mut kernel, "b", &g, &[node]),
            AdmissionDecision::Admit
        );
        assert_eq!(ac.history().len(), 4);
        assert!((ac.history()[0].budget_cores - 3.6).abs() < 1e-9);
    }

    #[test]
    fn offline_cpus_shrink_the_budget() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let ac = AdmissionController::new(AdmissionConfig {
            target_utilization: 1.0,
        });
        assert!((ac.budget_cores(&kernel, &[node]) - 4.0).abs() < 1e-9);
        kernel.schedule_cpu_offline(simos::SimDuration::from_millis(1), node, 3);
        kernel.run_for(simos::SimDuration::from_millis(2));
        assert!((ac.budget_cores(&kernel, &[node]) - 3.0).abs() < 1e-9);
    }
}
