//! Transformation rules: logical → physical schedules (paper §5.1,
//! Algorithm 2).
//!
//! Users may express scheduling preferences over *logical* operators
//! (reusable across deployments and SPEs); a transformation rule converts
//! such a high-level schedule into priorities for the physical operators of
//! a concrete deployment, accounting for fission and fusion.

use std::collections::BTreeMap;

use spe::LogicalOpId;

use crate::driver::SpeDriver;
use crate::schedule::SinglePrioritySchedule;

/// A high-level schedule: priorities for logical operators of one query.
pub type LogicalSchedule = BTreeMap<LogicalOpId, f64>;

/// Algorithm 2: converts a logical schedule to a physical one.
///
/// Replicated (fissioned) logical operators propagate their priority to
/// every replica; fused physical operators take the **maximum** priority of
/// the logical operators they contain.
pub fn transform_logical(
    driver: &dyn SpeDriver,
    query: usize,
    input: &LogicalSchedule,
) -> SinglePrioritySchedule {
    let mut out = SinglePrioritySchedule::new();
    for (&logical, &priority) in input {
        for phys in driver.physical_of(query, logical) {
            if driver.logical_of(phys).len() > 1 {
                // Fusion applied: max over the associated logical ops.
                let cur = out.get(phys).unwrap_or(f64::NEG_INFINITY);
                out.set(phys, cur.max(priority));
            } else {
                out.set(phys, priority);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::OpRef;
    use lachesis_metrics::{EntityValues, MetricName, MetricSource};

    /// Logical ops 0,1,2: op 0 fissioned into phys 0 & 1; ops 1 and 2 fused
    /// into phys 2.
    struct MappingDriver;
    impl MetricSource<OpRef> for MappingDriver {
        fn source_name(&self) -> &str {
            "m"
        }
        fn provides(&self, _m: MetricName) -> bool {
            false
        }
        fn fetch(&self, _m: MetricName) -> EntityValues<OpRef> {
            Default::default()
        }
    }
    impl SpeDriver for MappingDriver {
        fn name(&self) -> &str {
            "m"
        }
        fn kind(&self) -> spe::SpeKind {
            spe::SpeKind::Storm
        }
        fn queries(&self) -> Vec<spe::RunningQuery> {
            Vec::new()
        }
        fn entities(&self) -> Vec<OpRef> {
            (0..3).map(|o| OpRef::new(0, o)).collect()
        }
        fn thread_of(&self, _op: OpRef) -> Option<simos::ThreadId> {
            None
        }
        fn downstream(&self, _op: OpRef) -> Vec<OpRef> {
            vec![]
        }
        fn physical_of(&self, query: usize, logical: LogicalOpId) -> Vec<OpRef> {
            match logical {
                0 => vec![OpRef::new(query, 0), OpRef::new(query, 1)],
                1 | 2 => vec![OpRef::new(query, 2)],
                _ => vec![],
            }
        }
        fn logical_of(&self, op: OpRef) -> Vec<LogicalOpId> {
            match op.op {
                0 | 1 => vec![0],
                2 => vec![1, 2],
                _ => vec![],
            }
        }
        fn is_egress(&self, _op: OpRef) -> bool {
            false
        }
    }

    #[test]
    fn fission_copies_priority_to_replicas() {
        let input: LogicalSchedule = [(0, 7.0)].into_iter().collect();
        let out = transform_logical(&MappingDriver, 0, &input);
        assert_eq!(out.get(OpRef::new(0, 0)), Some(7.0));
        assert_eq!(out.get(OpRef::new(0, 1)), Some(7.0));
    }

    #[test]
    fn fusion_takes_max_priority() {
        let input: LogicalSchedule = [(1, 3.0), (2, 9.0)].into_iter().collect();
        let out = transform_logical(&MappingDriver, 0, &input);
        assert_eq!(out.get(OpRef::new(0, 2)), Some(9.0));
    }

    #[test]
    fn combined_fission_and_fusion() {
        let input: LogicalSchedule = [(0, 1.0), (1, 5.0), (2, 2.0)].into_iter().collect();
        let out = transform_logical(&MappingDriver, 0, &input);
        assert_eq!(out.len(), 3);
        assert_eq!(out.get(OpRef::new(0, 2)), Some(5.0));
    }
}
