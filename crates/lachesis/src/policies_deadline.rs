//! Deadline-aware scheduling: priorities driven by per-query latency
//! targets — one step beyond the paper's queue/rate policies.
//!
//! The policy follows Cameo's insight that deadline *slack* beats queue
//! ranking for latency-SLO workloads, adapted from per-event to
//! per-operator granularity: each operator gets a **static slack budget**
//! from DAG path analysis (how much of the query's end-to-end target is
//! still available at its position) and a **runtime delay estimate** from
//! the DRS waiting-time model (queued work ≈ queue size × per-tuple
//! cost, accumulated along the worst downstream path). The priority is
//! the slack *deficit* — how far the estimated delay overruns the budget
//! — normalized by the target so queries with millisecond and second
//! targets are comparable in one schedule. Deficits flow through the
//! ordinary [`PriorityKind::Linear`] normalization into
//! `NiceTranslator`/`CgroupTranslator` unchanged.
//!
//! [`PriorityKind::Linear`]: crate::PriorityKind::Linear

use std::collections::HashMap;

use lachesis_metrics::{names, MetricName};
use simos::SimDuration;

use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::policy::{Policy, PolicyView};
use crate::schedule::SinglePrioritySchedule;

/// Cycle guard for downstream DFS walks (mirrors `best_output_path`).
const MAX_PATH_DEPTH: usize = 64;

/// Fallback per-tuple cost (seconds) when the COST metric is not yet
/// observable — the same default the HR policy uses.
const DEFAULT_COST_S: f64 = 1e-6;

/// Residual depth of `op`: the number of operators on the longest path
/// from `op` (inclusive) to a sink of its query. Sinks have depth 1.
/// This is the static ingredient of the slack budget: it depends only on
/// the deployed topology, never on runtime metrics.
pub fn residual_depth(driver: &dyn SpeDriver, op: OpRef) -> usize {
    fn dfs(driver: &dyn SpeDriver, op: OpRef, depth: usize) -> usize {
        if depth > MAX_PATH_DEPTH {
            return 1;
        }
        1 + driver
            .downstream(op)
            .into_iter()
            .map(|d| dfs(driver, d, depth + 1))
            .max()
            .unwrap_or(0)
    }
    dfs(driver, op, 0)
}

/// DRS-style estimate of the delay a tuple entering `op`'s queue now
/// would accumulate before leaving the query: along the *worst* (highest
/// estimated delay) downstream path, each operator contributes its queued
/// work plus one service time, `(queue_size + 1) × cost`. Queue sizes and
/// costs come from the metric provider; missing values degrade to an
/// empty queue with the default cost, so the estimate is usable from the
/// first scheduling round.
pub fn estimated_path_delay(view: &PolicyView<'_>, op: OpRef) -> f64 {
    fn dfs(view: &PolicyView<'_>, op: OpRef, depth: usize) -> f64 {
        let queue = view
            .metric_of(names::QUEUE_SIZE, op)
            .unwrap_or(0.0)
            .max(0.0);
        let cost = view
            .metric_of(names::COST, op)
            .unwrap_or(DEFAULT_COST_S)
            .max(0.0);
        let own = (queue + 1.0) * cost;
        if depth > MAX_PATH_DEPTH {
            return own;
        }
        own + view
            .driver
            .downstream(op)
            .into_iter()
            .map(|d| dfs(view, d, depth + 1))
            .fold(0.0, f64::max)
    }
    dfs(view, op, 0)
}

/// **DEADLINE**: deadline-aware policy ranking operators by normalized
/// slack deficit against per-query end-to-end latency targets.
///
/// Per operator `i` of a query with target `T`:
///
/// * static budget `B_i = T · depth_i / max_depth` — the share of the
///   deadline still available at `i`'s position in the DAG (sources keep
///   the full target, sinks only their own slice);
/// * runtime delay `D_i` — the DRS waiting-time estimate along the worst
///   downstream path ([`estimated_path_delay`]);
/// * priority `(D_i − B_i) / T` — positive when the deadline is at risk.
///
/// Under overload the deficit legitimately explodes (queues grow without
/// bound); the normalization layer clamps before casting, so priorities
/// stay valid nice/shares values.
#[derive(Debug, Clone)]
pub struct DeadlinePolicy {
    period: SimDuration,
    default_target_s: f64,
    /// Per-query targets, looked up by query index (within the driver).
    targets: Vec<(usize, f64)>,
    /// Static budgets, recomputed only when the scope changes.
    budgets: HashMap<OpRef, f64>,
    cached_scope: Vec<OpRef>,
}

impl DeadlinePolicy {
    /// Creates the policy with a scheduling period and the target applied
    /// to queries without an explicit [`with_target`] entry.
    ///
    /// [`with_target`]: DeadlinePolicy::with_target
    pub fn new(period: SimDuration, default_target_s: f64) -> Self {
        DeadlinePolicy {
            period,
            default_target_s: default_target_s.max(1e-9),
            targets: Vec::new(),
            budgets: HashMap::new(),
            cached_scope: Vec::new(),
        }
    }

    /// Sets the end-to-end latency target for one query (seconds).
    /// Non-positive targets are clamped to a nanosecond.
    pub fn with_target(mut self, query: usize, target_s: f64) -> Self {
        let target_s = target_s.max(1e-9);
        match self.targets.iter_mut().find(|(q, _)| *q == query) {
            Some(entry) => entry.1 = target_s,
            None => self.targets.push((query, target_s)),
        }
        // Targets shape the static budgets: force a recompute.
        self.cached_scope.clear();
        self.budgets.clear();
        self
    }

    /// The latency target applied to `query`.
    pub fn target_of(&self, query: usize) -> f64 {
        self.targets
            .iter()
            .find(|(q, _)| *q == query)
            .map(|&(_, t)| t)
            .unwrap_or(self.default_target_s)
    }

    /// The static slack budget of `op` (seconds), as of the last schedule
    /// round (exposed for tests and reporting).
    pub fn slack_budget(&self, op: OpRef) -> Option<f64> {
        self.budgets.get(&op).copied()
    }

    /// Recomputes the static per-operator budgets when the deployed scope
    /// changed (queries added/removed, operators migrated).
    fn refresh_budgets(&mut self, view: &PolicyView<'_>) {
        if self.cached_scope.as_slice() == view.scope {
            return;
        }
        let mut depths: HashMap<OpRef, usize> = HashMap::new();
        let mut max_depth: HashMap<usize, usize> = HashMap::new();
        for &op in view.scope {
            let d = residual_depth(view.driver, op);
            depths.insert(op, d);
            let e = max_depth.entry(op.query).or_insert(0);
            *e = (*e).max(d);
        }
        self.budgets = view
            .scope
            .iter()
            .map(|&op| {
                let target = self.target_of(op.query);
                let frac = depths[&op] as f64 / max_depth[&op.query].max(1) as f64;
                (op, target * frac)
            })
            .collect();
        self.cached_scope = view.scope.to_vec();
    }
}

impl Policy for DeadlinePolicy {
    fn name(&self) -> &str {
        "deadline"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        // COST is derived by the provider (cpu-time / tuples) on SPEs
        // that don't expose it directly, exactly as for HR.
        vec![names::QUEUE_SIZE, names::COST]
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        self.refresh_budgets(view);
        view.scope
            .iter()
            .map(|&op| {
                let target = self.target_of(op.query);
                let budget = self.budgets.get(&op).copied().unwrap_or(target);
                let deficit = (estimated_path_delay(view, op) - budget) / target;
                (op, deficit)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::to_nice;
    use lachesis_metrics::MetricProvider;
    use simos::SimTime;

    /// Two identical three-stage pipelines: q0: 0→1→2, q1: 0→1→2.
    struct TwoPipes;
    impl lachesis_metrics::MetricSource<OpRef> for TwoPipes {
        fn source_name(&self) -> &str {
            "pipes"
        }
        fn provides(&self, _m: MetricName) -> bool {
            false
        }
        fn fetch(&self, _m: MetricName) -> lachesis_metrics::EntityValues<OpRef> {
            Default::default()
        }
    }
    impl SpeDriver for TwoPipes {
        fn name(&self) -> &str {
            "pipes"
        }
        fn kind(&self) -> spe::SpeKind {
            spe::SpeKind::Liebre
        }
        fn queries(&self) -> Vec<spe::RunningQuery> {
            Vec::new()
        }
        fn entities(&self) -> Vec<OpRef> {
            (0..2)
                .flat_map(|q| (0..3).map(move |o| OpRef::new(q, o)))
                .collect()
        }
        fn thread_of(&self, _op: OpRef) -> Option<simos::ThreadId> {
            None
        }
        fn downstream(&self, op: OpRef) -> Vec<OpRef> {
            if op.op < 2 {
                vec![OpRef::new(op.query, op.op + 1)]
            } else {
                vec![]
            }
        }
        fn physical_of(&self, query: usize, logical: usize) -> Vec<OpRef> {
            vec![OpRef::new(query, logical)]
        }
        fn logical_of(&self, op: OpRef) -> Vec<usize> {
            vec![op.op]
        }
        fn is_egress(&self, op: OpRef) -> bool {
            op.op == 2
        }
    }

    /// Provider exposing QUEUE_SIZE and COST with explicit per-op values.
    fn provider_with(queues: &[(OpRef, f64)], costs: &[(OpRef, f64)]) -> MetricProvider<OpRef> {
        struct Src {
            queues: Vec<(OpRef, f64)>,
            costs: Vec<(OpRef, f64)>,
        }
        impl lachesis_metrics::MetricSource<OpRef> for Src {
            fn source_name(&self) -> &str {
                "src"
            }
            fn provides(&self, m: MetricName) -> bool {
                m == names::QUEUE_SIZE || m == names::COST
            }
            fn fetch(&self, m: MetricName) -> lachesis_metrics::EntityValues<OpRef> {
                let vals = if m == names::QUEUE_SIZE {
                    &self.queues
                } else {
                    &self.costs
                };
                vals.iter().copied().collect()
            }
        }
        let mut p = MetricProvider::new();
        p.register(names::QUEUE_SIZE);
        p.register(names::COST);
        p.update(
            SimTime::ZERO,
            &[&Src {
                queues: queues.to_vec(),
                costs: costs.to_vec(),
            }],
        )
        .unwrap();
        p
    }

    fn scope() -> Vec<OpRef> {
        TwoPipes.entities()
    }

    #[test]
    fn policy_metadata() {
        let p = DeadlinePolicy::new(SimDuration::from_millis(100), 1.0);
        assert_eq!(p.name(), "deadline");
        assert_eq!(p.period(), SimDuration::from_millis(100));
        assert_eq!(p.required_metrics(), vec![names::QUEUE_SIZE, names::COST]);
        assert_eq!(p.priority_kind(), crate::PriorityKind::Linear);
        assert_eq!(p.target_of(7), 1.0, "default target applies");
        let p = p.with_target(1, 0.25).with_target(1, 0.5);
        assert_eq!(p.target_of(1), 0.5, "later with_target wins");
    }

    #[test]
    fn static_budgets_follow_residual_depth() {
        let driver = TwoPipes;
        assert_eq!(residual_depth(&driver, OpRef::new(0, 0)), 3);
        assert_eq!(residual_depth(&driver, OpRef::new(0, 1)), 2);
        assert_eq!(residual_depth(&driver, OpRef::new(0, 2)), 1);
        let provider = provider_with(&[], &[]);
        let scope = scope();
        let mut p = DeadlinePolicy::new(SimDuration::from_secs(1), 0.9);
        let view = PolicyView::new(SimTime::ZERO, &driver, &scope, &provider, 0);
        let _ = p.schedule(&view);
        // Source keeps the full target; the budget shrinks towards the
        // sink in proportion to remaining path depth.
        assert!((p.slack_budget(OpRef::new(0, 0)).unwrap() - 0.9).abs() < 1e-12);
        assert!((p.slack_budget(OpRef::new(0, 1)).unwrap() - 0.6).abs() < 1e-12);
        assert!((p.slack_budget(OpRef::new(0, 2)).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tighter_target_means_higher_priority_at_equal_backlog() {
        let driver = TwoPipes;
        // Same backlog and cost everywhere on both queries.
        let all: Vec<(OpRef, f64)> = driver.entities().iter().map(|&o| (o, 50.0)).collect();
        let costs: Vec<(OpRef, f64)> = driver.entities().iter().map(|&o| (o, 1e-3)).collect();
        let provider = provider_with(&all, &costs);
        let scope = scope();
        let mut p = DeadlinePolicy::new(SimDuration::from_secs(1), 5.0).with_target(0, 0.1);
        let view = PolicyView::new(SimTime::ZERO, &driver, &scope, &provider, 0);
        let s = p.schedule(&view);
        for op in 0..3 {
            assert!(
                s.get(OpRef::new(0, op)).unwrap() > s.get(OpRef::new(1, op)).unwrap(),
                "tight-target query outranks loose at op {op}: {s:?}"
            );
        }
    }

    #[test]
    fn backlog_raises_priority_monotonically() {
        let driver = TwoPipes;
        let costs: Vec<(OpRef, f64)> = driver.entities().iter().map(|&o| (o, 1e-3)).collect();
        let scope = scope();
        let mut prev = f64::NEG_INFINITY;
        for backlog in [0.0, 10.0, 100.0, 1000.0] {
            let queues = vec![(OpRef::new(0, 1), backlog)];
            let provider = provider_with(&queues, &costs);
            let mut p = DeadlinePolicy::new(SimDuration::from_secs(1), 1.0);
            let view = PolicyView::new(SimTime::ZERO, &driver, &scope, &provider, 0);
            let s = p.schedule(&view);
            let pr = s.get(OpRef::new(0, 1)).unwrap();
            assert!(pr > prev, "priority grows with backlog: {pr} vs {prev}");
            prev = pr;
        }
    }

    #[test]
    fn overload_deficits_translate_to_valid_nice_values() {
        // Queues exploding under overload produce enormous deficits; the
        // whole pipeline down to nice values must stay in range (this is
        // the path that exercises the clamped normalization).
        let driver = TwoPipes;
        let queues: Vec<(OpRef, f64)> = driver.entities().iter().map(|&o| (o, 1e12)).collect();
        let costs: Vec<(OpRef, f64)> = driver.entities().iter().map(|&o| (o, 10.0)).collect();
        let provider = provider_with(&queues, &costs);
        let scope = scope();
        let mut p = DeadlinePolicy::new(SimDuration::from_secs(1), 1e-6).with_target(0, 1e-9);
        let view = PolicyView::new(SimTime::ZERO, &driver, &scope, &provider, 0);
        let s = p.schedule(&view);
        let priorities: Vec<f64> = scope.iter().map(|&o| s.get(o).unwrap()).collect();
        assert!(priorities.iter().all(|v| v.is_finite()));
        assert!(priorities.iter().any(|v| *v > 1e9), "deficit explodes");
        let nices = to_nice(&priorities, p.priority_kind());
        assert_eq!(nices.len(), priorities.len());
        for n in nices {
            assert!((-20..=19).contains(&n.value()));
        }
    }

    #[test]
    fn budgets_recompute_when_scope_changes() {
        let driver = TwoPipes;
        let provider = provider_with(&[], &[]);
        let full = scope();
        let mut p = DeadlinePolicy::new(SimDuration::from_secs(1), 1.0);
        let view = PolicyView::new(SimTime::ZERO, &driver, &full, &provider, 0);
        let _ = p.schedule(&view);
        assert!(p.slack_budget(OpRef::new(1, 0)).is_some());
        // Shrink the scope to query 0 only: query 1 budgets disappear.
        let narrow: Vec<OpRef> = full.iter().copied().filter(|o| o.query == 0).collect();
        let view = PolicyView::new(SimTime::ZERO, &driver, &narrow, &provider, 0);
        let _ = p.schedule(&view);
        assert!(p.slack_budget(OpRef::new(1, 0)).is_none());
        assert!(p.slack_budget(OpRef::new(0, 0)).is_some());
    }
}
