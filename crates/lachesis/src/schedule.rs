//! Schedule formats (paper §5.3).
//!
//! Policies output real-valued priorities — **higher is better** (more
//! CPU). Translators convert them into OS units. Two complementary formats
//! exist: per-operator priorities for `nice`, and grouped priorities for
//! cgroup `cpu.shares`.

use std::collections::BTreeMap;

use crate::entity::OpRef;

/// A single-priority schedule: every operator gets one real priority.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SinglePrioritySchedule {
    priorities: BTreeMap<OpRef, f64>,
}

impl SinglePrioritySchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an operator's priority (higher = more CPU).
    pub fn set(&mut self, op: OpRef, priority: f64) {
        self.priorities.insert(op, priority);
    }

    /// An operator's priority, if scheduled.
    pub fn get(&self, op: OpRef) -> Option<f64> {
        self.priorities.get(&op).copied()
    }

    /// Iterates `(op, priority)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (OpRef, f64)> + '_ {
        self.priorities.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of scheduled operators.
    pub fn len(&self) -> usize {
        self.priorities.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.priorities.is_empty()
    }

    /// All priority values, in entity order.
    pub fn values(&self) -> Vec<f64> {
        self.priorities.values().copied().collect()
    }
}

impl FromIterator<(OpRef, f64)> for SinglePrioritySchedule {
    fn from_iter<T: IntoIterator<Item = (OpRef, f64)>>(iter: T) -> Self {
        SinglePrioritySchedule {
            priorities: iter.into_iter().collect(),
        }
    }
}

/// A grouping schedule: operators are partitioned into groups, each with a
/// priority (`{gid} → (ℝ, {ops})` in the paper's notation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupingSchedule {
    groups: BTreeMap<String, (f64, Vec<OpRef>)>,
}

impl GroupingSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a group.
    pub fn set_group(&mut self, gid: &str, priority: f64, ops: Vec<OpRef>) {
        self.groups.insert(gid.to_owned(), (priority, ops));
    }

    /// Iterates `(gid, priority, ops)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64, &[OpRef])> + '_ {
        self.groups
            .iter()
            .map(|(k, (p, ops))| (k.as_str(), *p, ops.as_slice()))
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Builds the degenerate grouping with one group per operator — how a
    /// single-priority schedule is fed to the cpu.shares translator when
    /// `nice` runs out of distinct values (paper §6.4).
    pub fn per_operator(schedule: &SinglePrioritySchedule) -> GroupingSchedule {
        let mut g = GroupingSchedule::new();
        for (op, p) in schedule.iter() {
            g.set_group(&op.to_string(), p, vec![op]);
        }
        g
    }
}

/// Either schedule format, as produced by a policy + grouping strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Per-operator priorities.
    Single(SinglePrioritySchedule),
    /// Grouped priorities.
    Grouped(GroupingSchedule),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(q: usize, o: usize) -> OpRef {
        OpRef::new(q, o)
    }

    #[test]
    fn single_priority_roundtrip() {
        let mut s = SinglePrioritySchedule::new();
        s.set(op(0, 1), 5.0);
        s.set(op(0, 0), 2.0);
        assert_eq!(s.get(op(0, 1)), Some(5.0));
        assert_eq!(s.get(op(1, 0)), None);
        let order: Vec<OpRef> = s.iter().map(|(o, _)| o).collect();
        assert_eq!(order, vec![op(0, 0), op(0, 1)], "deterministic order");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn per_operator_grouping() {
        let s: SinglePrioritySchedule =
            [(op(0, 0), 1.0), (op(0, 1), 9.0)].into_iter().collect();
        let g = GroupingSchedule::per_operator(&s);
        assert_eq!(g.len(), 2);
        let (gid, p, ops) = g.iter().next().unwrap();
        assert_eq!(gid, "q0/op0");
        assert_eq!(p, 1.0);
        assert_eq!(ops, &[op(0, 0)]);
    }

    #[test]
    fn grouping_replaces_on_same_gid() {
        let mut g = GroupingSchedule::new();
        g.set_group("a", 1.0, vec![op(0, 0)]);
        g.set_group("a", 2.0, vec![op(0, 1)]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.iter().next().unwrap().1, 2.0);
    }
}
