//! Multi-node entity addressing over the modeled network (rack-scale
//! deployments).
//!
//! The paper runs one Lachesis instance per server; the rack experiment
//! (figd1) goes further: a single controller instance on rack node 0
//! schedules operators on *every* node. Three pieces make that work, all of
//! them built strictly on SPE-public information (G2):
//!
//! * [`MirrorDriver`] — the controller-side driver for one remote node. It
//!   derives the topology from the same deterministic [`LogicalGraph`]s the
//!   remote node deployed (deployment is config-driven, so the controller
//!   can rebuild the physical plan bit-for-bit without talking to the
//!   node), and reads metrics from the controller's store, which a metric
//!   relay fills with the remote node's samples after the modeled network
//!   latency — the exact staleness a Graphite-backed deployment sees.
//! * [`RemoteNiceTranslator`] — translates schedules with the same
//!   normalization as the local nice translator, but emits [`RemoteCmd`]
//!   messages into an outbox instead of touching a kernel: the commands
//!   cross the modeled network and take effect one link latency later.
//! * [`CmdApplier`] — the remote node's side: maps an arriving command's
//!   `(query, op)` address back to the locally bound kernel thread and
//!   applies the nice value.
//!
//! Query indices are the address space: the controller's `MirrorDriver` and
//! the remote node's `CmdApplier` must list the same queries in the same
//! order (both are built from the same deployment config, so this is a
//! deterministic contract, asserted by name at applier construction).
//!
//! [`LogicalGraph`]: spe::LogicalGraph

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use lachesis_metrics::{
    EntityValues, FaultPlan, FetchError, MetricName, MetricSource, TimeSeriesStore,
};
use simos::{
    CallbackId, Kernel, Nice, SimDuration, SimTime, ThreadId, TraceEvent, TraceTrack,
};
use spe::{metric_path, LogicalGraph, LogicalOpId, PhysOpId, PhysicalGraph, RunningQuery, SpeKind};

use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::normalize::{to_nice_in_range, PriorityKind};
use crate::schedule::Schedule;
use crate::translate::{TranslateError, Translator};

/// A scheduling command addressed to an operator on a remote rack node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteCmd {
    /// Query index in the destination node's deployment order.
    pub query: usize,
    /// Physical operator within the query.
    pub op: PhysOpId,
    /// The nice value to apply to the operator's thread.
    pub nice: Nice,
}

/// One outgoing command: destination rack node, send time, payload.
#[derive(Debug, Clone, Copy)]
pub struct RemoteSend {
    /// Destination rack node index.
    pub dst: usize,
    /// Simulated time the controller issued the command.
    pub at: SimTime,
    /// The command itself.
    pub cmd: RemoteCmd,
}

/// Shared outbox the cluster fabric drains at each epoch barrier.
pub type CmdOutbox = Rc<RefCell<Vec<RemoteSend>>>;

/// The controller-side mirror of one remote node's deployment: query names
/// plus physical plans rebuilt from the deployment config.
#[derive(Debug)]
pub struct MirrorQuery {
    name: String,
    phys: PhysicalGraph,
}

impl MirrorQuery {
    /// Mirrors a query from its logical graph, applying the same chaining
    /// flag the remote deployment used (the physical plan is a pure
    /// function of both).
    pub fn new(graph: &LogicalGraph, chaining: bool) -> MirrorQuery {
        MirrorQuery {
            name: graph.name.clone(),
            phys: PhysicalGraph::build(graph, chaining),
        }
    }

    /// The query's name (metric-path namespace).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical operator count.
    pub fn op_count(&self) -> usize {
        self.phys.ops.len()
    }
}

/// A driver for queries running on a **remote** rack node.
///
/// Topology answers come from the mirrored physical plans; metric answers
/// come from the controller-local store (filled by the metric relay).
/// [`SpeDriver::thread_of`] is always `None` — the threads live in another
/// kernel — so this driver must be paired with a translator that addresses
/// operators by `(query, op)` instead, i.e. [`RemoteNiceTranslator`].
/// [`SpeDriver::queries`] is empty for the same reason; bind policies with
/// [`Scope::AllQueries`](crate::Scope::AllQueries) or
/// [`Scope::Query`](crate::Scope::Query), not `Scope::Node`.
pub struct MirrorDriver {
    label: String,
    kind: SpeKind,
    queries: Vec<MirrorQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
    faults: Option<Rc<RefCell<FaultPlan>>>,
    fence: Option<RefCell<FenceState>>,
}

/// Controller-side lease over one remote worker: fenced when the worker's
/// freshest relayed sample is older than the lease.
#[derive(Debug)]
struct FenceState {
    lease: SimDuration,
    fenced: bool,
    fences: u64,
    unfences: u64,
}

impl std::fmt::Debug for MirrorDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MirrorDriver")
            .field("label", &self.label)
            .field("kind", &self.kind)
            .field("queries", &self.queries.len())
            .finish_non_exhaustive()
    }
}

impl MirrorDriver {
    /// Creates the driver. `label` names the remote node in logs and
    /// supervisor messages (e.g. `"liebre@node3"`); `queries` must list the
    /// remote node's queries in deployment order.
    pub fn new(
        label: &str,
        kind: SpeKind,
        queries: Vec<MirrorQuery>,
        store: Rc<RefCell<TimeSeriesStore>>,
    ) -> MirrorDriver {
        MirrorDriver {
            label: label.to_owned(),
            kind,
            queries,
            store,
            faults: None,
            fence: None,
        }
    }

    /// Attaches a [`FaultPlan`] consulted on every metric fetch, exactly
    /// like [`StoreDriver::with_faults`](crate::StoreDriver::with_faults):
    /// `FetchFailure` rules error the fetch, cutoff rules shift the read
    /// cursor back in time, and point rules drop or NaN individual values.
    /// Rules match this driver's [`source_name`](MetricSource::source_name)
    /// (the `label`).
    pub fn with_faults(mut self, faults: Rc<RefCell<FaultPlan>>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Arms the staleness fence: once the freshest sample relayed from the
    /// worker is older than `lease`, the driver reports **no entities** —
    /// the partitioned worker leaves normalization scope, so its stale
    /// metrics cannot skew cluster-wide priorities. The fence lifts on the
    /// first fresh sample after heal; the middleware then re-applies the
    /// last schedule through the snapshot reapply path.
    pub fn with_fence(mut self, lease: SimDuration) -> Self {
        assert!(!lease.is_zero(), "a zero lease would fence immediately");
        self.fence = Some(RefCell::new(FenceState {
            lease,
            fenced: false,
            fences: 0,
            unfences: 0,
        }));
        self
    }

    /// Whether the fence is currently engaged (always `false` without
    /// [`with_fence`](MirrorDriver::with_fence)).
    pub fn fenced(&self) -> bool {
        self.fence.as_ref().is_some_and(|f| f.borrow().fenced)
    }

    /// `(fence, unfence)` transition counts.
    pub fn fence_transitions(&self) -> (u64, u64) {
        self.fence
            .as_ref()
            .map(|f| {
                let st = f.borrow();
                (st.fences, st.unfences)
            })
            .unwrap_or((0, 0))
    }

    /// The newest sample timestamp over every mirrored metric path, i.e.
    /// the last time the worker was provably alive from this side.
    fn freshest_sample(&self) -> Option<SimTime> {
        let store = self.store.borrow();
        let mut freshest = None;
        for metric in self.kind.exposed_metrics() {
            for q in &self.queries {
                for op in 0..q.op_count() {
                    let path = metric_path(self.kind, q.name(), op, *metric);
                    if let Some((t, _)) = store.latest(&path) {
                        freshest = Some(freshest.map_or(t, |f: SimTime| f.max(t)));
                    }
                }
            }
        }
        freshest
    }

    /// The mirrored queries, in address order.
    pub fn mirrored(&self) -> &[MirrorQuery] {
        &self.queries
    }
}

impl MetricSource<OpRef> for MirrorDriver {
    fn source_name(&self) -> &str {
        &self.label
    }

    fn provides(&self, metric: MetricName) -> bool {
        self.kind.exposed_metrics().contains(&metric)
    }

    fn fetch(&self, metric: MetricName) -> EntityValues<OpRef> {
        let store = self.store.borrow();
        let mut out = EntityValues::new();
        for (qi, q) in self.queries.iter().enumerate() {
            for op in 0..q.op_count() {
                let path = metric_path(self.kind, q.name(), op, metric);
                if let Some((t, v)) = store.latest(&path) {
                    out.insert_at(OpRef::new(qi, op), v, t);
                }
            }
        }
        out
    }

    fn try_fetch(
        &self,
        metric: MetricName,
        now: SimTime,
    ) -> Result<EntityValues<OpRef>, FetchError> {
        let Some(faults) = &self.faults else {
            return Ok(self.fetch(metric));
        };
        let mut plan = faults.borrow_mut();
        let name = &self.label;
        if plan.fetch_fails(name, now) {
            return Err(FetchError::new(format!(
                "injected fetch failure for {name} at {now:?}"
            )));
        }
        let cutoff = plan.fetch_cutoff(name, now);
        let store = self.store.borrow();
        let mut out = EntityValues::new();
        for (qi, q) in self.queries.iter().enumerate() {
            for op in 0..q.op_count() {
                let path = metric_path(self.kind, q.name(), op, metric);
                let point = match cutoff {
                    Some(t) => store.latest_at(&path, t),
                    None => store.latest(&path),
                };
                let Some((t, v)) = point else { continue };
                let fault = plan.point_fault(name, now);
                if fault.drop {
                    continue;
                }
                let v = if fault.nan { f64::NAN } else { v };
                out.insert_at(OpRef::new(qi, op), v, t);
            }
        }
        Ok(out)
    }
}

impl SpeDriver for MirrorDriver {
    fn name(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> SpeKind {
        self.kind
    }

    fn queries(&self) -> Vec<RunningQuery> {
        // No local handles exist for remote queries; `Scope::Node` (the
        // only caller) is not meaningful across the network.
        Vec::new()
    }

    fn entities(&self) -> Vec<OpRef> {
        // A fenced worker has no schedulable entities: its operators drop
        // out of every binding's scope (and out of normalization) until
        // fresh metrics prove it is reachable again.
        if self.fenced() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (qi, q) in self.queries.iter().enumerate() {
            for op in 0..q.op_count() {
                out.push(OpRef::new(qi, op));
            }
        }
        out
    }

    fn thread_of(&self, _op: OpRef) -> Option<ThreadId> {
        None
    }

    fn refresh_fence(&self, now: SimTime) -> Option<bool> {
        let cell = self.fence.as_ref()?;
        let mut st = cell.borrow_mut();
        // No sample yet counts as "fresh at time zero": a worker gets one
        // lease of grace at startup before it can be fenced.
        let freshest = self.freshest_sample().unwrap_or(SimTime::ZERO);
        let stale = now > freshest + st.lease;
        if stale == st.fenced {
            return None;
        }
        st.fenced = stale;
        if stale {
            st.fences += 1;
        } else {
            st.unfences += 1;
        }
        Some(stale)
    }

    fn downstream(&self, op: OpRef) -> Vec<OpRef> {
        let Some(q) = self.queries.get(op.query) else {
            return Vec::new();
        };
        let mut out: Vec<OpRef> = q.phys.ops[op.op]
            .out_edges
            .iter()
            .flat_map(|e| e.targets.iter().map(|&t| OpRef::new(op.query, t)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn physical_of(&self, query: usize, logical: LogicalOpId) -> Vec<OpRef> {
        let Some(q) = self.queries.get(query) else {
            return Vec::new();
        };
        q.phys
            .physical_of(logical)
            .iter()
            .map(|&p| OpRef::new(query, p))
            .collect()
    }

    fn logical_of(&self, op: OpRef) -> Vec<LogicalOpId> {
        self.queries
            .get(op.query)
            .map(|q| q.phys.ops[op.op].chain.clone())
            .unwrap_or_default()
    }

    fn is_egress(&self, op: OpRef) -> bool {
        self.queries
            .get(op.query)
            .is_some_and(|q| q.phys.ops[op.op].egress.is_some())
    }
}

/// Applies single-priority schedules to a remote node by emitting nice
/// commands onto the modeled network.
///
/// Normalization is identical to the local
/// [`NiceTranslator`](crate::NiceTranslator) (same default `[-5, 5]`
/// range), so a rack node managed remotely converges to the same nice
/// assignment it would get from a node-local Lachesis instance — just one
/// link latency later.
#[derive(Debug)]
pub struct RemoteNiceTranslator {
    dst: usize,
    lo: i32,
    hi: i32,
    outbox: CmdOutbox,
}

impl RemoteNiceTranslator {
    /// Creates a translator addressing rack node `dst`, emitting into the
    /// cluster's shared `outbox`.
    pub fn new(dst: usize, outbox: CmdOutbox) -> RemoteNiceTranslator {
        RemoteNiceTranslator {
            dst,
            lo: -5,
            hi: 5,
            outbox,
        }
    }

    /// Overrides the target nice range.
    ///
    /// # Panics
    ///
    /// Panics unless `-20 <= lo < hi <= 19`.
    pub fn with_range(mut self, lo: i32, hi: i32) -> Self {
        assert!((-20..=19).contains(&lo) && (-20..=19).contains(&hi) && lo < hi);
        self.lo = lo;
        self.hi = hi;
        self
    }
}

impl Translator for RemoteNiceTranslator {
    fn name(&self) -> &str {
        "remote-nice"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        _driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        let Schedule::Single(s) = schedule else {
            return Err(TranslateError::WrongFormat {
                translator: "remote-nice",
                expected: "single-priority",
            });
        };
        if s.is_empty() {
            return Ok(());
        }
        let values = s.values();
        let nices = to_nice_in_range(&values, kind, self.lo, self.hi);
        let now = kernel.now();
        let mut outbox = self.outbox.borrow_mut();
        for ((op, _), nice) in s.iter().zip(nices) {
            outbox.push(RemoteSend {
                dst: self.dst,
                at: now,
                cmd: RemoteCmd {
                    query: op.query,
                    op: op.op,
                    nice,
                },
            });
        }
        Ok(())
    }
}

/// Emits a supervisor-track instant for a lease transition, so every
/// engage/expire is reconstructible from the trace alone.
fn emit_lease(kernel: &mut Kernel, name: &'static str, node: usize) {
    if let Some(t) = kernel.trace_sink() {
        let now = kernel.now();
        t.borrow_mut().push(
            now,
            TraceEvent::Instant {
                track: TraceTrack::Supervisor,
                name,
                args: vec![("node", node as f64)],
            },
        );
    }
}

/// Worker-side view of the controller lease: every arriving command is a
/// heartbeat; silence longer than the interval means the controller (or
/// the network to it) is gone and the worker must stop trusting its last
/// schedule.
#[derive(Debug)]
struct LeaseState {
    rack_id: usize,
    interval: SimDuration,
    last_heard: SimTime,
    engaged: bool,
    expirations: u64,
    engagements: u64,
}

/// The receiving side: resolves arriving [`RemoteCmd`]s against the node's
/// locally deployed queries and applies them to the bound kernel threads.
#[derive(Debug)]
pub struct CmdApplier {
    queries: Vec<RunningQuery>,
    applied: u64,
    skipped: u64,
    lease: Option<LeaseState>,
}

impl CmdApplier {
    /// Creates an applier over the node's queries **in deployment order** —
    /// the same order the controller's [`MirrorDriver`] lists them.
    pub fn new(queries: Vec<RunningQuery>) -> CmdApplier {
        CmdApplier {
            queries,
            applied: 0,
            skipped: 0,
            lease: None,
        }
    }

    /// Arms the controller lease for this worker (`rack_id` labels trace
    /// instants). Every arriving command renews the lease; when
    /// [`check_lease`](CmdApplier::check_lease) finds it expired — no
    /// command for longer than `interval` — the worker reverts all of its
    /// query threads to CFS defaults (`nice` 0, `cpu.shares` 1024): a
    /// partitioned worker runs the schedule the SPE would have without
    /// Lachesis rather than a frozen, increasingly wrong one. The lease
    /// starts **disengaged** (the worker is born at CFS defaults) and
    /// engages on the first command.
    pub fn with_lease(mut self, rack_id: usize, interval: SimDuration) -> Self {
        self.arm_lease(rack_id, interval);
        self
    }

    /// In-place form of [`with_lease`](CmdApplier::with_lease), for
    /// appliers already shared behind an `Rc<RefCell<..>>` (cluster
    /// harnesses arm the lease after the node's queries deploy).
    pub fn arm_lease(&mut self, rack_id: usize, interval: SimDuration) {
        assert!(!interval.is_zero(), "a zero lease would expire immediately");
        self.lease = Some(LeaseState {
            rack_id,
            interval,
            last_heard: SimTime::ZERO,
            engaged: false,
            expirations: 0,
            engagements: 0,
        });
    }

    /// The lease interval, if a lease is armed.
    pub fn lease_interval(&self) -> Option<SimDuration> {
        self.lease.as_ref().map(|l| l.interval)
    }

    /// Whether the lease is currently engaged (commands are flowing).
    pub fn lease_engaged(&self) -> bool {
        self.lease.as_ref().is_some_and(|l| l.engaged)
    }

    /// `(engagements, expirations)` of the lease so far.
    pub fn lease_transitions(&self) -> (u64, u64) {
        self.lease
            .as_ref()
            .map(|l| (l.engagements, l.expirations))
            .unwrap_or((0, 0))
    }

    /// Checks the lease against the kernel clock and, on expiry, reverts
    /// every query thread to CFS defaults. Called periodically by
    /// [`install_lease_guard`]; a no-op without an armed lease or while
    /// commands keep arriving.
    pub fn check_lease(&mut self, kernel: &mut Kernel) {
        let now = kernel.now();
        let expired = self
            .lease
            .as_ref()
            .is_some_and(|l| l.engaged && now > l.last_heard + l.interval);
        if !expired {
            return;
        }
        let rack_id = {
            let l = self.lease.as_mut().expect("expired lease exists");
            l.engaged = false;
            l.expirations += 1;
            l.rack_id
        };
        emit_lease(kernel, "lease_expire", rack_id);
        self.revert_to_cfs(kernel);
    }

    /// Resets every query thread to `nice` 0 and every non-root cgroup the
    /// threads run in to the default 1024 `cpu.shares` — the schedule the
    /// SPE would have without Lachesis. Best-effort, like the controller's
    /// own CFS fallback.
    pub fn revert_to_cfs(&mut self, kernel: &mut Kernel) {
        let nice0 = Nice::new(0).expect("nice 0 is always valid");
        let mut reset_groups: HashSet<simos::CgroupId> = HashSet::new();
        for q in &self.queries {
            for c in q.cells() {
                let Some(tid) = c.thread() else { continue };
                let _ = kernel.set_nice(tid, nice0);
                let Ok(info) = kernel.thread_info(tid) else { continue };
                let node_root = kernel.node_root(info.node).ok();
                if Some(info.cgroup) != node_root && reset_groups.insert(info.cgroup) {
                    let _ = kernel.set_cpu_shares(info.cgroup, simos::DEFAULT_CPU_SHARES);
                }
            }
        }
    }

    /// Asserts the address space matches a mirror's (names, positions and
    /// operator counts) — catches deployment-order drift at startup rather
    /// than as silently misdirected commands.
    pub fn check_against(&self, mirrored: &[MirrorQuery]) {
        assert_eq!(self.queries.len(), mirrored.len(), "query count mismatch");
        for (local, mirror) in self.queries.iter().zip(mirrored) {
            assert_eq!(local.name(), mirror.name(), "query order mismatch");
            assert_eq!(
                local.op_count(),
                mirror.op_count(),
                "physical plan mismatch for {}",
                local.name()
            );
        }
    }

    /// Applies one arriving command. Commands for unknown addresses or
    /// unbound threads (an operator mid-restart after a crash) are counted
    /// in [`skipped`](CmdApplier::skipped) and dropped — the controller
    /// resends a fresh schedule every period anyway.
    pub fn apply(&mut self, kernel: &mut Kernel, cmd: RemoteCmd) {
        // Any command — even one for a dead address — is a heartbeat from
        // the controller: renew the lease, and re-engage if it had expired
        // (the controller resends its full schedule every period, so the
        // commands arriving now rebuild the schedule the partition wiped).
        let engage = if let Some(l) = &mut self.lease {
            l.last_heard = kernel.now();
            let engage = !l.engaged;
            if engage {
                l.engaged = true;
                l.engagements += 1;
            }
            engage
        } else {
            false
        };
        if engage {
            let rack_id = self.lease.as_ref().expect("lease exists").rack_id;
            emit_lease(kernel, "lease_engage", rack_id);
        }
        let tid = self
            .queries
            .get(cmd.query)
            .filter(|q| cmd.op < q.op_count())
            .and_then(|q| q.cell(cmd.op).thread());
        match tid {
            Some(tid) if kernel.set_nice(tid, cmd.nice).is_ok() => self.applied += 1,
            _ => self.skipped += 1,
        }
    }

    /// Commands successfully applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Commands dropped (unknown address or unbound thread).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Installs the periodic lease check for a worker's [`CmdApplier`]: every
/// half lease interval, [`CmdApplier::check_lease`] runs against the
/// worker's kernel clock, so an expiry is detected at most 1.5 intervals
/// after the last command was heard (expiry itself happens at one
/// interval; the probe period bounds the detection lag).
///
/// # Panics
///
/// Panics if the applier has no lease armed (see
/// [`CmdApplier::with_lease`]).
pub fn install_lease_guard(
    kernel: &mut Kernel,
    applier: Rc<RefCell<CmdApplier>>,
) -> CallbackId {
    let interval = applier
        .borrow()
        .lease_interval()
        .expect("install_lease_guard needs an armed lease");
    let period = SimDuration::from_nanos((interval.as_nanos() / 2).max(1));
    kernel.schedule_periodic(period, period, move |k| {
        applier.borrow_mut().check_lease(k);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SinglePrioritySchedule;
    use simos::SimDuration;
    use spe::{CostModel, EngineConfig, Partitioning, Placement, Role};

    fn graph(name: &str) -> LogicalGraph {
        let mut b = LogicalGraph::builder(name);
        let src = b.op("src", Role::Ingress, CostModel::micros(50), 1, || {
            Box::new(spe::PassThrough)
        });
        let sink = b.op("sink", Role::Egress, CostModel::micros(50), 1, || {
            Box::new(spe::Consume)
        });
        b.edge(src, sink, Partitioning::Forward);
        b.source("gen", src, 100.0, |seq, now| spe::Tuple::new(now, seq, vec![]));
        b.build().unwrap()
    }

    #[test]
    fn mirror_matches_local_topology() {
        let g = graph("q0");
        let mirror = MirrorQuery::new(&g, true);
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        let driver = MirrorDriver::new("liebre@node1", SpeKind::Liebre, vec![mirror], store);
        let ents = driver.entities();
        assert!(!ents.is_empty());
        assert!(driver.thread_of(ents[0]).is_none());
        assert!(driver.is_egress(*ents.last().unwrap()));
    }

    #[test]
    fn mirror_reads_relayed_metrics() {
        let g = graph("q0");
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        store.borrow_mut().record(
            &metric_path(SpeKind::Liebre, "q0", 0, lachesis_metrics::names::QUEUE_SIZE),
            t,
            17.0,
        );
        let driver =
            MirrorDriver::new("liebre@node1", SpeKind::Liebre, vec![MirrorQuery::new(&g, true)], store);
        let vals = driver.fetch(lachesis_metrics::names::QUEUE_SIZE);
        assert_eq!(vals.get(&OpRef::new(0, 0)), Some(17.0));
    }

    #[test]
    fn remote_translator_emits_commands() {
        let outbox: CmdOutbox = Rc::new(RefCell::new(Vec::new()));
        let mut tr = RemoteNiceTranslator::new(3, Rc::clone(&outbox));
        let g = graph("q0");
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        let driver =
            MirrorDriver::new("liebre@node3", SpeKind::Liebre, vec![MirrorQuery::new(&g, true)], store);
        let mut s = SinglePrioritySchedule::new();
        s.set(OpRef::new(0, 0), 10.0);
        s.set(OpRef::new(0, 1), 1.0);
        let mut kernel = Kernel::default();
        tr.apply(&mut kernel, &driver, &Schedule::Single(s), PriorityKind::Linear)
            .unwrap();
        let sent = outbox.borrow();
        assert_eq!(sent.len(), 2);
        assert!(sent.iter().all(|s| s.dst == 3));
        // Higher priority → lower (better) nice.
        let by_op: std::collections::HashMap<_, _> =
            sent.iter().map(|s| (s.cmd.op, s.cmd.nice.value())).collect();
        assert!(by_op[&0] < by_op[&1]);
    }

    #[test]
    fn applier_applies_and_skips() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 2);
        let g = graph("q0");
        let mirror = MirrorQuery::new(&g, EngineConfig::liebre().chaining);
        let query = spe::deploy(
            &mut kernel,
            g,
            EngineConfig::liebre(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        let mut applier = CmdApplier::new(vec![query.clone()]);
        applier.check_against(std::slice::from_ref(&mirror));
        let nice = Nice::new(-3).unwrap();
        applier.apply(&mut kernel, RemoteCmd { query: 0, op: 0, nice });
        assert_eq!(applier.applied(), 1);
        let tid = query.cell(0).thread().unwrap();
        assert_eq!(kernel.thread_info(tid).unwrap().nice, nice);
        // Unknown address: counted, not fatal.
        applier.apply(&mut kernel, RemoteCmd { query: 9, op: 0, nice });
        assert_eq!(applier.skipped(), 1);
    }

    #[test]
    fn lease_expires_to_cfs_and_reengages_on_next_command() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 2);
        let query = spe::deploy(
            &mut kernel,
            graph("q0"),
            EngineConfig::liebre(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        let applier = Rc::new(RefCell::new(
            CmdApplier::new(vec![query.clone()]).with_lease(1, SimDuration::from_secs(2)),
        ));
        install_lease_guard(&mut kernel, Rc::clone(&applier));

        // First command engages the lease and applies its nice.
        let boost = Nice::new(-4).unwrap();
        applier
            .borrow_mut()
            .apply(&mut kernel, RemoteCmd { query: 0, op: 0, nice: boost });
        assert!(applier.borrow().lease_engaged());
        assert_eq!(applier.borrow().lease_transitions(), (1, 0));
        let tid = query.cell(0).thread().unwrap();
        assert_eq!(kernel.thread_info(tid).unwrap().nice, boost);

        // Silence past the interval: the guard reverts to CFS defaults.
        kernel.run_for(SimDuration::from_secs(4));
        assert!(!applier.borrow().lease_engaged());
        assert_eq!(applier.borrow().lease_transitions(), (1, 1));
        assert_eq!(kernel.thread_info(tid).unwrap().nice.value(), 0);

        // The controller comes back: the next command re-engages.
        applier
            .borrow_mut()
            .apply(&mut kernel, RemoteCmd { query: 0, op: 0, nice: boost });
        assert!(applier.borrow().lease_engaged());
        assert_eq!(applier.borrow().lease_transitions(), (2, 1));
        assert_eq!(kernel.thread_info(tid).unwrap().nice, boost);
    }

    #[test]
    fn fence_trips_on_stale_metrics_and_lifts_on_fresh_ones() {
        let g = graph("q0");
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        let path = metric_path(SpeKind::Liebre, "q0", 0, lachesis_metrics::names::QUEUE_SIZE);
        let driver = MirrorDriver::new(
            "liebre@node1",
            SpeKind::Liebre,
            vec![MirrorQuery::new(&g, true)],
            Rc::clone(&store),
        )
        .with_fence(SimDuration::from_secs(3));
        let at = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);

        // Startup grace: no sample yet, within one lease of t=0.
        assert_eq!(driver.refresh_fence(at(2)), None);
        assert!(!driver.fenced());
        assert!(!driver.entities().is_empty());

        // A sample at t=2 keeps the fence open at t=4...
        store.borrow_mut().record(&path, at(2), 5.0);
        assert_eq!(driver.refresh_fence(at(4)), None);
        // ...but by t=6 the sample is older than the lease: fenced, and
        // the driver's entities vanish from scheduling scope.
        assert_eq!(driver.refresh_fence(at(6)), Some(true));
        assert!(driver.fenced());
        assert!(driver.entities().is_empty());
        // No repeated transition while still stale.
        assert_eq!(driver.refresh_fence(at(7)), None);

        // Heal: a fresh sample lifts the fence exactly once.
        store.borrow_mut().record(&path, at(8), 6.0);
        assert_eq!(driver.refresh_fence(at(9)), Some(false));
        assert!(!driver.fenced());
        assert!(!driver.entities().is_empty());
        assert_eq!(driver.fence_transitions(), (1, 1));
    }
}
