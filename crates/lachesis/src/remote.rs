//! Multi-node entity addressing over the modeled network (rack-scale
//! deployments).
//!
//! The paper runs one Lachesis instance per server; the rack experiment
//! (figd1) goes further: a single controller instance on rack node 0
//! schedules operators on *every* node. Three pieces make that work, all of
//! them built strictly on SPE-public information (G2):
//!
//! * [`MirrorDriver`] — the controller-side driver for one remote node. It
//!   derives the topology from the same deterministic [`LogicalGraph`]s the
//!   remote node deployed (deployment is config-driven, so the controller
//!   can rebuild the physical plan bit-for-bit without talking to the
//!   node), and reads metrics from the controller's store, which a metric
//!   relay fills with the remote node's samples after the modeled network
//!   latency — the exact staleness a Graphite-backed deployment sees.
//! * [`RemoteNiceTranslator`] — translates schedules with the same
//!   normalization as the local nice translator, but emits [`RemoteCmd`]
//!   messages into an outbox instead of touching a kernel: the commands
//!   cross the modeled network and take effect one link latency later.
//! * [`CmdApplier`] — the remote node's side: maps an arriving command's
//!   `(query, op)` address back to the locally bound kernel thread and
//!   applies the nice value.
//!
//! Query indices are the address space: the controller's `MirrorDriver` and
//! the remote node's `CmdApplier` must list the same queries in the same
//! order (both are built from the same deployment config, so this is a
//! deterministic contract, asserted by name at applier construction).
//!
//! [`LogicalGraph`]: spe::LogicalGraph

use std::cell::RefCell;
use std::rc::Rc;

use lachesis_metrics::{EntityValues, MetricName, MetricSource, TimeSeriesStore};
use simos::{Kernel, Nice, SimTime, ThreadId};
use spe::{metric_path, LogicalGraph, LogicalOpId, PhysOpId, PhysicalGraph, RunningQuery, SpeKind};

use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::normalize::{to_nice_in_range, PriorityKind};
use crate::schedule::Schedule;
use crate::translate::{TranslateError, Translator};

/// A scheduling command addressed to an operator on a remote rack node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteCmd {
    /// Query index in the destination node's deployment order.
    pub query: usize,
    /// Physical operator within the query.
    pub op: PhysOpId,
    /// The nice value to apply to the operator's thread.
    pub nice: Nice,
}

/// One outgoing command: destination rack node, send time, payload.
#[derive(Debug, Clone, Copy)]
pub struct RemoteSend {
    /// Destination rack node index.
    pub dst: usize,
    /// Simulated time the controller issued the command.
    pub at: SimTime,
    /// The command itself.
    pub cmd: RemoteCmd,
}

/// Shared outbox the cluster fabric drains at each epoch barrier.
pub type CmdOutbox = Rc<RefCell<Vec<RemoteSend>>>;

/// The controller-side mirror of one remote node's deployment: query names
/// plus physical plans rebuilt from the deployment config.
#[derive(Debug)]
pub struct MirrorQuery {
    name: String,
    phys: PhysicalGraph,
}

impl MirrorQuery {
    /// Mirrors a query from its logical graph, applying the same chaining
    /// flag the remote deployment used (the physical plan is a pure
    /// function of both).
    pub fn new(graph: &LogicalGraph, chaining: bool) -> MirrorQuery {
        MirrorQuery {
            name: graph.name.clone(),
            phys: PhysicalGraph::build(graph, chaining),
        }
    }

    /// The query's name (metric-path namespace).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical operator count.
    pub fn op_count(&self) -> usize {
        self.phys.ops.len()
    }
}

/// A driver for queries running on a **remote** rack node.
///
/// Topology answers come from the mirrored physical plans; metric answers
/// come from the controller-local store (filled by the metric relay).
/// [`SpeDriver::thread_of`] is always `None` — the threads live in another
/// kernel — so this driver must be paired with a translator that addresses
/// operators by `(query, op)` instead, i.e. [`RemoteNiceTranslator`].
/// [`SpeDriver::queries`] is empty for the same reason; bind policies with
/// [`Scope::AllQueries`](crate::Scope::AllQueries) or
/// [`Scope::Query`](crate::Scope::Query), not `Scope::Node`.
pub struct MirrorDriver {
    label: String,
    kind: SpeKind,
    queries: Vec<MirrorQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
}

impl std::fmt::Debug for MirrorDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MirrorDriver")
            .field("label", &self.label)
            .field("kind", &self.kind)
            .field("queries", &self.queries.len())
            .finish_non_exhaustive()
    }
}

impl MirrorDriver {
    /// Creates the driver. `label` names the remote node in logs and
    /// supervisor messages (e.g. `"liebre@node3"`); `queries` must list the
    /// remote node's queries in deployment order.
    pub fn new(
        label: &str,
        kind: SpeKind,
        queries: Vec<MirrorQuery>,
        store: Rc<RefCell<TimeSeriesStore>>,
    ) -> MirrorDriver {
        MirrorDriver {
            label: label.to_owned(),
            kind,
            queries,
            store,
        }
    }

    /// The mirrored queries, in address order.
    pub fn mirrored(&self) -> &[MirrorQuery] {
        &self.queries
    }
}

impl MetricSource<OpRef> for MirrorDriver {
    fn source_name(&self) -> &str {
        &self.label
    }

    fn provides(&self, metric: MetricName) -> bool {
        self.kind.exposed_metrics().contains(&metric)
    }

    fn fetch(&self, metric: MetricName) -> EntityValues<OpRef> {
        let store = self.store.borrow();
        let mut out = EntityValues::new();
        for (qi, q) in self.queries.iter().enumerate() {
            for op in 0..q.op_count() {
                let path = metric_path(self.kind, q.name(), op, metric);
                if let Some((t, v)) = store.latest(&path) {
                    out.insert_at(OpRef::new(qi, op), v, t);
                }
            }
        }
        out
    }
}

impl SpeDriver for MirrorDriver {
    fn name(&self) -> &str {
        &self.label
    }

    fn kind(&self) -> SpeKind {
        self.kind
    }

    fn queries(&self) -> Vec<RunningQuery> {
        // No local handles exist for remote queries; `Scope::Node` (the
        // only caller) is not meaningful across the network.
        Vec::new()
    }

    fn entities(&self) -> Vec<OpRef> {
        let mut out = Vec::new();
        for (qi, q) in self.queries.iter().enumerate() {
            for op in 0..q.op_count() {
                out.push(OpRef::new(qi, op));
            }
        }
        out
    }

    fn thread_of(&self, _op: OpRef) -> Option<ThreadId> {
        None
    }

    fn downstream(&self, op: OpRef) -> Vec<OpRef> {
        let Some(q) = self.queries.get(op.query) else {
            return Vec::new();
        };
        let mut out: Vec<OpRef> = q.phys.ops[op.op]
            .out_edges
            .iter()
            .flat_map(|e| e.targets.iter().map(|&t| OpRef::new(op.query, t)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn physical_of(&self, query: usize, logical: LogicalOpId) -> Vec<OpRef> {
        let Some(q) = self.queries.get(query) else {
            return Vec::new();
        };
        q.phys
            .physical_of(logical)
            .iter()
            .map(|&p| OpRef::new(query, p))
            .collect()
    }

    fn logical_of(&self, op: OpRef) -> Vec<LogicalOpId> {
        self.queries
            .get(op.query)
            .map(|q| q.phys.ops[op.op].chain.clone())
            .unwrap_or_default()
    }

    fn is_egress(&self, op: OpRef) -> bool {
        self.queries
            .get(op.query)
            .is_some_and(|q| q.phys.ops[op.op].egress.is_some())
    }
}

/// Applies single-priority schedules to a remote node by emitting nice
/// commands onto the modeled network.
///
/// Normalization is identical to the local
/// [`NiceTranslator`](crate::NiceTranslator) (same default `[-5, 5]`
/// range), so a rack node managed remotely converges to the same nice
/// assignment it would get from a node-local Lachesis instance — just one
/// link latency later.
#[derive(Debug)]
pub struct RemoteNiceTranslator {
    dst: usize,
    lo: i32,
    hi: i32,
    outbox: CmdOutbox,
}

impl RemoteNiceTranslator {
    /// Creates a translator addressing rack node `dst`, emitting into the
    /// cluster's shared `outbox`.
    pub fn new(dst: usize, outbox: CmdOutbox) -> RemoteNiceTranslator {
        RemoteNiceTranslator {
            dst,
            lo: -5,
            hi: 5,
            outbox,
        }
    }

    /// Overrides the target nice range.
    ///
    /// # Panics
    ///
    /// Panics unless `-20 <= lo < hi <= 19`.
    pub fn with_range(mut self, lo: i32, hi: i32) -> Self {
        assert!((-20..=19).contains(&lo) && (-20..=19).contains(&hi) && lo < hi);
        self.lo = lo;
        self.hi = hi;
        self
    }
}

impl Translator for RemoteNiceTranslator {
    fn name(&self) -> &str {
        "remote-nice"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        _driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        let Schedule::Single(s) = schedule else {
            return Err(TranslateError::WrongFormat {
                translator: "remote-nice",
                expected: "single-priority",
            });
        };
        if s.is_empty() {
            return Ok(());
        }
        let values = s.values();
        let nices = to_nice_in_range(&values, kind, self.lo, self.hi);
        let now = kernel.now();
        let mut outbox = self.outbox.borrow_mut();
        for ((op, _), nice) in s.iter().zip(nices) {
            outbox.push(RemoteSend {
                dst: self.dst,
                at: now,
                cmd: RemoteCmd {
                    query: op.query,
                    op: op.op,
                    nice,
                },
            });
        }
        Ok(())
    }
}

/// The receiving side: resolves arriving [`RemoteCmd`]s against the node's
/// locally deployed queries and applies them to the bound kernel threads.
#[derive(Debug)]
pub struct CmdApplier {
    queries: Vec<RunningQuery>,
    applied: u64,
    skipped: u64,
}

impl CmdApplier {
    /// Creates an applier over the node's queries **in deployment order** —
    /// the same order the controller's [`MirrorDriver`] lists them.
    pub fn new(queries: Vec<RunningQuery>) -> CmdApplier {
        CmdApplier {
            queries,
            applied: 0,
            skipped: 0,
        }
    }

    /// Asserts the address space matches a mirror's (names, positions and
    /// operator counts) — catches deployment-order drift at startup rather
    /// than as silently misdirected commands.
    pub fn check_against(&self, mirrored: &[MirrorQuery]) {
        assert_eq!(self.queries.len(), mirrored.len(), "query count mismatch");
        for (local, mirror) in self.queries.iter().zip(mirrored) {
            assert_eq!(local.name(), mirror.name(), "query order mismatch");
            assert_eq!(
                local.op_count(),
                mirror.op_count(),
                "physical plan mismatch for {}",
                local.name()
            );
        }
    }

    /// Applies one arriving command. Commands for unknown addresses or
    /// unbound threads (an operator mid-restart after a crash) are counted
    /// in [`skipped`](CmdApplier::skipped) and dropped — the controller
    /// resends a fresh schedule every period anyway.
    pub fn apply(&mut self, kernel: &mut Kernel, cmd: RemoteCmd) {
        let tid = self
            .queries
            .get(cmd.query)
            .filter(|q| cmd.op < q.op_count())
            .and_then(|q| q.cell(cmd.op).thread());
        match tid {
            Some(tid) if kernel.set_nice(tid, cmd.nice).is_ok() => self.applied += 1,
            _ => self.skipped += 1,
        }
    }

    /// Commands successfully applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Commands dropped (unknown address or unbound thread).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SinglePrioritySchedule;
    use simos::SimDuration;
    use spe::{CostModel, EngineConfig, Partitioning, Placement, Role};

    fn graph(name: &str) -> LogicalGraph {
        let mut b = LogicalGraph::builder(name);
        let src = b.op("src", Role::Ingress, CostModel::micros(50), 1, || {
            Box::new(spe::PassThrough)
        });
        let sink = b.op("sink", Role::Egress, CostModel::micros(50), 1, || {
            Box::new(spe::Consume)
        });
        b.edge(src, sink, Partitioning::Forward);
        b.source("gen", src, 100.0, |seq, now| spe::Tuple::new(now, seq, vec![]));
        b.build().unwrap()
    }

    #[test]
    fn mirror_matches_local_topology() {
        let g = graph("q0");
        let mirror = MirrorQuery::new(&g, true);
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        let driver = MirrorDriver::new("liebre@node1", SpeKind::Liebre, vec![mirror], store);
        let ents = driver.entities();
        assert!(!ents.is_empty());
        assert!(driver.thread_of(ents[0]).is_none());
        assert!(driver.is_egress(*ents.last().unwrap()));
    }

    #[test]
    fn mirror_reads_relayed_metrics() {
        let g = graph("q0");
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        store.borrow_mut().record(
            &metric_path(SpeKind::Liebre, "q0", 0, lachesis_metrics::names::QUEUE_SIZE),
            t,
            17.0,
        );
        let driver =
            MirrorDriver::new("liebre@node1", SpeKind::Liebre, vec![MirrorQuery::new(&g, true)], store);
        let vals = driver.fetch(lachesis_metrics::names::QUEUE_SIZE);
        assert_eq!(vals.get(&OpRef::new(0, 0)), Some(17.0));
    }

    #[test]
    fn remote_translator_emits_commands() {
        let outbox: CmdOutbox = Rc::new(RefCell::new(Vec::new()));
        let mut tr = RemoteNiceTranslator::new(3, Rc::clone(&outbox));
        let g = graph("q0");
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        let driver =
            MirrorDriver::new("liebre@node3", SpeKind::Liebre, vec![MirrorQuery::new(&g, true)], store);
        let mut s = SinglePrioritySchedule::new();
        s.set(OpRef::new(0, 0), 10.0);
        s.set(OpRef::new(0, 1), 1.0);
        let mut kernel = Kernel::default();
        tr.apply(&mut kernel, &driver, &Schedule::Single(s), PriorityKind::Linear)
            .unwrap();
        let sent = outbox.borrow();
        assert_eq!(sent.len(), 2);
        assert!(sent.iter().all(|s| s.dst == 3));
        // Higher priority → lower (better) nice.
        let by_op: std::collections::HashMap<_, _> =
            sent.iter().map(|s| (s.cmd.op, s.cmd.nice.value())).collect();
        assert!(by_op[&0] < by_op[&1]);
    }

    #[test]
    fn applier_applies_and_skips() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 2);
        let g = graph("q0");
        let mirror = MirrorQuery::new(&g, EngineConfig::liebre().chaining);
        let query = spe::deploy(
            &mut kernel,
            g,
            EngineConfig::liebre(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        let mut applier = CmdApplier::new(vec![query.clone()]);
        applier.check_against(std::slice::from_ref(&mirror));
        let nice = Nice::new(-3).unwrap();
        applier.apply(&mut kernel, RemoteCmd { query: 0, op: 0, nice });
        assert_eq!(applier.applied(), 1);
        let tid = query.cell(0).thread().unwrap();
        assert_eq!(kernel.thread_info(tid).unwrap().nice, nice);
        // Unknown address: counted, not fatal.
        applier.apply(&mut kernel, RemoteCmd { query: 9, op: 0, nice });
        assert_eq!(applier.skipped(), 1);
    }
}
