//! Extension translators for the OS mechanisms listed in the paper's
//! future-work section (§8): CPU quotas (CFS bandwidth control) and
//! real-time thread priorities. Both were flagged as "available at
//! Lachesis' repository" but not evaluated in the paper; they are provided
//! here with the same [`Translator`] interface so policies can drive them
//! unchanged.

use std::collections::HashMap;
use std::fmt;

use simos::{CgroupId, Kernel, NodeId, SimDuration};

use crate::driver::SpeDriver;
use crate::normalize::{min_max_anchored, PriorityKind};
use crate::schedule::{GroupingSchedule, Schedule};
use crate::translate::{TranslateError, Translator};

/// Applies grouping schedules as cgroup **CPU quotas**: each group may
/// consume at most a priority-proportional fraction of the machine per
/// enforcement period. Unlike `cpu.shares` (a *relative* weight), quotas
/// are hard caps — useful for multi-tenant isolation where a query must
/// not exceed its entitlement even when the machine is idle.
pub struct CpuQuotaTranslator {
    roots: HashMap<NodeId, CgroupId>,
    groups: HashMap<(NodeId, String), CgroupId>,
    period: SimDuration,
    /// Fraction range the priorities are normalized into.
    frac_range: (f64, f64),
    label: String,
}

impl fmt::Debug for CpuQuotaTranslator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuQuotaTranslator")
            .field("period", &self.period)
            .field("frac_range", &self.frac_range)
            .finish_non_exhaustive()
    }
}

impl CpuQuotaTranslator {
    /// Creates the translator with a 100 ms enforcement period and quota
    /// fractions normalized into `[0.05, 1.0]` of the whole machine.
    pub fn new(label: &str) -> Self {
        CpuQuotaTranslator {
            roots: HashMap::new(),
            groups: HashMap::new(),
            period: SimDuration::from_millis(100),
            frac_range: (0.05, 1.0),
            label: label.to_owned(),
        }
    }

    /// Overrides the enforcement period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero());
        self.period = period;
        self
    }

    /// Overrides the machine-fraction range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi <= 1`.
    pub fn with_fraction_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && lo < hi && hi <= 1.0);
        self.frac_range = (lo, hi);
        self
    }
}

impl Translator for CpuQuotaTranslator {
    fn name(&self) -> &str {
        "cpu.cfs_quota"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        _kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        let grouping = match schedule {
            Schedule::Grouped(g) => g.clone(),
            Schedule::Single(s) => GroupingSchedule::per_operator(s),
        };
        if grouping.is_empty() {
            return Ok(());
        }
        let priorities: Vec<f64> = grouping.iter().map(|(_, p, _)| p).collect();
        let fracs = min_max_anchored(&priorities, self.frac_range.0, self.frac_range.1);
        for ((gid, _, ops), frac) in grouping.iter().zip(fracs) {
            for &op in ops {
                let tid = driver
                    .thread_of(op)
                    .ok_or(TranslateError::MissingThread(op))?;
                let node = kernel.thread_info(tid)?.node;
                let key = (node, gid.to_owned());
                let cg = match self.groups.get(&key) {
                    Some(&cg) => cg,
                    None => {
                        let root = match self.roots.get(&node) {
                            Some(&r) => r,
                            None => {
                                let node_root = kernel.node_root(node)?;
                                let r = kernel.create_cgroup(
                                    node_root,
                                    &format!("lachesis-quota-{}", self.label),
                                    1024,
                                )?;
                                self.roots.insert(node, r);
                                r
                            }
                        };
                        let cg = kernel.create_cgroup(root, gid, 1024)?;
                        self.groups.insert(key, cg);
                        cg
                    }
                };
                let cpus = kernel.node_stats(node)?.cpus as f64;
                let quota = SimDuration::from_secs_f64(
                    self.period.as_secs_f64() * cpus * frac.clamp(0.0, 1.0),
                );
                kernel.set_cpu_quota(cg, Some((quota, self.period)))?;
                kernel.move_to_cgroup(tid, cg)?;
            }
        }
        Ok(())
    }
}

/// Lifts the `top_k` highest-priority operators into the real-time
/// (SCHED_FIFO) band, ranked by priority; all other scheduled operators are
/// returned to CFS.
///
/// RT threads preempt every CFS thread and are never timesliced, so this
/// translator is only safe for operators that regularly block (e.g.
/// latency-critical sinks draining small queues); a CPU-bound operator in
/// the RT band starves the rest of the node.
#[derive(Debug)]
pub struct RealTimeTranslator {
    top_k: usize,
}

impl RealTimeTranslator {
    /// Creates the translator promoting at most `top_k` operators.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero.
    pub fn new(top_k: usize) -> Self {
        assert!(top_k > 0, "top_k must be at least 1");
        RealTimeTranslator { top_k }
    }
}

impl Translator for RealTimeTranslator {
    fn name(&self) -> &str {
        "sched_fifo"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        _kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        let Schedule::Single(s) = schedule else {
            return Err(TranslateError::WrongFormat {
                translator: "sched_fifo",
                expected: "single-priority",
            });
        };
        let mut ranked: Vec<_> = s.iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (rank, (op, _)) in ranked.into_iter().enumerate() {
            let tid = driver
                .thread_of(op)
                .ok_or(TranslateError::MissingThread(op))?;
            if rank < self.top_k {
                // Priorities 1..=99, highest rank = highest RT priority.
                let prio = (99 - rank.min(98)) as u8;
                kernel.set_rt_priority(tid, Some(prio))?;
            } else {
                kernel.set_rt_priority(tid, None)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::OpRef;
    use crate::schedule::SinglePrioritySchedule;
    use simos::{FixedWork, Nice};
    use spe::SpeKind;

    struct ThreadDriver {
        threads: Vec<simos::ThreadId>,
    }
    impl lachesis_metrics::MetricSource<OpRef> for ThreadDriver {
        fn source_name(&self) -> &str {
            "td"
        }
        fn provides(&self, _m: lachesis_metrics::MetricName) -> bool {
            false
        }
        fn fetch(&self, _m: lachesis_metrics::MetricName) -> lachesis_metrics::EntityValues<OpRef> {
            Default::default()
        }
    }
    impl SpeDriver for ThreadDriver {
        fn name(&self) -> &str {
            "td"
        }
        fn kind(&self) -> SpeKind {
            SpeKind::Storm
        }
        fn queries(&self) -> Vec<spe::RunningQuery> {
            Vec::new()
        }
        fn entities(&self) -> Vec<OpRef> {
            (0..self.threads.len()).map(|o| OpRef::new(0, o)).collect()
        }
        fn thread_of(&self, op: OpRef) -> Option<simos::ThreadId> {
            self.threads.get(op.op).copied()
        }
        fn downstream(&self, _op: OpRef) -> Vec<OpRef> {
            vec![]
        }
        fn physical_of(&self, _query: usize, logical: usize) -> Vec<OpRef> {
            vec![OpRef::new(0, logical)]
        }
        fn logical_of(&self, op: OpRef) -> Vec<usize> {
            vec![op.op]
        }
        fn is_egress(&self, _op: OpRef) -> bool {
            false
        }
    }

    fn setup(n: usize) -> (Kernel, ThreadDriver) {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 2);
        let threads = (0..n)
            .map(|i| {
                kernel
                    .spawn(
                        node,
                        &format!("t{i}"),
                        FixedWork::endless(SimDuration::from_micros(100)),
                    )
                    .build()
            })
            .collect();
        (kernel, ThreadDriver { threads })
    }

    #[test]
    fn quota_translator_caps_groups() {
        let (mut kernel, driver) = setup(2);
        let mut g = GroupingSchedule::new();
        g.set_group("hot", 10.0, vec![OpRef::new(0, 0)]);
        g.set_group("cold", 1.0, vec![OpRef::new(0, 1)]);
        let mut tr = CpuQuotaTranslator::new("t");
        tr.apply(
            &mut kernel,
            &driver,
            &Schedule::Grouped(g),
            PriorityKind::Linear,
        )
        .unwrap();
        let cg0 = kernel.thread_info(driver.threads[0]).unwrap().cgroup;
        let cg1 = kernel.thread_info(driver.threads[1]).unwrap().cgroup;
        let q0 = kernel.cgroup_info(cg0).unwrap().quota.unwrap();
        let q1 = kernel.cgroup_info(cg1).unwrap().quota.unwrap();
        assert!(q0.0 > q1.0, "hot quota {:?} > cold quota {:?}", q0, q1);
        assert_eq!(q0.1, SimDuration::from_millis(100));
        // The capped group actually stops at its budget.
        kernel.run_for(SimDuration::from_secs(2));
        let cold = kernel.thread_info(driver.threads[1]).unwrap().cputime;
        // cold frac: zero-anchored 1/10 of [0.05, 1.0] -> ~0.145 of 2 CPUs.
        let frac = cold.as_secs_f64() / 4.0;
        assert!((0.1..=0.2).contains(&frac), "cold used {frac} of capacity");
    }

    #[test]
    fn rt_translator_promotes_top_k_only() {
        let (mut kernel, driver) = setup(3);
        let s: SinglePrioritySchedule = [
            (OpRef::new(0, 0), 5.0),
            (OpRef::new(0, 1), 50.0),
            (OpRef::new(0, 2), 20.0),
        ]
        .into_iter()
        .collect();
        RealTimeTranslator::new(1)
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s.clone()),
                PriorityKind::Linear,
            )
            .unwrap();
        assert!(kernel
            .thread_info(driver.threads[1])
            .unwrap()
            .rt_priority
            .is_some());
        assert!(kernel
            .thread_info(driver.threads[0])
            .unwrap()
            .rt_priority
            .is_none());
        // Re-applying with different priorities demotes the old leader.
        let s2: SinglePrioritySchedule = [
            (OpRef::new(0, 0), 99.0),
            (OpRef::new(0, 1), 1.0),
            (OpRef::new(0, 2), 2.0),
        ]
        .into_iter()
        .collect();
        RealTimeTranslator::new(1)
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s2),
                PriorityKind::Linear,
            )
            .unwrap();
        assert!(kernel
            .thread_info(driver.threads[0])
            .unwrap()
            .rt_priority
            .is_some());
        assert!(kernel
            .thread_info(driver.threads[1])
            .unwrap()
            .rt_priority
            .is_none());
        let _ = Nice::DEFAULT;
    }

    #[test]
    fn rt_translator_rejects_grouped() {
        let (mut kernel, driver) = setup(1);
        let err = RealTimeTranslator::new(1)
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Grouped(GroupingSchedule::new()),
                PriorityKind::Linear,
            )
            .unwrap_err();
        assert!(matches!(err, TranslateError::WrongFormat { .. }));
    }
}
