//! Translation policies (paper Def. 3.3, §5.3): turn a schedule's real
//! priorities into OS scheduling parameters.
//!
//! * [`NiceTranslator`] maps per-operator priorities to thread `nice`
//!   values (40 discrete levels);
//! * [`CpuSharesTranslator`] maps grouped priorities to per-cgroup
//!   `cpu.shares` (used when nice's 40 levels are not enough, §6.4, or for
//!   multi-dimensional schedules);
//! * [`CombinedTranslator`] nests both: a cgroup per query with equal
//!   shares, `nice` per operator inside — the paper's multi-SPE server
//!   schedule (§6.6).

use std::collections::HashMap;
use std::fmt;

use simos::{CgroupId, Kernel, KernelError, NodeId};

use crate::driver::SpeDriver;
use crate::entity::OpRef;
use crate::normalize::{to_nice_in_range, to_shares, PriorityKind};
use crate::schedule::{GroupingSchedule, Schedule, SinglePrioritySchedule};

/// Errors from applying a schedule to the OS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The operator has no bound kernel thread.
    MissingThread(OpRef),
    /// The underlying kernel rejected an operation.
    Kernel(KernelError),
    /// The translator cannot consume this schedule format.
    WrongFormat {
        /// The translator's name.
        translator: &'static str,
        /// What it expected.
        expected: &'static str,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::MissingThread(op) => {
                write!(f, "operator {op} has no kernel thread to schedule")
            }
            TranslateError::Kernel(e) => write!(f, "kernel error: {e}"),
            TranslateError::WrongFormat {
                translator,
                expected,
            } => write!(f, "{translator} translator expects a {expected} schedule"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<KernelError> for TranslateError {
    fn from(e: KernelError) -> Self {
        TranslateError::Kernel(e)
    }
}

/// A translation policy.
pub trait Translator {
    /// The translator's display name.
    fn name(&self) -> &str;

    /// Applies a schedule through an OS mechanism.
    ///
    /// # Errors
    ///
    /// Fails on unsupported schedule formats, unbound operator threads, or
    /// kernel errors.
    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError>;
}

impl Translator for Box<dyn Translator> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        self.as_mut().apply(kernel, driver, schedule, kind)
    }
}

/// Applies single-priority schedules via thread `nice` values.
///
/// By default priorities map onto nice `[-5, 5]` rather than the full
/// `[-20, 19]`: one nice step is ~25% relative CPU, so ±5 already spans a
/// ~9x weight ratio — enough to steer capacity toward bottlenecks while
/// keeping the once-per-second feedback loop stable (a full-range mapping
/// starves low-priority operators for seconds at a time, oscillating; see
/// EXPERIMENTS.md calibration notes).
#[derive(Debug)]
pub struct NiceTranslator {
    lo: i32,
    hi: i32,
}

impl Default for NiceTranslator {
    fn default() -> Self {
        NiceTranslator::new()
    }
}

impl NiceTranslator {
    /// Creates the translator with the default `[-5, 5]` range.
    pub fn new() -> Self {
        NiceTranslator { lo: -5, hi: 5 }
    }

    /// Overrides the target nice range.
    ///
    /// # Panics
    ///
    /// Panics unless `-20 <= lo < hi <= 19`.
    pub fn with_range(lo: i32, hi: i32) -> Self {
        assert!((-20..=19).contains(&lo) && (-20..=19).contains(&hi) && lo < hi);
        NiceTranslator { lo, hi }
    }
}

impl Translator for NiceTranslator {
    fn name(&self) -> &str {
        "nice"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        let Schedule::Single(s) = schedule else {
            return Err(TranslateError::WrongFormat {
                translator: "nice",
                expected: "single-priority",
            });
        };
        apply_nice(kernel, driver, s, kind, self.lo, self.hi)
    }
}

fn apply_nice(
    kernel: &mut Kernel,
    driver: &dyn SpeDriver,
    s: &SinglePrioritySchedule,
    kind: PriorityKind,
    lo: i32,
    hi: i32,
) -> Result<(), TranslateError> {
    if s.is_empty() {
        return Ok(());
    }
    let values = s.values();
    let nices = to_nice_in_range(&values, kind, lo, hi);
    for ((op, _), nice) in s.iter().zip(nices) {
        let tid = driver
            .thread_of(op)
            .ok_or(TranslateError::MissingThread(op))?;
        kernel.set_nice(tid, nice)?;
    }
    Ok(())
}

/// Applies grouping schedules via cgroup `cpu.shares`.
///
/// Groups are materialized lazily as cgroups under a per-node root (the
/// paper nests SPE threads under a custom root cgroup, §6.1); operator
/// threads are moved into their group's cgroup and the group priority is
/// normalized into a shares value. Single-priority schedules degrade to one
/// group per operator (§6.4's 100-operator setup).
pub struct CpuSharesTranslator {
    /// Root cgroup per node under which groups are created.
    roots: HashMap<NodeId, CgroupId>,
    groups: HashMap<(NodeId, String), CgroupId>,
    shares_range: (u64, u64),
    label: String,
}

impl fmt::Debug for CpuSharesTranslator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuSharesTranslator")
            .field("groups", &self.groups.len())
            .field("shares_range", &self.shares_range)
            .finish_non_exhaustive()
    }
}

impl CpuSharesTranslator {
    /// Creates the translator; cgroups are created under each node's root
    /// on first use. `label` namespaces this translator's cgroups.
    pub fn new(label: &str) -> Self {
        CpuSharesTranslator {
            roots: HashMap::new(),
            groups: HashMap::new(),
            shares_range: (205, 2048),
            label: label.to_owned(),
        }
    }

    /// Overrides the shares normalization range.
    pub fn with_shares_range(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "invalid shares range");
        self.shares_range = (lo, hi);
        self
    }

    fn root_for(&mut self, kernel: &mut Kernel, node: NodeId) -> Result<CgroupId, TranslateError> {
        if let Some(&r) = self.roots.get(&node) {
            return Ok(r);
        }
        let node_root = kernel.node_root(node)?;
        let root = kernel.create_cgroup(node_root, &format!("lachesis-{}", self.label), 1024)?;
        self.roots.insert(node, root);
        Ok(root)
    }

    fn apply_grouped(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        g: &GroupingSchedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        if g.is_empty() {
            return Ok(());
        }
        let priorities: Vec<f64> = g.iter().map(|(_, p, _)| p).collect();
        let (lo, hi) = self.shares_range;
        let shares = to_shares(&priorities, kind, lo, hi);
        for ((gid, _, ops), share) in g.iter().zip(shares) {
            for &op in ops {
                let tid = driver
                    .thread_of(op)
                    .ok_or(TranslateError::MissingThread(op))?;
                let node = kernel.thread_info(tid)?.node;
                let key = (node, gid.to_owned());
                let cg = match self.groups.get(&key) {
                    Some(&cg) => cg,
                    None => {
                        let root = self.root_for(kernel, node)?;
                        let cg = kernel.create_cgroup(root, gid, share)?;
                        self.groups.insert(key, cg);
                        cg
                    }
                };
                kernel.set_cpu_shares(cg, share)?;
                kernel.move_to_cgroup(tid, cg)?;
            }
        }
        Ok(())
    }
}

impl Translator for CpuSharesTranslator {
    fn name(&self) -> &str {
        "cpu.shares"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        match schedule {
            Schedule::Grouped(g) => self.apply_grouped(kernel, driver, g, kind),
            Schedule::Single(s) => {
                let g = GroupingSchedule::per_operator(s);
                self.apply_grouped(kernel, driver, &g, kind)
            }
        }
    }
}

/// Multi-dimensional translation (paper §6.6): every query gets its own
/// cgroup with **equal** `cpu.shares`, and operators are prioritized with
/// `nice` *inside* their query's group.
pub struct CombinedTranslator {
    shares: CpuSharesTranslator,
}

impl fmt::Debug for CombinedTranslator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombinedTranslator").finish_non_exhaustive()
    }
}

impl CombinedTranslator {
    /// Creates the translator; `label` namespaces its cgroups.
    pub fn new(label: &str) -> Self {
        CombinedTranslator {
            shares: CpuSharesTranslator::new(label),
        }
    }
}

impl Translator for CombinedTranslator {
    fn name(&self) -> &str {
        "nice+cpu.shares"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        let Schedule::Single(s) = schedule else {
            return Err(TranslateError::WrongFormat {
                translator: "nice+cpu.shares",
                expected: "single-priority",
            });
        };
        // Dimension 1: equal-share cgroup per query.
        let mut by_query: HashMap<usize, Vec<OpRef>> = HashMap::new();
        for (op, _) in s.iter() {
            by_query.entry(op.query).or_default().push(op);
        }
        let mut grouping = GroupingSchedule::new();
        for (q, ops) in by_query {
            grouping.set_group(
                &format!("{}-q{}", driver.name(), q),
                1.0,
                ops,
            );
        }
        self.shares
            .apply_grouped(kernel, driver, &grouping, PriorityKind::Linear)?;
        // Dimension 2: nice per operator (effective within each cgroup).
        apply_nice(kernel, driver, s, kind, -5, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{FixedWork, Nice, SimDuration};
    use spe::SpeKind;

    /// A driver over real kernel threads but no real queries.
    struct ThreadDriver {
        threads: Vec<simos::ThreadId>,
    }
    impl lachesis_metrics::MetricSource<OpRef> for ThreadDriver {
        fn source_name(&self) -> &str {
            "td"
        }
        fn provides(&self, _m: lachesis_metrics::MetricName) -> bool {
            false
        }
        fn fetch(&self, _m: lachesis_metrics::MetricName) -> lachesis_metrics::EntityValues<OpRef> {
            Default::default()
        }
    }
    impl SpeDriver for ThreadDriver {
        fn name(&self) -> &str {
            "td"
        }
        fn kind(&self) -> SpeKind {
            SpeKind::Storm
        }
        fn queries(&self) -> Vec<spe::RunningQuery> {
            Vec::new()
        }
        fn entities(&self) -> Vec<OpRef> {
            (0..self.threads.len()).map(|o| OpRef::new(0, o)).collect()
        }
        fn thread_of(&self, op: OpRef) -> Option<simos::ThreadId> {
            self.threads.get(op.op).copied()
        }
        fn downstream(&self, _op: OpRef) -> Vec<OpRef> {
            vec![]
        }
        fn physical_of(&self, _query: usize, logical: usize) -> Vec<OpRef> {
            vec![OpRef::new(0, logical)]
        }
        fn logical_of(&self, op: OpRef) -> Vec<usize> {
            vec![op.op]
        }
        fn is_egress(&self, _op: OpRef) -> bool {
            false
        }
    }

    fn setup(n: usize) -> (Kernel, ThreadDriver) {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 2);
        let threads = (0..n)
            .map(|i| {
                kernel
                    .spawn(
                        node,
                        &format!("t{i}"),
                        FixedWork::endless(SimDuration::from_micros(100)),
                    )
                    .build()
            })
            .collect();
        (kernel, ThreadDriver { threads })
    }

    #[test]
    fn nice_translator_sets_inverted_priorities() {
        let (mut kernel, driver) = setup(3);
        let s: SinglePrioritySchedule = [
            (OpRef::new(0, 0), 0.0),
            (OpRef::new(0, 1), 100.0),
            (OpRef::new(0, 2), 50.0),
        ]
        .into_iter()
        .collect();
        NiceTranslator::new()
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s),
                PriorityKind::Linear,
            )
            .unwrap();
        // Default range is [-5, 5].
        let n0 = kernel.thread_info(driver.threads[0]).unwrap().nice;
        let n1 = kernel.thread_info(driver.threads[1]).unwrap().nice;
        let n2 = kernel.thread_info(driver.threads[2]).unwrap().nice;
        assert_eq!(n0, Nice::new(5).unwrap(), "lowest priority => highest nice");
        assert_eq!(n1, Nice::new(-5).unwrap(), "highest priority => lowest nice");
        assert!(n2 > n1 && n2 < n0);
        // A custom full range reaches the extremes.
        let s2: SinglePrioritySchedule = [
            (OpRef::new(0, 0), 0.0),
            (OpRef::new(0, 1), 100.0),
            (OpRef::new(0, 2), 50.0),
        ]
        .into_iter()
        .collect();
        NiceTranslator::with_range(-20, 19)
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s2),
                PriorityKind::Linear,
            )
            .unwrap();
        assert_eq!(
            kernel.thread_info(driver.threads[1]).unwrap().nice,
            Nice::MIN
        );
    }

    #[test]
    fn nice_translator_rejects_grouped() {
        let (mut kernel, driver) = setup(1);
        let err = NiceTranslator::new()
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Grouped(GroupingSchedule::new()),
                PriorityKind::Linear,
            )
            .unwrap_err();
        assert!(matches!(err, TranslateError::WrongFormat { .. }));
    }

    #[test]
    fn shares_translator_creates_cgroups_and_moves_threads() {
        let (mut kernel, driver) = setup(4);
        let mut g = GroupingSchedule::new();
        g.set_group("hot", 10.0, vec![OpRef::new(0, 0), OpRef::new(0, 1)]);
        g.set_group("cold", 1.0, vec![OpRef::new(0, 2), OpRef::new(0, 3)]);
        let mut tr = CpuSharesTranslator::new("test");
        tr.apply(
            &mut kernel,
            &driver,
            &Schedule::Grouped(g),
            PriorityKind::Linear,
        )
        .unwrap();
        let cg0 = kernel.thread_info(driver.threads[0]).unwrap().cgroup;
        let cg1 = kernel.thread_info(driver.threads[1]).unwrap().cgroup;
        let cg2 = kernel.thread_info(driver.threads[2]).unwrap().cgroup;
        assert_eq!(cg0, cg1, "same group, same cgroup");
        assert_ne!(cg0, cg2);
        let hot = kernel.cgroup_info(cg0).unwrap();
        let cold = kernel.cgroup_info(cg2).unwrap();
        assert!(hot.shares > cold.shares);
        // Re-applying with swapped priorities updates shares in place.
        let mut g2 = GroupingSchedule::new();
        g2.set_group("hot", 1.0, vec![OpRef::new(0, 0), OpRef::new(0, 1)]);
        g2.set_group("cold", 10.0, vec![OpRef::new(0, 2), OpRef::new(0, 3)]);
        tr.apply(
            &mut kernel,
            &driver,
            &Schedule::Grouped(g2),
            PriorityKind::Linear,
        )
        .unwrap();
        let hot2 = kernel.cgroup_info(cg0).unwrap();
        let cold2 = kernel.cgroup_info(cg2).unwrap();
        assert!(cold2.shares > hot2.shares);
        assert_eq!(
            kernel.thread_info(driver.threads[0]).unwrap().cgroup,
            cg0,
            "no churn: same cgroup reused"
        );
    }

    #[test]
    fn shares_translator_accepts_single_priority() {
        let (mut kernel, driver) = setup(2);
        let s: SinglePrioritySchedule = [(OpRef::new(0, 0), 1.0), (OpRef::new(0, 1), 5.0)]
            .into_iter()
            .collect();
        CpuSharesTranslator::new("t")
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s),
                PriorityKind::Linear,
            )
            .unwrap();
        let cg0 = kernel.thread_info(driver.threads[0]).unwrap().cgroup;
        let cg1 = kernel.thread_info(driver.threads[1]).unwrap().cgroup;
        assert_ne!(cg0, cg1, "one cgroup per operator");
    }

    #[test]
    fn combined_translator_nests_dimensions() {
        let (mut kernel, driver) = setup(2);
        let s: SinglePrioritySchedule = [(OpRef::new(0, 0), 1.0), (OpRef::new(0, 1), 5.0)]
            .into_iter()
            .collect();
        CombinedTranslator::new("t")
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s),
                PriorityKind::Linear,
            )
            .unwrap();
        let i0 = kernel.thread_info(driver.threads[0]).unwrap();
        let i1 = kernel.thread_info(driver.threads[1]).unwrap();
        assert_eq!(i0.cgroup, i1.cgroup, "same query, same cgroup");
        assert!(i0.nice > i1.nice, "nice differentiates inside the group");
    }

    #[test]
    fn combined_translator_rejects_grouped() {
        let (mut kernel, driver) = setup(1);
        let err = CombinedTranslator::new("t")
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Grouped(GroupingSchedule::new()),
                PriorityKind::Linear,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            TranslateError::WrongFormat {
                translator: "nice+cpu.shares",
                ..
            }
        ));
    }

    #[test]
    fn kernel_refusal_surfaces_as_kernel_error() {
        let (mut kernel, driver) = setup(2);
        kernel.set_fault_hook(|op, _| op == "set_nice");
        let s: SinglePrioritySchedule = [(OpRef::new(0, 0), 1.0), (OpRef::new(0, 1), 5.0)]
            .into_iter()
            .collect();
        let err = NiceTranslator::new()
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s),
                PriorityKind::Linear,
            )
            .unwrap_err();
        assert!(
            matches!(err, TranslateError::Kernel(simos::KernelError::InjectedFault { .. })),
            "got {err:?}"
        );
        // The refusal left no partial nice changes behind.
        for &tid in &driver.threads {
            assert_eq!(kernel.thread_info(tid).unwrap().nice, Nice::DEFAULT);
        }
    }

    #[test]
    fn missing_thread_is_an_error() {
        let (mut kernel, _) = setup(0);
        let driver = ThreadDriver { threads: vec![] };
        let s: SinglePrioritySchedule = [(OpRef::new(0, 0), 1.0)].into_iter().collect();
        let err = NiceTranslator::new()
            .apply(
                &mut kernel,
                &driver,
                &Schedule::Single(s),
                PriorityKind::Linear,
            )
            .unwrap_err();
        assert_eq!(err, TranslateError::MissingThread(OpRef::new(0, 0)));
    }
}
