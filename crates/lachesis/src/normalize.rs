//! Priority normalization (paper §5.3).
//!
//! Policies produce real priorities; OS mechanisms want discrete values in
//! fixed ranges (`nice` ∈ [-20, 19], `cpu.shares` ∈ [2, …]). Normalization
//! converts between them while hiding OS details from the policies (G1).

use simos::{Nice, NICE_MAX, NICE_MIN};

/// Shape of a policy's priority values, which selects the normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityKind {
    /// Linearly spaced priorities (e.g. queue sizes): min-max normalize.
    #[default]
    Linear,
    /// Logarithmically spaced priorities (e.g. Highest-Rate \[50\]):
    /// min-max normalize the logarithms.
    Logarithmic,
}

/// Min-max normalizes `values` into `[lo, hi]`; constant inputs map to the
/// midpoint. Returns an empty vector for empty input.
///
/// NaN entries (injected by faulty metric sources) are excluded from the
/// min/max and map to the midpoint, so one poisoned value can neither
/// skew the range nor flow through to a priority.
pub fn min_max(values: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let mid = (lo + hi) / 2.0;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(max - min).is_normal() {
        return vec![mid; values.len()];
    }
    values
        .iter()
        .map(|v| {
            if v.is_nan() {
                mid
            } else {
                lo + (v - min) / (max - min) * (hi - lo)
            }
        })
        .collect()
}

/// Zero-anchored min-max: like [`min_max`] but, when all values are
/// non-negative, the lower anchor is 0 rather than the observed minimum.
///
/// This keeps the QS/FCFS feedback loops stable: with plain min-max,
/// near-equal queue sizes (the *desired* balanced state) would still be
/// blown up to the full priority range, violently re-shuffling CPU on
/// measurement noise. Anchoring at zero maps "all queues similar" to "all
/// priorities similar", which is the fixed point the policies aim for.
pub fn min_max_anchored(values: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let mid = (lo + hi) / 2.0;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    if min < 0.0 {
        return min_max(values, lo, hi);
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_normal() {
        return vec![mid; values.len()];
    }
    values
        .iter()
        // NaN entries map to the midpoint, as in [`min_max`].
        .map(|v| {
            if v.is_nan() {
                mid
            } else {
                lo + v / max * (hi - lo)
            }
        })
        .collect()
}

/// Like [`min_max`] but on the logarithms of the (positive) values; zero or
/// negative values are clamped to the smallest positive value observed.
pub fn log_min_max(values: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let smallest_pos = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    let floor = if smallest_pos.is_finite() {
        smallest_pos
    } else {
        1e-12
    };
    let logs: Vec<f64> = values.iter().map(|v| v.max(floor).ln()).collect();
    min_max(&logs, lo, hi)
}

/// Normalizes priorities (higher = more CPU) to nice values (lower = more
/// CPU) according to the selected [`PriorityKind`].
pub fn to_nice(values: &[f64], kind: PriorityKind) -> Vec<Nice> {
    to_nice_in_range(values, kind, NICE_MIN, NICE_MAX)
}

/// Like [`to_nice`] but normalizing into the sub-range `[lo, hi]` —
/// translators narrow the range to bound the weight spread (§5.3 leaves
/// the interval to the translator configuration).
pub fn to_nice_in_range(values: &[f64], kind: PriorityKind, lo: i32, hi: i32) -> Vec<Nice> {
    let normalized = match kind {
        PriorityKind::Linear => min_max_anchored(values, lo as f64, hi as f64),
        PriorityKind::Logarithmic => nice_formula(values)
            .into_iter()
            .map(|v| {
                // Re-scale the formula output from the full range.
                let frac = (v - NICE_MIN as f64) / (NICE_MAX - NICE_MIN) as f64;
                lo as f64 + frac * (hi - lo) as f64
            })
            .collect(),
    };
    normalized
        .into_iter()
        // Invert: the highest priority gets the lowest (best) nice. The
        // clamp happens in f64 *before* the cast: a non-finite or huge
        // normalized value (slack deficits legitimately explode under
        // overload) would otherwise saturate `as i32` to `i32::MAX` and
        // make `(lo + hi) - v` overflow (a panic in debug builds).
        .map(|v| {
            let v = if v.is_nan() { (lo + hi) as f64 / 2.0 } else { v };
            let v = v.round().clamp(lo as f64, hi as f64) as i32;
            Nice::clamped((lo + hi).saturating_sub(v))
        })
        .collect()
}

/// The paper's exact nice formula for logarithmically spaced priorities:
/// `F(x) = n_max + (log(p_max) − log(x)) / log(1.25)`, with an extra
/// min-max pass when the spread exceeds the 40 nice steps.
///
/// Returns values in *ascending-is-better* orientation (they are inverted
/// by [`to_nice`]); i.e. here the best priority maps to `NICE_MAX` so that
/// inversion lands it on `NICE_MIN`.
fn nice_formula(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let floor = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    let floor = if floor.is_finite() { floor } else { 1e-12 };
    let p_max = values.iter().copied().fold(floor, f64::max);
    let ln_ratio = 1.25f64.ln();
    // F(x) in "distance in nice steps below the best".
    let steps: Vec<f64> = values
        .iter()
        .map(|v| (p_max.ln() - v.max(floor).ln()) / ln_ratio)
        .collect();
    let spread = steps.iter().copied().fold(0.0, f64::max);
    let range = (NICE_MAX - NICE_MIN) as f64;
    if spread <= range {
        // Fits: best value at NICE_MAX (ascending-is-better orientation).
        steps.iter().map(|s| NICE_MAX as f64 - s).collect()
    } else {
        // Too wide for 40 nice levels: squeeze with min-max (paper §5.3).
        min_max(
            &steps.iter().map(|s| -s).collect::<Vec<_>>(),
            NICE_MIN as f64,
            NICE_MAX as f64,
        )
    }
}

/// Normalizes priorities to cgroup `cpu.shares` in `[lo, hi]`.
pub fn to_shares(values: &[f64], kind: PriorityKind, lo: u64, hi: u64) -> Vec<u64> {
    let normalized = match kind {
        PriorityKind::Linear => min_max_anchored(values, lo as f64, hi as f64),
        PriorityKind::Logarithmic => log_min_max(values, lo as f64, hi as f64),
    };
    normalized
        .into_iter()
        // Clamp in f64 before the cast, as in [`to_nice_in_range`]: a
        // non-finite normalized value saturates `as u64` (NaN to 0, +∞ to
        // u64::MAX) instead of landing in the share range.
        .map(|v| {
            let v = if v.is_nan() { (lo as f64 + hi as f64) / 2.0 } else { v };
            (v.round().clamp(lo as f64, hi as f64) as u64).clamp(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_basics() {
        assert_eq!(min_max(&[], 0.0, 1.0), Vec::<f64>::new());
        assert_eq!(min_max(&[5.0, 5.0], 0.0, 10.0), vec![5.0, 5.0]);
        assert_eq!(min_max(&[0.0, 5.0, 10.0], 0.0, 1.0), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn log_min_max_compresses_spread() {
        let out = log_min_max(&[1.0, 10.0, 100.0], 0.0, 2.0);
        assert!((out[0] - 0.0).abs() < 1e-9);
        assert!((out[1] - 1.0).abs() < 1e-9);
        assert!((out[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn log_min_max_handles_zeroes() {
        let out = log_min_max(&[0.0, 1.0, 10.0], 0.0, 1.0);
        // Zero clamps to the smallest positive value (1.0), landing both
        // at the bottom of the range.
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 1.0);
    }

    #[test]
    fn to_nice_highest_priority_gets_lowest_nice() {
        let nices = to_nice(&[1.0, 100.0, 50.0], PriorityKind::Linear);
        assert_eq!(nices[0], Nice::MAX);
        assert_eq!(nices[1], Nice::MIN);
        assert!(nices[2] > nices[1] && nices[2] < nices[0]);
    }

    #[test]
    fn to_nice_constant_priorities_are_all_equal() {
        // Zero-anchored: equal non-zero priorities all land on the same
        // (strongest) nice level — identical weights, identical schedule.
        let nices = to_nice(&[3.0, 3.0, 3.0], PriorityKind::Linear);
        assert!(nices.iter().all(|&n| n == nices[0]), "{nices:?}");
        // All-zero priorities map to the midpoint.
        let zeros = to_nice(&[0.0, 0.0], PriorityKind::Linear);
        assert!(zeros.iter().all(|n| n.value().abs() <= 1), "{zeros:?}");
    }

    #[test]
    fn anchored_min_max_keeps_similar_values_similar() {
        // Near-equal queue sizes must NOT be blown up to the full range.
        let out = min_max_anchored(&[100.0, 101.0, 99.0], -20.0, 19.0);
        let spread = out.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - out.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread < 1.0, "spread {spread}");
        // Negative values fall back to plain min-max.
        let neg = min_max_anchored(&[-1.0, 1.0], 0.0, 1.0);
        assert_eq!(neg, vec![0.0, 1.0]);
    }

    #[test]
    fn nice_formula_preserves_weight_ratios_when_in_range() {
        // Priorities with ratio 1.25 should land exactly one nice step
        // apart: p1/p2 = 1.25^(n2-n1) (paper §2).
        let nices = to_nice(&[1.25, 1.0], PriorityKind::Logarithmic);
        assert_eq!(
            nices[1].value() - nices[0].value(),
            1,
            "one 1.25x step = one nice level: {nices:?}"
        );
        // Best priority maps to the strongest nice.
        assert_eq!(nices[0], Nice::MIN);
    }

    #[test]
    fn nice_formula_squeezes_wide_spreads() {
        // Spread of 1e9 exceeds 40 steps: falls back to min-max, keeping
        // the full range covered.
        let nices = to_nice(&[1.0, 1e9], PriorityKind::Logarithmic);
        assert_eq!(nices[1], Nice::MIN);
        assert_eq!(nices[0], Nice::MAX);
    }

    #[test]
    fn nan_entries_map_to_midpoint() {
        // NaN must neither poison its own slot nor shift the others.
        let out = min_max(&[0.0, f64::NAN, 10.0], 0.0, 1.0);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
        let anchored = min_max_anchored(&[f64::NAN, 10.0], 0.0, 1.0);
        assert_eq!(anchored, vec![0.5, 1.0]);
        // End-to-end: the NaN operator gets middling shares, not the
        // starvation minimum that `NaN as u64 == 0` used to produce.
        let shares = to_shares(&[f64::NAN, 100.0, 50.0], PriorityKind::Linear, 2, 1024);
        assert!(shares[0] > 400 && shares[0] < 600, "{shares:?}");
        assert_eq!(shares[1], 1024);
        assert!(shares.iter().all(|&s| (2..=1024).contains(&s)));
    }

    #[test]
    fn non_finite_and_huge_priorities_stay_in_range() {
        // Slack deficits explode under overload; ±∞ shows up when a
        // metric source divides by zero. None of these may panic (the
        // old `v.round() as i32` saturated to i32::MAX and overflowed
        // `(lo + hi) - v` in debug builds) and every output must stay
        // inside the requested range.
        for kind in [PriorityKind::Linear, PriorityKind::Logarithmic] {
            for vals in [
                vec![f64::INFINITY, 1.0, 0.0],
                vec![f64::NEG_INFINITY, 1.0],
                vec![1e300, 1.0],
                vec![-1e300, 1e300],
                vec![f64::INFINITY, f64::NEG_INFINITY, f64::NAN],
            ] {
                let nices = to_nice_in_range(&vals, kind, -10, 5);
                assert_eq!(nices.len(), vals.len());
                for n in &nices {
                    assert!(
                        (-10..=5).contains(&n.value()),
                        "{kind:?} {vals:?} -> {nices:?}"
                    );
                }
                let shares = to_shares(&vals, kind, 2, 1024);
                assert!(
                    shares.iter().all(|&s| (2..=1024).contains(&s)),
                    "{kind:?} {vals:?} -> {shares:?}"
                );
            }
        }
    }

    #[test]
    fn to_shares_spans_range() {
        let shares = to_shares(&[0.0, 50.0, 100.0], PriorityKind::Linear, 2, 1024);
        assert_eq!(shares[0], 2);
        assert_eq!(shares[2], 1024);
        assert!(shares[1] > 400 && shares[1] < 600);
    }
}
