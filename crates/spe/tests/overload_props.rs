//! Property-based tests of the overload-protection modes.
//!
//! * **Shed** drops whole tuples from queue heads, so operator state must
//!   stay exactly as if the survivors were the entire stream: a keyed
//!   tumbling window over the survivors must equal an offline replay of
//!   the same survivor sequence, and shed accounting must balance the
//!   source's emission counter tuple-for-tuple.
//! * **Backpressure** blocks producers on bounded queues; on a diamond
//!   graph (fan-out feeding a shared merge) that must never deadlock: the
//!   query keeps making progress under sustained overload and drains
//!   completely once the source stops.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use simos::{Kernel, SimDuration, SimTime};
use spe::{
    deploy, Consume, CostModel, Emitter, EngineConfig, LogicalGraph, MeanAggregator,
    OperatorLogic, OverloadMode, Partitioning, PassThrough, Placement, Role, Tuple,
    TumblingWindow, Value,
};

fn overloaded_config(overload: OverloadMode, cap: usize, seed: u64) -> EngineConfig {
    let mut config = EngineConfig::storm();
    config.seed = seed;
    config.queue_capacity = Some(cap);
    config.overload = overload;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Survivor correctness under shedding: whatever subset of the input
    /// reaches the window operator, its keyed tumbling aggregation must
    /// match an offline replay of exactly that subset — head drops must
    /// not corrupt window state, mis-bucket tuples or split batches.
    /// Shed accounting must also balance: every tuple the source emitted
    /// was either processed by the ingress operator or counted shed.
    #[test]
    fn shed_preserves_window_correctness_for_survivors(
        rate in 2_000.0f64..8_000.0,
        win_cost_us in 100u64..400,
        cap in 4usize..32,
        keys in 1u64..4,
        window_ms in 20u64..200,
        seed in 1u64..1_000,
    ) {
        let inputs: Rc<RefCell<Vec<Tuple>>> = Rc::new(RefCell::new(Vec::new()));
        let outputs: Rc<RefCell<Vec<Tuple>>> = Rc::new(RefCell::new(Vec::new()));
        let window = SimDuration::from_millis(window_ms);

        let mut b = LogicalGraph::builder("shed-prop");
        let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
            Box::new(PassThrough)
        });
        let win = {
            let inputs = Rc::clone(&inputs);
            let outputs = Rc::clone(&outputs);
            b.op("win", Role::Transform, CostModel::micros(win_cost_us), 1, move || {
                let mut w = TumblingWindow::new(window, || MeanAggregator::new(0));
                let inputs = Rc::clone(&inputs);
                let outputs = Rc::clone(&outputs);
                Box::new(move |t: &Tuple, out: &mut Emitter| {
                    inputs.borrow_mut().push(t.clone());
                    let mut local = Emitter::new(out.now());
                    w.process(t, &mut local);
                    for (_, o) in local.into_outputs() {
                        outputs.borrow_mut().push(o.clone());
                        out.emit(o);
                    }
                })
            })
        };
        let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
            Box::new(Consume)
        });
        b.edge(src, win, Partitioning::Forward);
        b.edge(win, sink, Partitioning::Forward);
        b.source("gen", src, rate, move |s, now| {
            Tuple::new(now, s % keys, vec![Value::F((s % 17) as f64)])
        });
        let graph = b.build().unwrap();

        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1); // 1 CPU, so high rates overload
        let q = deploy(
            &mut kernel,
            graph,
            overloaded_config(OverloadMode::Shed, cap, seed),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(2));
        for s in q.sources() {
            s.borrow_mut().set_rate(0.0);
        }
        kernel.run_for(SimDuration::from_secs(1)); // drain bounded queues
        prop_assert_eq!(q.queue_sizes().iter().copied().sum::<usize>(), 0);

        // Offline replay of the survivors through a fresh window.
        let mut reference = TumblingWindow::new(window, || MeanAggregator::new(0));
        let mut expected = Vec::new();
        for t in inputs.borrow().iter() {
            let mut out = Emitter::new(SimTime::ZERO);
            reference.process(t, &mut out);
            expected.extend(out.into_outputs().into_iter().map(|(_, t)| t));
        }
        let got = outputs.borrow();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.key, e.key);
            prop_assert_eq!(&g.values, &e.values);
        }

        // Tuple-boundary accounting at quiescence: emitted = processed +
        // shed, per queue along the chain.
        let shed = q.shed_by_op();
        prop_assert_eq!(
            q.source_emitted(),
            q.ingress_total() + shed[0],
            "source -> ingress balance (shed by op: {:?})",
            shed
        );
        prop_assert_eq!(
            u64::try_from(inputs.borrow().len()).unwrap() + shed[1],
            q.ingress_total(),
            "ingress -> window balance"
        );
    }

    /// Liveness under backpressure: a diamond (src fans out to two
    /// branches that merge again) with small bounded queues and a 1-CPU
    /// node must keep making progress under sustained overload — no
    /// producer/consumer cycle may deadlock — and must drain to empty
    /// queues with exact tuple accounting once the source stops.
    #[test]
    fn backpressure_never_deadlocks_a_diamond(
        rate in 1_000.0f64..6_000.0,
        cost_a_us in 20u64..300,
        cost_b_us in 20u64..300,
        cap in 2usize..16,
        seed in 1u64..1_000,
    ) {
        let mut b = LogicalGraph::builder("diamond-prop");
        let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
            Box::new(PassThrough)
        });
        let a = b.op("a", Role::Transform, CostModel::micros(cost_a_us), 1, || {
            Box::new(PassThrough)
        });
        let bb = b.op("b", Role::Transform, CostModel::micros(cost_b_us), 1, || {
            Box::new(PassThrough)
        });
        let merge = b.op("merge", Role::Egress, CostModel::micros(30), 1, || {
            Box::new(Consume)
        });
        b.edge(src, a, Partitioning::Forward);
        b.edge(src, bb, Partitioning::Forward);
        b.edge(a, merge, Partitioning::Forward);
        b.edge(bb, merge, Partitioning::Forward);
        b.source("gen", src, rate, |s, now| Tuple::new(now, s, vec![]));
        let graph = b.build().unwrap();

        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = deploy(
            &mut kernel,
            graph,
            overloaded_config(OverloadMode::Backpressure, cap, seed),
            &Placement::single(node),
            None,
        )
        .unwrap();

        // Progress must continue across consecutive windows.
        kernel.run_for(SimDuration::from_secs(1));
        let egress_1 = q.egress_total();
        prop_assert!(egress_1 > 0, "no progress in the first second");
        kernel.run_for(SimDuration::from_secs(1));
        let egress_2 = q.egress_total();
        prop_assert!(egress_2 > egress_1, "progress stalled: {} -> {}", egress_1, egress_2);

        // Stop the source; bounded queues must drain completely. The
        // drain window covers the worst case: two seconds of accumulated
        // source deficit (throttled demand is emitted as room appears,
        // even after the rate drops to zero) replayed at the ~1.5 kt/s
        // the 1-CPU chain can sustain.
        for s in q.sources() {
            s.borrow_mut().set_rate(0.0);
        }
        kernel.run_for(SimDuration::from_secs(15));
        prop_assert_eq!(q.queue_sizes().iter().copied().sum::<usize>(), 0);
        prop_assert_eq!(q.total_shed(), 0, "backpressure never sheds");
        prop_assert_eq!(q.source_emitted(), q.ingress_total(), "nothing lost at the ingress");
        // The fan-out duplicates every src output down both branches.
        prop_assert_eq!(q.egress_total(), 2 * q.ingress_total());
    }
}
