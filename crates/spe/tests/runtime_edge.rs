//! Edge-case tests of the engine runtimes: chaining, backpressure under
//! multiple producers, cross-node flow control, and worker-pool guards.

use simos::{Kernel, SimDuration};
use spe::{
    deploy, Consume, CostModel, EngineConfig, Execution, LogicalGraph, Partitioning, PassThrough,
    Placement, Role, RoundRobinScheduler, Tuple,
};

fn pipeline(rate: f64, ops: usize, cost_us: u64) -> LogicalGraph {
    let mut b = LogicalGraph::builder("edge");
    let mut prev = None;
    for i in 0..ops {
        let role = if i == 0 {
            Role::Ingress
        } else if i == ops - 1 {
            Role::Egress
        } else {
            Role::Transform
        };
        let id = if role == Role::Egress {
            b.op(&format!("op{i}"), role, CostModel::micros(cost_us), 1, || {
                Box::new(Consume)
            })
        } else {
            b.op(&format!("op{i}"), role, CostModel::micros(cost_us), 1, || {
                Box::new(PassThrough)
            })
        };
        if let Some(p) = prev {
            b.edge(p, id, Partitioning::Forward);
        }
        prev = Some(id);
    }
    b.source("gen", 0, rate, |seq, now| Tuple::new(now, seq, vec![]));
    b.build().unwrap()
}

/// Flink chaining fuses the whole linear pipeline into one physical
/// operator (minus the ingress-fusion restriction) and the query still
/// computes the same result.
#[test]
fn chaining_end_to_end_matches_unchained() {
    let run = |chaining: bool| -> (usize, u64) {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let config = EngineConfig {
            chaining,
            ..EngineConfig::flink()
        };
        let q = deploy(
            &mut kernel,
            pipeline(800.0, 5, 40),
            config,
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(10));
        (q.op_count(), q.egress_total())
    };
    let (plain_ops, plain_egress) = run(false);
    let (chained_ops, chained_egress) = run(true);
    assert_eq!(plain_ops, 5);
    assert_eq!(
        chained_ops, 1,
        "the whole linear pipeline fuses (Flink chains sources too)"
    );
    // Same tuples delivered (modulo a few in flight at cutoff).
    assert!(
        (plain_egress as i64 - chained_egress as i64).abs() < 50,
        "{plain_egress} vs {chained_egress}"
    );
}

/// Two producers shuffling into one bounded consumer queue must both stall
/// on overload and both resume — no lost wakeups, no deadlock.
#[test]
fn bounded_queue_with_multiple_producers() {
    let mut b = LogicalGraph::builder("mp");
    let s1 = b.op("src1", Role::Ingress, CostModel::micros(10), 1, || {
        Box::new(PassThrough)
    });
    let s2 = b.op("src2", Role::Ingress, CostModel::micros(10), 1, || {
        Box::new(PassThrough)
    });
    // A slow shared consumer: the bottleneck.
    let slow = b.op("slow", Role::Transform, CostModel::micros(900), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(5), 1, || {
        Box::new(Consume)
    });
    b.edge(s1, slow, Partitioning::Shuffle);
    b.edge(s2, slow, Partitioning::Shuffle);
    b.edge(slow, sink, Partitioning::Forward);
    b.source("g1", s1, 1_000.0, |seq, now| Tuple::new(now, seq, vec![]));
    b.source("g2", s2, 1_000.0, |seq, now| Tuple::new(now, seq * 7 + 3, vec![]));
    let graph = b.build().unwrap();

    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 4);
    let q = deploy(
        &mut kernel,
        graph,
        EngineConfig::flink(),
        &Placement::single(node),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(10));
    // The slow op caps at ~1100 t/s; its bounded queue stalls both
    // sources, which must still make roughly equal progress.
    let in1 = q.cell(0).tuples_out();
    let in2 = q.cell(1).tuples_out();
    assert!(in1 > 4_000 && in2 > 4_000, "both flow: {in1} {in2}");
    assert!(
        (in1 as f64 / in2 as f64 - 1.0).abs() < 0.2,
        "balanced stalls: {in1} vs {in2}"
    );
    // Sink keeps receiving until the end (no deadlock).
    assert!(q.egress_total() > 9_000, "{}", q.egress_total());
    // And the slow op's queue respects its bound.
    assert!(q.queue_sizes()[2] <= 128);
}

/// Cross-node bounded edges use the reserve/deliver path; backpressure
/// still holds across the network.
#[test]
fn cross_node_backpressure_respects_capacity() {
    let mut b = LogicalGraph::builder("xnode");
    let src = b.op("src", Role::Ingress, CostModel::micros(10), 2, || {
        Box::new(PassThrough)
    });
    let slow = b.op("slow", Role::Transform, CostModel::micros(700), 2, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(5), 2, || {
        Box::new(Consume)
    });
    // Shuffle => half the traffic crosses nodes.
    b.edge(src, slow, Partitioning::Shuffle);
    b.edge(slow, sink, Partitioning::Shuffle);
    b.source("g", src, 4_000.0, |seq, now| Tuple::new(now, seq, vec![]));
    let graph = b.build().unwrap();

    let mut kernel = Kernel::default();
    let n0 = kernel.add_node("n0", 4);
    let n1 = kernel.add_node("n1", 4);
    let q = deploy(
        &mut kernel,
        graph,
        EngineConfig::flink(),
        &Placement::spread(vec![n0, n1]),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(10));
    for (i, len) in q.queue_sizes().iter().enumerate() {
        if !q.cell(i).is_ingress() {
            assert!(*len <= 128, "queue {i} has {len} > capacity");
        }
    }
    assert!(q.egress_total() > 20_000, "{}", q.egress_total());
}

/// Worker pools reject multi-node placements and bounded queues (both
/// deadlock-prone), with descriptive errors.
#[test]
fn worker_pool_guards() {
    let mut kernel = Kernel::default();
    let n0 = kernel.add_node("n0", 2);
    let n1 = kernel.add_node("n1", 2);
    let pool = || Execution::WorkerPool {
        workers: 2,
        scheduler: Box::new(RoundRobinScheduler::new(4)),
        pick_cost: SimDuration::ZERO,
    };
    let err = deploy(
        &mut kernel,
        pipeline(100.0, 3, 10),
        EngineConfig {
            execution: pool(),
            ..EngineConfig::liebre()
        },
        &Placement::spread(vec![n0, n1]),
        None,
    )
    .unwrap_err();
    assert!(err.contains("single-node"), "{err}");

    let err = deploy(
        &mut kernel,
        pipeline(100.0, 3, 10),
        EngineConfig {
            execution: pool(),
            ..EngineConfig::flink()
        },
        &Placement::single(n0),
        None,
    )
    .unwrap_err();
    assert!(err.contains("unbounded"), "{err}");
}

/// Spout flow control keeps total internal backlog near the configured cap
/// even under extreme overload.
#[test]
fn pending_cap_bounds_internal_backlog() {
    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 2);
    let config = EngineConfig {
        max_pending: Some(1_000),
        ..EngineConfig::storm()
    };
    let q = deploy(
        &mut kernel,
        pipeline(20_000.0, 4, 300),
        config,
        &Placement::single(node),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(10));
    let internal: usize = q
        .queue_sizes()
        .iter()
        .enumerate()
        .filter(|(i, _)| !q.cell(*i).is_ingress())
        .map(|(_, s)| *s)
        .sum();
    assert!(
        internal <= 1_200,
        "internal backlog {internal} far above the 1000 cap"
    );
    // The source buffer (ingress queue) absorbs the overload instead.
    assert!(q.queue_sizes()[0] > 50_000);
}

/// Deterministic replay at the whole-engine level: identical deployments
/// produce byte-identical statistics.
#[test]
fn engine_is_deterministic() {
    let run = || -> (u64, u64, u64) {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 3);
        let q = deploy(
            &mut kernel,
            pipeline(3_000.0, 6, 120),
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(7));
        (
            q.ingress_total(),
            q.egress_total(),
            kernel.node_stats(node).unwrap().ctx_switches,
        )
    };
    assert_eq!(run(), run());
}
