//! Batch-vs-scalar equivalence properties.
//!
//! The chunked batch path in `OpCell::begin` is an optimization, not a
//! semantic: any query must produce *identical* results whether tuples are
//! drained one at a time (`batch_max = 1`) or in chunks. These properties
//! run randomized operator DAGs — maps, filters, tumbling windows and
//! interval joins, under every overload mode (unbounded Storm queues,
//! shedding, backpressure) — once per `batch_max ∈ {1, 4, 64, 256}` and
//! require byte-identical sink outputs (values *and* per-tuple event/
//! ingress timestamps), per-operator counters, shed accounting and source
//! throttle totals. A deterministic companion test overloads an unbounded
//! queue so the chunk path provably engages (realized batch size > 1) and
//! still matches the scalar run.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use simos::{Kernel, SimDuration, SimTime};
use spe::{
    deploy, Consume, CostModel, Emitter, EngineConfig, IntervalJoin, JoinSide, LogicalGraph,
    MeanAggregator, OverloadMode, Partitioning, PassThrough, Placement, Role, Tuple,
    TumblingWindow, Value,
};

/// One captured sink arrival: key, payload, event time, ingress time.
type SinkRecord = (u64, Vec<Value>, SimTime, SimTime);

/// Everything observable about a finished run, for exact comparison.
#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    /// Sink capture: key, payload, event time, ingress time — in arrival
    /// order.
    sink: Vec<SinkRecord>,
    /// Per-cell `tuples_in` along the physical graph.
    tuples_in: Vec<u64>,
    /// Per-cell `tuples_out`.
    tuples_out: Vec<u64>,
    /// Per-op shed counts.
    shed_by_op: Vec<u64>,
    total_shed: u64,
    /// Source-side totals: emitted and throttled-away tuples.
    emitted: u64,
    throttled: u64,
}

/// Chain-op selectors drawn by proptest.
const OP_MAP: u8 = 0;
const OP_FILTER: u8 = 1;
const OP_WINDOW: u8 = 2;
const OP_JOIN: u8 = 3;

struct Params {
    rate: f64,
    cost_us: u64,
    ops: Vec<u8>,
    keys: u64,
    window_ms: u64,
    mode: u8,
    cap: usize,
    seed: u64,
}

/// Builds the randomized chain, deploys it with the given `batch_max`,
/// runs it to quiescence and snapshots every observable total.
fn run_once(p: &Params, batch_max: usize) -> Snapshot {
    let captured: Rc<RefCell<Vec<SinkRecord>>> = Rc::new(RefCell::new(Vec::new()));

    let mut b = LogicalGraph::builder("batch-eq");
    let src = b.op("src", Role::Ingress, CostModel::micros(15), 1, || {
        Box::new(PassThrough)
    });
    let mut prev = src;
    for (i, &op) in p.ops.iter().enumerate() {
        let window = SimDuration::from_millis(p.window_ms);
        let cost = CostModel::micros(p.cost_us);
        let next = match op {
            OP_MAP => b.op(&format!("map{i}"), Role::Transform, cost, 1, || {
                Box::new(|t: &Tuple, out: &mut Emitter| {
                    let v = t.values[0].as_f64();
                    out.emit(t.derive(t.key, vec![Value::F(v * 1.5 + 1.0)]));
                })
            }),
            OP_FILTER => b.op(&format!("filter{i}"), Role::Transform, cost, 1, || {
                Box::new(|t: &Tuple, out: &mut Emitter| {
                    if (t.values[0].as_f64() as i64) % 3 != 0 {
                        out.emit(t.clone());
                    }
                })
            }),
            OP_WINDOW => b.op(&format!("win{i}"), Role::Transform, cost, 1, move || {
                Box::new(TumblingWindow::new(window, || MeanAggregator::new(0)))
            }),
            OP_JOIN => b.op(&format!("join{i}"), Role::Transform, cost, 1, move || {
                // Side keyed on the integerized payload's parity; joined
                // pairs carry both contributing payloads.
                Box::new(IntervalJoin::new(
                    window,
                    |t: &Tuple| {
                        if (t.values[0].as_f64() as i64) % 2 == 0 {
                            JoinSide::Left
                        } else {
                            JoinSide::Right
                        }
                    },
                    |l: &Tuple, r: &Tuple| {
                        l.derive(l.key, vec![l.values[0].clone(), r.values[0].clone()])
                    },
                ))
            }),
            _ => unreachable!("op selector out of range"),
        };
        b.edge(prev, next, Partitioning::Forward);
        prev = next;
    }
    let sink = {
        let captured = Rc::clone(&captured);
        b.op("sink", Role::Egress, CostModel::micros(10), 1, move || {
            let captured = Rc::clone(&captured);
            Box::new(move |t: &Tuple, _out: &mut Emitter| {
                captured.borrow_mut().push((
                    t.key,
                    t.values.clone(),
                    t.event_time,
                    t.ingress_time,
                ));
            })
        })
    };
    b.edge(prev, sink, Partitioning::Forward);
    let keys = p.keys;
    b.source("gen", src, p.rate, move |s, now| {
        Tuple::new(now, s % keys, vec![Value::F((s % 17) as f64)])
    });
    let graph = b.build().unwrap();

    let mut config = EngineConfig::storm();
    config.seed = p.seed;
    config.batch_max = batch_max;
    match p.mode {
        0 => {} // unbounded Storm queues: the chunk path's home turf
        1 => {
            config.queue_capacity = Some(p.cap);
            config.overload = OverloadMode::Shed;
        }
        _ => {
            config.queue_capacity = Some(p.cap);
            config.overload = OverloadMode::Backpressure;
        }
    }

    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 1); // 1 CPU: contention builds queues
    let q = deploy(&mut kernel, graph, config, &Placement::single(node), None).unwrap();
    kernel.run_for(SimDuration::from_secs(2));
    for s in q.sources() {
        s.borrow_mut().set_rate(0.0);
    }
    // Drain: long enough for backpressure's throttled-demand replay.
    kernel.run_for(SimDuration::from_secs(15));

    let throttled = q.sources().iter().map(|s| s.borrow().throttled()).sum();
    let sink = captured.borrow().clone();
    Snapshot {
        sink,
        tuples_in: q.cells().iter().map(|c| c.tuples_in()).collect(),
        tuples_out: q.cells().iter().map(|c| c.tuples_out()).collect(),
        shed_by_op: q.shed_by_op(),
        total_shed: q.total_shed(),
        emitted: q.source_emitted(),
        throttled,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chunked draining must be unobservable: for random chains of
    /// map/filter/window/join under every overload mode, every chunk size
    /// reproduces the scalar run exactly — sink payloads and timestamps,
    /// per-operator tuple counters, shed counts and throttle totals.
    #[test]
    fn batching_is_unobservable(
        rate in 1_000.0f64..6_000.0,
        cost_us in 30u64..300,
        ops in proptest::collection::vec(0u8..4, 1..4),
        keys in 1u64..4,
        window_ms in 20u64..200,
        mode in 0u8..3,
        cap in 4usize..32,
        seed in 1u64..1_000,
    ) {
        let p = Params { rate, cost_us, ops, keys, window_ms, mode, cap, seed };
        let scalar = run_once(&p, 1);
        // A no-op pipeline makes the property vacuous; the generator
        // parameters above always produce at least source traffic.
        prop_assert!(scalar.emitted > 0);
        for batch_max in [4usize, 64, 256] {
            let batched = run_once(&p, batch_max);
            prop_assert_eq!(
                &scalar, &batched,
                "batch_max={} diverged from scalar run", batch_max
            );
        }
    }
}

/// The equivalence property is only meaningful if the chunk path actually
/// runs. This pins a workload where it provably engages: an unbounded
/// queue ahead of an operator too slow for the offered rate grows without
/// bound, so `chunk_ready` holds on nearly every wake — and the results
/// must still match the scalar run exactly.
#[test]
fn batching_engages_under_backlog_and_matches_scalar() {
    let p = Params {
        rate: 4_000.0,
        cost_us: 400, // service rate ~2.4k t/s < offered 4k t/s: backlog
        ops: vec![OP_MAP],
        keys: 3,
        window_ms: 50,
        mode: 0, // unbounded
        cap: 0,
        seed: 7,
    };
    let scalar = run_once(&p, 1);
    let batched = run_once(&p, 64);
    assert_eq!(scalar, batched);

    // Re-run the batched configuration to inspect realized batch sizes
    // (Snapshot deliberately excludes `batches`, which legitimately
    // differs between chunked and scalar runs).
    let mut b = LogicalGraph::builder("batch-engage");
    let src = b.op("src", Role::Ingress, CostModel::micros(15), 1, || {
        Box::new(PassThrough)
    });
    let slow = b.op("slow", Role::Transform, CostModel::micros(400), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(10), 1, || {
        Box::new(Consume)
    });
    b.edge(src, slow, Partitioning::Forward);
    b.edge(slow, sink, Partitioning::Forward);
    b.source("gen", src, 4_000.0, |s, now| {
        Tuple::new(now, s, vec![Value::F((s % 17) as f64)])
    });
    let graph = b.build().unwrap();
    let mut config = EngineConfig::storm();
    config.batch_max = 64;
    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 1);
    let q = deploy(&mut kernel, graph, config, &Placement::single(node), None).unwrap();
    kernel.run_for(SimDuration::from_secs(2));
    let slow_cell = &q.cells()[1];
    let (tuples, batches) = (slow_cell.tuples_in(), slow_cell.batches());
    assert!(tuples > 0 && batches > 0);
    let avg = tuples as f64 / batches as f64;
    assert!(
        avg > 1.5,
        "chunk path never engaged: {tuples} tuples in {batches} begins (avg {avg:.2})"
    );
}
