//! End-to-end tests of the SPE engines on the simulated OS.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis_metrics::{names, TimeSeriesStore};
use simos::{Kernel, SimDuration};
use spe::{
    deploy, metric_path, Consume, CostModel, EngineConfig, Execution, LogicalGraph, Partitioning,
    PassThrough, Placement, Role, RoundRobinScheduler, RunningQuery, SpeKind, Tuple,
};

/// A 4-operator pipeline: ingress -> a -> b -> sink, with uniform cost.
fn pipeline(rate: f64, cost_us: u64) -> LogicalGraph {
    let mut b = LogicalGraph::builder("pipe");
    let src = b.op("src", Role::Ingress, CostModel::micros(cost_us), 1, || {
        Box::new(PassThrough)
    });
    let a = b.op("a", Role::Transform, CostModel::micros(cost_us), 1, || {
        Box::new(PassThrough)
    });
    let bb = b.op("b", Role::Transform, CostModel::micros(cost_us), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(cost_us), 1, || {
        Box::new(Consume)
    });
    b.edge(src, a, Partitioning::Forward);
    b.edge(a, bb, Partitioning::Forward);
    b.edge(bb, sink, Partitioning::Forward);
    b.source("gen", src, rate, |seq, now| Tuple::new(now, seq, vec![]));
    b.build().unwrap()
}

fn run(config: EngineConfig, rate: f64, cost_us: u64, secs: u64) -> (Kernel, RunningQuery) {
    let mut kernel = Kernel::default();
    let node = kernel.add_node("odroid", 4);
    let q = deploy(
        &mut kernel,
        pipeline(rate, cost_us),
        config,
        &Placement::single(node),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(secs));
    (kernel, q)
}

#[test]
fn underloaded_pipeline_keeps_up() {
    // 1000 t/s, 50us per op over 4 CPUs: ~5% load.
    let (_, q) = run(EngineConfig::storm(), 1000.0, 50, 10);
    let ingested = q.ingress_total();
    assert!((9_800..=10_100).contains(&ingested), "ingested {ingested}");
    // Nearly everything ingested reaches the sink (a few tuples may be
    // queued or in flight at the end of the run).
    assert!(q.egress_total() + 20 >= q.ingress_total());
    // Latency well under 10ms when underloaded.
    let lat = q.latency_histogram().mean().unwrap();
    assert!(lat < 0.01, "latency {lat}");
}

#[test]
fn overloaded_storm_pipeline_grows_queues_unboundedly() {
    // One operator needs 1000us per tuple => capacity ~1000 t/s per op
    // (thread-per-op, each op its own core). Drive at 2000 t/s.
    let (_, q) = run(EngineConfig::storm(), 2000.0, 1000, 10);
    let sizes = q.queue_sizes();
    let total: usize = sizes.iter().sum();
    assert!(total > 5_000, "queues should explode, got {sizes:?}");
    // End-to-end latency reflects the unbounded ingress queue.
    let e2e = q.e2e_histogram().mean().unwrap();
    assert!(e2e > 0.5, "e2e latency should explode, got {e2e}");
}

#[test]
fn flink_backpressure_bounds_internal_queues() {
    let (_, q) = run(EngineConfig::flink(), 2000.0, 1000, 10);
    let sizes = q.queue_sizes();
    // Non-ingress queues are capped at 128.
    for (i, s) in sizes.iter().enumerate().skip(1) {
        assert!(*s <= 128, "queue {i} exceeded capacity: {s}");
    }
    // The ingress (source-side) queue absorbs the overload instead.
    assert!(sizes[0] > 2_000, "ingress queue should grow: {sizes:?}");
    // Processing latency stays bounded thanks to backpressure...
    let lat = q.latency_histogram().mean().unwrap();
    assert!(lat < 1.0, "processing latency bounded: {lat}");
    // ...while end-to-end latency explodes.
    let e2e = q.e2e_histogram().mean().unwrap();
    assert!(e2e > 1.0, "e2e latency explodes: {e2e}");
}

#[test]
fn saturated_throughput_approaches_bottleneck_capacity() {
    // 4 ops × 500us on 4 cores: per-op capacity 2000 t/s. Drive at 4000.
    let (_, q) = run(EngineConfig::storm(), 4000.0, 500, 10);
    let egress = q.egress_total();
    // Should process close to 2000 t/s * 10s (minus scheduling losses).
    assert!(
        (15_000..=20_500).contains(&egress),
        "egress {egress} not near saturation capacity"
    );
}

#[test]
fn fission_spreads_keyed_load() {
    let mut b = LogicalGraph::builder("fiss");
    let src = b.op("src", Role::Ingress, CostModel::micros(10), 1, || {
        Box::new(PassThrough)
    });
    let work = b.op("work", Role::Transform, CostModel::micros(10), 4, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(10), 1, || {
        Box::new(Consume)
    });
    b.edge(src, work, Partitioning::KeyHash);
    b.edge(work, sink, Partitioning::Shuffle);
    b.source("gen", src, 1000.0, |seq, now| Tuple::new(now, seq, vec![]));
    let graph = b.build().unwrap();

    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 4);
    let q = deploy(
        &mut kernel,
        graph,
        EngineConfig::storm(),
        &Placement::single(node),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(5));
    assert_eq!(q.op_count(), 6);
    // All four replicas of "work" processed something.
    let replicas = q.physical().physical_of(1).to_vec();
    for r in replicas {
        assert!(q.cell(r).tuples_in() > 200, "replica {r} starved");
    }
    assert!(q.egress_total() > 4_500);
}

#[test]
fn scale_out_crosses_nodes() {
    let mut b = LogicalGraph::builder("dist");
    let src = b.op("src", Role::Ingress, CostModel::micros(50), 2, || {
        Box::new(PassThrough)
    });
    let work = b.op("work", Role::Transform, CostModel::micros(50), 2, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(50), 2, || {
        Box::new(Consume)
    });
    b.edge(src, work, Partitioning::Shuffle);
    b.edge(work, sink, Partitioning::Shuffle);
    b.source("gen", src, 1000.0, |seq, now| Tuple::new(now, seq, vec![]));
    let graph = b.build().unwrap();

    let mut kernel = Kernel::default();
    let n0 = kernel.add_node("odroid0", 4);
    let n1 = kernel.add_node("odroid1", 4);
    let q = deploy(
        &mut kernel,
        graph,
        EngineConfig::storm(),
        &Placement::spread(vec![n0, n1]),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(5));
    // Replica 0 on n0, replica 1 on n1; shuffle sends tuples across.
    assert!(q.egress_total() > 4_000, "egress {}", q.egress_total());
    let lat = q.latency_histogram().mean().unwrap();
    // Network hops add latency but stay in the millisecond range.
    assert!(lat < 0.05, "latency {lat}");
}

#[test]
fn worker_pool_executes_query() {
    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 4);
    let config = EngineConfig {
        execution: Execution::WorkerPool {
            workers: 4,
            scheduler: Box::new(RoundRobinScheduler::new(16)),
            pick_cost: SimDuration::from_micros(2),
        },
        ..EngineConfig::liebre()
    };
    let q = deploy(
        &mut kernel,
        pipeline(1000.0, 50),
        config,
        &Placement::single(node),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(5));
    assert!(q.pool().is_some());
    let egress = q.egress_total();
    assert!((4_700..=5_100).contains(&egress), "egress {egress}");
}

#[test]
fn reporter_writes_exposed_metrics_only() {
    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 4);
    let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
    let q = deploy(
        &mut kernel,
        pipeline(500.0, 50),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(5));
    let store = store.borrow();
    // Storm exposes queue size but NOT cost/selectivity.
    let qs = store.latest(&metric_path(SpeKind::Storm, "pipe", 1, names::QUEUE_SIZE));
    assert!(qs.is_some());
    let cost = store.latest(&metric_path(SpeKind::Storm, "pipe", 1, names::COST));
    assert!(cost.is_none(), "storm must not expose op.cost directly");
    let tin = store
        .latest(&metric_path(SpeKind::Storm, "pipe", 0, names::TUPLES_IN))
        .unwrap()
        .1;
    assert!(tin > 1_000.0, "tuples_in metric: {tin}");
    let _ = q;
}

#[test]
fn reset_stats_discards_warmup() {
    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 4);
    let q = deploy(
        &mut kernel,
        pipeline(1000.0, 50),
        EngineConfig::storm(),
        &Placement::single(node),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(2));
    q.reset_stats();
    kernel.run_for(SimDuration::from_secs(3));
    let ingested = q.ingress_total();
    assert!(
        (2_800..=3_200).contains(&ingested),
        "post-reset count {ingested}"
    );
}
