//! Property-based tests of the logical→physical conversion and the
//! histogram used for latency reporting.

use proptest::prelude::*;
use spe::{
    CostModel, LogHistogram, LogicalGraph, Partitioning, PassThrough, PhysicalGraph, Role,
};

/// Builds a random layered DAG: `layers` layers of 1-3 operators with
/// random parallelism; edges connect consecutive layers.
fn arbitrary_graph(
    layer_sizes: Vec<usize>,
    parallelisms: Vec<usize>,
    partition_choices: Vec<u8>,
) -> LogicalGraph {
    let mut b = LogicalGraph::builder("prop");
    let mut layers: Vec<Vec<usize>> = Vec::new();
    let mut op_count = 0;
    for (li, &size) in layer_sizes.iter().enumerate() {
        let mut layer = Vec::new();
        for _ in 0..size.max(1) {
            let role = if li == 0 {
                Role::Ingress
            } else if li == layer_sizes.len() - 1 {
                Role::Egress
            } else {
                Role::Transform
            };
            let par = parallelisms
                .get(op_count % parallelisms.len().max(1))
                .copied()
                .unwrap_or(1)
                .clamp(1, 4);
            let id = b.op(
                &format!("op{op_count}"),
                role,
                CostModel::micros(10),
                par,
                || Box::new(PassThrough),
            );
            layer.push(id);
            op_count += 1;
        }
        layers.push(layer);
    }
    for w in layers.windows(2) {
        let (from_layer, to_layer) = (&w[0], &w[1]);
        for (i, &from) in from_layer.iter().enumerate() {
            let to = to_layer[i % to_layer.len()];
            let p = match partition_choices
                .get((from + to) % partition_choices.len().max(1))
                .copied()
                .unwrap_or(0)
                % 3
            {
                0 => Partitioning::Forward,
                1 => Partitioning::Shuffle,
                _ => Partitioning::KeyHash,
            };
            b.edge(from, to, p);
        }
    }
    b.build().expect("layered DAGs are acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every logical operator appears in at least one physical operator and
    /// the replica counts match the declared parallelism; edge targets are
    /// valid physical ids.
    #[test]
    fn physical_graph_covers_logical_graph(
        layer_sizes in proptest::collection::vec(1usize..=3, 2..=5),
        parallelisms in proptest::collection::vec(1usize..=4, 1..=5),
        partition_choices in proptest::collection::vec(0u8..3, 1..=5),
        chaining in proptest::bool::ANY,
    ) {
        let g = arbitrary_graph(layer_sizes, parallelisms.clone(), partition_choices);
        let pg = PhysicalGraph::build(&g, chaining);
        for (l, op) in g.ops.iter().enumerate() {
            let phys = pg.physical_of(l);
            prop_assert_eq!(
                phys.len(),
                op.parallelism,
                "logical {} has {} replicas, wanted {}",
                op.name, phys.len(), op.parallelism
            );
            for &p in phys {
                prop_assert!(pg.ops[p].chain.contains(&l));
            }
        }
        let total: usize = pg.ops.len();
        for spec in &pg.ops {
            prop_assert!(spec.id < total);
            for e in &spec.out_edges {
                for &t in &e.targets {
                    prop_assert!(t < total, "edge target {t} out of range");
                }
            }
        }
    }

    /// Chaining never changes the logical operator set and never produces
    /// MORE physical operators than the unchained deployment.
    #[test]
    fn chaining_only_fuses(
        layer_sizes in proptest::collection::vec(1usize..=3, 2..=5),
        parallelisms in proptest::collection::vec(1usize..=4, 1..=5),
    ) {
        let g1 = arbitrary_graph(layer_sizes.clone(), parallelisms.clone(), vec![0]);
        let g2 = arbitrary_graph(layer_sizes, parallelisms, vec![0]);
        let plain = PhysicalGraph::build(&g1, false);
        let chained = PhysicalGraph::build(&g2, true);
        prop_assert!(chained.ops.len() <= plain.ops.len());
        let logical_in_chains: usize = chained.ops.iter().map(|o| o.chain.len()).sum();
        let logical_in_plain: usize = plain.ops.iter().map(|o| o.chain.len()).sum();
        prop_assert_eq!(logical_in_chains, logical_in_plain);
    }

    /// Histogram quantiles are monotone in q and bounded by min/max.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples in proptest::collection::vec(1e-6f64..10.0, 1..500),
    ) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prop_assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
            prev = v;
        }
    }

    /// Bucket counts are a function of the sample *multiset*, not the
    /// sample *order*: recording any permutation of the same values yields
    /// identical buckets. The generated values deliberately include points
    /// sitting exactly on bucket edges (`1e-6 * 1.05^k`), where the retired
    /// powi-derived fast-path cache used to disagree with `bucket_index`.
    #[test]
    fn histogram_bucketing_is_permutation_invariant(
        raw in proptest::collection::vec(0f64..10.0, 1..300),
        edges in proptest::collection::vec(0i32..400, 0..100),
        swaps in proptest::collection::vec((0usize..1024, 0usize..1024), 0..200),
    ) {
        let mut samples = raw;
        samples.extend(edges.iter().map(|&k| 1e-6 * 1.05f64.powi(k)));
        let mut permuted = samples.clone();
        let n = permuted.len();
        for &(a, b) in &swaps {
            permuted.swap(a % n, b % n);
        }
        let mut in_order = LogHistogram::new();
        let mut shuffled = LogHistogram::new();
        for &s in &samples {
            in_order.record(s);
        }
        for &s in &permuted {
            shuffled.record(s);
        }
        prop_assert_eq!(in_order.count(), shuffled.count());
        prop_assert_eq!(in_order.bucket_counts(), shuffled.bucket_counts());
    }

    /// The histogram's quantile error stays within the bucket resolution.
    #[test]
    fn histogram_error_is_bounded(scale in 1e-4f64..1.0) {
        let mut h = LogHistogram::new();
        let n = 1_000;
        for i in 1..=n {
            h.record(i as f64 * scale / n as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let expect = 0.5 * scale;
        prop_assert!((p50 - expect).abs() / expect < 0.07, "p50={p50} expect={expect}");
    }
}
