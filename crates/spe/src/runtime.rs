//! Engine runtimes: deployment of a logical graph onto simulated nodes and
//! the public monitoring API Lachesis' drivers consume.
//!
//! Three engine personalities reproduce the paper's SPEs (§6.1):
//!
//! * [`EngineConfig::storm`] — thread-per-operator, **unbounded** queues;
//! * [`EngineConfig::flink`] — thread-per-operator, **bounded** queues with
//!   producer blocking (credit-based backpressure), optional chaining;
//! * [`EngineConfig::liebre`] — like Storm, plus blocking-I/O injection and
//!   first-class support for worker-pool execution (the UL-SS substrate).
//!
//! Each running query periodically reports its *exposed* raw metrics to a
//! Graphite-like store — and different SPEs expose different metric sets,
//! which is what forces Lachesis' metric provider to derive the rest
//! (paper Fig. 4).

use std::cell::RefCell;
use std::rc::Rc;

use lachesis_metrics::{names, MetricName, TimeSeriesStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simos::{Kernel, NodeId, SimDuration, ThreadId};

use crate::body::OpBody;
use crate::graph::{LogicalGraph, LogicalOpId};
use crate::opcell::{BacklogPenalty, BlockingSpec, OpCell, OpCellRef, OpCellSpec, OutEdge, Stage};
use crate::physical::{PhysOpId, PhysicalGraph};
use crate::pool::{PoolScheduler, PoolShared, WorkerBody};
use crate::queue::Queue;
use crate::sink::SinkCollector;
use crate::source::{install_source, SourceState};
use crate::stats::LogHistogram;

/// Which SPE personality a deployment emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeKind {
    /// Apache-Storm-like: unbounded queues, no intra-query backpressure.
    Storm,
    /// Apache-Flink-like: bounded queues, credit-based backpressure.
    Flink,
    /// Liebre-like: lightweight research SPE, UL-SS capable.
    Liebre,
}

impl SpeKind {
    /// Lower-case name used in metric paths.
    pub fn name(self) -> &'static str {
        match self {
            SpeKind::Storm => "storm",
            SpeKind::Flink => "flink",
            SpeKind::Liebre => "liebre",
        }
    }

    /// The raw metrics this SPE exposes through its public APIs.
    ///
    /// Storm and Flink expose counters and CPU time but not cost or
    /// selectivity (Lachesis derives them); Liebre exposes cost and
    /// selectivity directly but no CPU time — the Fig. 4 situation.
    pub fn exposed_metrics(self) -> &'static [MetricName] {
        match self {
            SpeKind::Storm => &[
                names::QUEUE_SIZE,
                names::HEAD_WAIT,
                names::TUPLES_IN,
                names::TUPLES_OUT,
                names::CPU_TIME,
            ],
            SpeKind::Flink => &[
                names::QUEUE_SIZE,
                names::TUPLES_IN,
                names::TUPLES_OUT,
                names::CPU_TIME,
            ],
            SpeKind::Liebre => &[
                names::QUEUE_SIZE,
                names::HEAD_WAIT,
                names::TUPLES_IN,
                names::TUPLES_OUT,
                names::COST,
                names::SELECTIVITY,
            ],
        }
    }
}

/// How operators are executed.
pub enum Execution {
    /// One dedicated kernel thread per physical operator (the default of
    /// Storm, Flink and Liebre).
    ThreadPerOp,
    /// A user-level streaming scheduler's worker pool (EdgeWise, Haren).
    WorkerPool {
        /// Number of worker threads (UL-SS typically use one per core).
        workers: usize,
        /// The scheduling strategy.
        scheduler: Box<dyn PoolScheduler>,
        /// CPU cost per scheduling decision.
        pick_cost: SimDuration,
    },
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Execution::ThreadPerOp => f.write_str("ThreadPerOp"),
            Execution::WorkerPool { workers, .. } => f
                .debug_struct("WorkerPool")
                .field("workers", workers)
                .finish_non_exhaustive(),
        }
    }
}

/// Per-deployment overload protection (robustness extension, not in the
/// paper): what a query does when demand exceeds what its operators can
/// drain. Requires bounded queues ([`EngineConfig::queue_capacity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadMode {
    /// Personality defaults: ingress queues stay unbounded (they model the
    /// external source buffer) and internal queues behave per `kind`.
    #[default]
    Disabled,
    /// Every queue — including ingress — is bounded and blocking; a full
    /// ingress queue throttles the data source, propagating backpressure
    /// all the way upstream. No tuple is ever dropped.
    Backpressure,
    /// Every queue is bounded and sheds from the head when full; producers
    /// (and sources) never block. Drops are counted per operator in the
    /// [`names::SHED`] metric.
    Shed,
}

/// Blocking-I/O injection over a random subset of operators (paper §6.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingConfig {
    /// Fraction of physical operators affected (e.g. 0.1).
    pub fraction: f64,
    /// Per-tuple blocking probability (e.g. 0.001).
    pub probability: f64,
    /// Maximum block duration (e.g. 200 ms).
    pub max_duration: SimDuration,
}

/// Full deployment configuration of one engine instance.
#[derive(Debug)]
pub struct EngineConfig {
    /// SPE personality.
    pub kind: SpeKind,
    /// Capacity of non-ingress queues (`None` = unbounded).
    pub queue_capacity: Option<usize>,
    /// Whether to fuse chainable operators.
    pub chaining: bool,
    /// Execution model.
    pub execution: Execution,
    /// Delay for tuple transfers between nodes.
    pub net_delay: SimDuration,
    /// Period of the metric reporter (Graphite resolution).
    pub report_period: SimDuration,
    /// Granularity of the data source pacer.
    pub source_tick: SimDuration,
    /// Optional blocking-I/O injection.
    pub blocking: Option<BlockingConfig>,
    /// Backlog-dependent operator slowdown (see [`BacklogPenalty`]).
    pub backlog_penalty: Option<BacklogPenalty>,
    /// Spout flow control: maximum total internal backlog (tuples) before
    /// ingress operators pause (Storm's `max.spout.pending` with acking).
    pub max_pending: Option<usize>,
    /// Overload protection mode (requires `queue_capacity` when enabled).
    pub overload: OverloadMode,
    /// Seed for deterministic per-deployment randomness.
    pub seed: u64,
    /// Largest chunk one scheduling quantum may drain from an operator's
    /// input queue (push-based batch execution). `1` forces the scalar
    /// tuple-at-a-time path everywhere; batching engages only where it is
    /// observationally exact, so any value yields identical results (see
    /// `OpCell::begin`). The `LACHESIS_BATCH_MAX` environment variable
    /// overrides the constructors' default, which CI uses to prove
    /// batched and scalar runs byte-identical.
    pub batch_max: usize,
}

/// Default chunk capacity for batched execution.
pub const DEFAULT_BATCH_MAX: usize = 64;

fn default_batch_max() -> usize {
    // CI's scalar-equivalence step relies on this variable being honored;
    // a silent fallback would run the batched path while claiming to
    // verify the scalar one, so anything unparseable is a hard error.
    match std::env::var("LACHESIS_BATCH_MAX") {
        Err(std::env::VarError::NotPresent) => DEFAULT_BATCH_MAX,
        Err(e) => panic!("invalid LACHESIS_BATCH_MAX: {e}"),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => 1, // explicit scalar, same as 1
            Ok(n) => n,
            Err(_) => panic!(
                "invalid LACHESIS_BATCH_MAX {v:?}: expected a non-negative integer"
            ),
        },
    }
}

impl EngineConfig {
    /// Storm-like defaults.
    pub fn storm() -> Self {
        EngineConfig {
            kind: SpeKind::Storm,
            queue_capacity: None,
            chaining: false,
            execution: Execution::ThreadPerOp,
            net_delay: SimDuration::from_micros(300),
            report_period: SimDuration::from_secs(1),
            source_tick: SimDuration::from_millis(1),
            blocking: None,
            backlog_penalty: None,
            max_pending: Some(4_000),
            overload: OverloadMode::Disabled,
            seed: 1,
            batch_max: default_batch_max(),
        }
    }

    /// Flink-like defaults (chaining disabled like the paper's §6.3 setup).
    /// Backpressure comes from bounded queues, not spout pending caps.
    pub fn flink() -> Self {
        EngineConfig {
            kind: SpeKind::Flink,
            queue_capacity: Some(128),
            max_pending: None,
            ..EngineConfig::storm()
        }
    }

    /// Liebre-like defaults: a research SPE without acking — no spout flow
    /// control, queues grow without bound under overload.
    pub fn liebre() -> Self {
        EngineConfig {
            kind: SpeKind::Liebre,
            max_pending: None,
            ..EngineConfig::storm()
        }
    }
}

/// Where physical operators run: replica `r` goes to `nodes[r % len]`.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Candidate nodes.
    pub nodes: Vec<NodeId>,
}

impl Placement {
    /// Places everything on one node.
    pub fn single(node: NodeId) -> Self {
        Placement { nodes: vec![node] }
    }

    /// Spreads replicas round-robin over several nodes (scale-out, §6.5).
    pub fn spread(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "placement needs at least one node");
        Placement { nodes }
    }

    fn node_for(&self, replica: usize) -> NodeId {
        self.nodes[replica % self.nodes.len()]
    }
}

struct QueryShared {
    name: String,
    kind: SpeKind,
    cells: Vec<OpCellRef>,
    phys: PhysicalGraph,
    logical_names: Vec<String>,
    sinks: Vec<(LogicalOpId, Rc<RefCell<SinkCollector>>)>,
    sources: Vec<Rc<RefCell<SourceState>>>,
    /// Grows when the restart supervisor re-deploys a crashed operator.
    threads: RefCell<Vec<ThreadId>>,
    pool: Option<Rc<PoolShared>>,
    /// Current overload mode (graceful degradation can flip it at runtime).
    overload: std::cell::Cell<OverloadMode>,
}

/// Handle to a deployed query: the "public monitoring API" of the SPE,
/// which Lachesis' drivers (and the experiment harness) read.
#[derive(Clone)]
pub struct RunningQuery {
    shared: Rc<QueryShared>,
}

impl std::fmt::Debug for RunningQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningQuery")
            .field("name", &self.shared.name)
            .field("kind", &self.shared.kind)
            .field("ops", &self.shared.cells.len())
            .finish_non_exhaustive()
    }
}

impl RunningQuery {
    /// The query's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The engine personality running the query.
    pub fn kind(&self) -> SpeKind {
        self.shared.kind
    }

    /// Number of physical operators.
    pub fn op_count(&self) -> usize {
        self.shared.cells.len()
    }

    /// The physical operator cells, indexed by [`PhysOpId`].
    pub fn cells(&self) -> &[OpCellRef] {
        &self.shared.cells
    }

    /// One physical operator cell.
    pub fn cell(&self, op: PhysOpId) -> &OpCellRef {
        &self.shared.cells[op]
    }

    /// The physical DAG (with the logical↔physical mapping).
    pub fn physical(&self) -> &PhysicalGraph {
        &self.shared.phys
    }

    /// Logical operator names, by [`LogicalOpId`].
    pub fn logical_names(&self) -> &[String] {
        &self.shared.logical_names
    }

    /// Threads executing the query: per-operator threads in
    /// thread-per-operator mode, worker threads in pool mode. Includes
    /// threads re-spawned by the restart supervisor after operator
    /// crashes (exited threads are not removed — consult
    /// [`OpCell::thread`](crate::OpCell::thread) for the live binding).
    pub fn threads(&self) -> Vec<ThreadId> {
        self.shared.threads.borrow().clone()
    }

    /// Registers a thread re-spawned for this query (restart supervisor).
    pub(crate) fn push_thread(&self, tid: ThreadId) {
        self.shared.threads.borrow_mut().push(tid);
    }

    /// Number of operators currently down (crashed, not restarted).
    pub fn crashed_ops(&self) -> usize {
        self.shared.cells.iter().filter(|c| c.is_crashed()).count()
    }

    /// Total injected operator crashes across the query.
    pub fn total_crashes(&self) -> u64 {
        self.shared.cells.iter().map(|c| c.crash_count()).sum()
    }

    /// Total successful operator restarts across the query.
    pub fn total_restarts(&self) -> u64 {
        self.shared.cells.iter().map(|c| c.restart_count()).sum()
    }

    /// The worker-pool state, if the query runs under a UL-SS.
    pub fn pool(&self) -> Option<&Rc<PoolShared>> {
        self.shared.pool.as_ref()
    }

    /// Egress latency collectors, one per logical egress operator.
    pub fn sinks(&self) -> &[(LogicalOpId, Rc<RefCell<SinkCollector>>)] {
        &self.shared.sinks
    }

    /// Data source states.
    pub fn sources(&self) -> &[Rc<RefCell<SourceState>>] {
        &self.shared.sources
    }

    /// Total tuples emitted by all data sources.
    pub fn source_emitted(&self) -> u64 {
        self.shared.sources.iter().map(|s| s.borrow().emitted()).sum()
    }

    /// Total tuples ingested by ingress operators — the paper's throughput
    /// numerator (§3.2).
    pub fn ingress_total(&self) -> u64 {
        self.shared
            .cells
            .iter()
            .filter(|c| c.is_ingress())
            .map(|c| c.tuples_in())
            .sum()
    }

    /// Total egress tuples over all sinks.
    pub fn egress_total(&self) -> u64 {
        self.shared.sinks.iter().map(|(_, s)| s.borrow().count()).sum()
    }

    /// Merged processing-latency distribution over all sinks.
    pub fn latency_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for (_, s) in &self.shared.sinks {
            h.merge(s.borrow().latency());
        }
        h
    }

    /// Merged end-to-end latency distribution over all sinks.
    pub fn e2e_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for (_, s) in &self.shared.sinks {
            h.merge(s.borrow().e2e());
        }
        h
    }

    /// Current input queue lengths by physical operator.
    pub fn queue_sizes(&self) -> Vec<usize> {
        self.shared.cells.iter().map(|c| c.in_queue().len()).collect()
    }

    /// The query's current overload mode.
    pub fn overload_mode(&self) -> OverloadMode {
        self.shared.overload.get()
    }

    /// Total tuples shed from input queues by overload protection.
    pub fn total_shed(&self) -> u64 {
        self.shared.cells.iter().map(|c| c.in_queue().shed()).sum()
    }

    /// Shed counts by physical operator.
    pub fn shed_by_op(&self) -> Vec<u64> {
        self.shared.cells.iter().map(|c| c.in_queue().shed()).collect()
    }

    /// Flips every input queue to the shed-from-head discipline (graceful
    /// degradation of a backpressured query under persistent starvation).
    /// Producers blocked on full queues are woken so they can retry —
    /// their pending push now sheds instead of stalling. No-op when the
    /// query has unbounded queues (nothing to flip) or already sheds.
    pub fn set_shed_mode(&self, kernel: &mut Kernel) {
        if self.shared.overload.get() == OverloadMode::Shed {
            return;
        }
        for c in &self.shared.cells {
            let q = c.in_queue();
            q.set_discipline(crate::queue::QueueDiscipline::Shed);
            kernel.wake(q.producer_wait());
        }
        self.shared.overload.set(OverloadMode::Shed);
    }

    /// Resets all statistics (operators, queues, sinks, sources) — called
    /// at the end of the warm-up phase.
    pub fn reset_stats(&self) {
        for c in &self.shared.cells {
            c.reset_stats();
        }
        for (_, s) in &self.shared.sinks {
            s.borrow_mut().reset();
        }
        for s in &self.shared.sources {
            s.borrow_mut().reset();
        }
    }
}

/// Deploys a logical graph onto the simulated cluster.
///
/// Returns the query handle; the query keeps running inside `kernel` until
/// the simulation ends (stream queries are continuous).
///
/// # Examples
///
/// ```
/// use simos::{Kernel, SimDuration};
/// use spe::{deploy, Consume, CostModel, EngineConfig, LogicalGraph, Partitioning,
///           PassThrough, Placement, Role, Tuple};
///
/// let mut b = LogicalGraph::builder("demo");
/// let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || Box::new(PassThrough));
/// let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || Box::new(Consume));
/// b.edge(src, sink, Partitioning::Forward);
/// b.source("gen", src, 500.0, |seq, now| Tuple::new(now, seq, vec![]));
///
/// let mut kernel = Kernel::default();
/// let node = kernel.add_node("edge", 2);
/// let query = deploy(&mut kernel, b.build()?, EngineConfig::storm(),
///                    &Placement::single(node), None)?;
/// kernel.run_for(SimDuration::from_secs(2));
/// assert!(query.egress_total() > 900);
/// # Ok::<(), String>(())
/// ```
///
/// # Errors
///
/// Returns a description of the problem for invalid graphs or unsupported
/// combinations (worker pools with multi-node placements).
///
/// # Panics
///
/// Panics if placement references nodes not present in `kernel`.
pub fn deploy(
    kernel: &mut Kernel,
    graph: LogicalGraph,
    config: EngineConfig,
    placement: &Placement,
    store: Option<Rc<RefCell<TimeSeriesStore>>>,
) -> Result<RunningQuery, String> {
    graph.validate()?;
    if config.overload != OverloadMode::Disabled && config.queue_capacity.is_none() {
        return Err("overload protection requires bounded queues (queue_capacity)".into());
    }
    if matches!(config.execution, Execution::WorkerPool { .. }) {
        if placement.nodes.len() > 1 {
            return Err("worker-pool execution requires a single-node placement".into());
        }
        if config.queue_capacity.is_some() && config.overload != OverloadMode::Shed {
            // A worker stalled on a full queue may be the only thread that
            // could drain it: guaranteed deadlock potential. Shedding
            // queues never stall producers, so they are safe in a pool.
            return Err("worker-pool execution requires unbounded or shedding queues".into());
        }
    }

    let phys = PhysicalGraph::build(&graph, config.chaining);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Blocking injection: sample the affected subset of physical operators.
    let blocking_of: Vec<Option<BlockingSpec>> = phys
        .ops
        .iter()
        .map(|_| {
            config.blocking.and_then(|bc| {
                rng.gen_bool(bc.fraction.clamp(0.0, 1.0)).then_some(BlockingSpec {
                    probability: bc.probability,
                    max_duration: bc.max_duration,
                })
            })
        })
        .collect();

    // Queues. With overload protection off, ingress queues are unbounded
    // (they model the source buffer); with it on, they are bounded too so
    // overload surfaces as source throttling (Backpressure) or head drops
    // (Shed) instead of an unbounded buffer.
    let queues: Vec<Queue> = phys
        .ops
        .iter()
        .map(|spec| {
            let node = placement.node_for(spec.replica);
            let cap = if spec.is_ingress && config.overload == OverloadMode::Disabled {
                None
            } else {
                config.queue_capacity
            };
            let q = Queue::new(
                kernel,
                &format!("{}.{}", graph.name, spec.name),
                node,
                cap,
            );
            if config.overload == OverloadMode::Shed {
                q.set_discipline(crate::queue::QueueDiscipline::Shed);
            }
            q
        })
        .collect();

    // Sink collectors, one per logical egress operator.
    let mut sinks: Vec<(LogicalOpId, Rc<RefCell<SinkCollector>>)> = Vec::new();
    let mut sink_of = |logical: LogicalOpId, name: &str| -> Rc<RefCell<SinkCollector>> {
        if let Some((_, s)) = sinks.iter().find(|(l, _)| *l == logical) {
            return Rc::clone(s);
        }
        let s = Rc::new(RefCell::new(SinkCollector::new(name)));
        sinks.push((logical, Rc::clone(&s)));
        s
    };

    // Operator cells.
    let cells: Vec<OpCellRef> = phys
        .ops
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let stages: Vec<Stage> = spec
                .chain
                .iter()
                .map(|&l| Stage {
                    logical: l,
                    name: graph.ops[l].name.clone(),
                    logic: (graph.ops[l].factory)(),
                    cost: graph.ops[l].cost,
                })
                .collect();
            let sink = spec
                .egress
                .map(|l| sink_of(l, &graph.ops[l].name));
            OpCell::new(
                OpCellSpec {
                    id: i,
                    name: spec.name.clone(),
                    query: graph.name.clone(),
                    node: placement.node_for(spec.replica),
                    is_ingress: spec.is_ingress,
                    in_queue: queues[i].clone(),
                    sink,
                    blocking: blocking_of[i],
                    backlog_penalty: config.backlog_penalty,
                    net_delay: config.net_delay,
                    seed: config.seed.wrapping_add(i as u64).wrapping_mul(0x9E37),
                    batch_max: config.batch_max,
                },
                stages,
            )
        })
        .collect();

    // Spout flow control: ingress ops pause while internal queues exceed
    // the pending cap. Every internal queue feeds one shared backlog
    // counter so the per-tuple spout check is O(1).
    if let Some(cap) = config.max_pending {
        let pending = Rc::new(std::cell::Cell::new(0u64));
        for (i, spec) in phys.ops.iter().enumerate() {
            if !spec.is_ingress {
                queues[i].track_backlog(Rc::clone(&pending));
            }
        }
        for (i, spec) in phys.ops.iter().enumerate() {
            if spec.is_ingress {
                cells[i].set_throttle(crate::opcell::Throttle {
                    pending: Rc::clone(&pending),
                    cap,
                });
            }
        }
    }

    // Wire output edges.
    for (i, spec) in phys.ops.iter().enumerate() {
        let edges: Vec<OutEdge> = spec
            .out_edges
            .iter()
            .map(|e| {
                OutEdge::new(
                    e.port,
                    e.partitioning,
                    e.targets.iter().map(|&t| queues[t].clone()).collect(),
                )
            })
            .collect();
        cells[i].set_out_edges(edges);
    }

    // Execution: threads or a worker pool.
    let mut threads = Vec::new();
    let mut pool_shared = None;
    match config.execution {
        Execution::ThreadPerOp => {
            // With a trace sink on the kernel at deploy time, operator
            // bodies emit batch lifecycle spans into the same stream as
            // the kernel's scheduling events.
            let trace = kernel.trace_sink().cloned();
            for (i, cell) in cells.iter().enumerate() {
                let node = placement.node_for(phys.ops[i].replica);
                let tid = kernel
                    .spawn(
                        node,
                        &format!("{}.{}", graph.name, phys.ops[i].name),
                        OpBody::traced(Rc::clone(cell), trace.clone()),
                    )
                    .build();
                cell.set_thread(tid);
                threads.push(tid);
            }
        }
        Execution::WorkerPool {
            workers,
            scheduler,
            pick_cost,
        } => {
            let node = placement.nodes[0];
            let pool_wait = kernel.new_wait_channel();
            for q in &queues {
                q.set_consumer_wait(pool_wait);
            }
            let pool = Rc::new(PoolShared {
                ops: cells.clone(),
                in_flight: RefCell::new(vec![false; cells.len()]),
                wait: pool_wait,
                scheduler: RefCell::new(scheduler),
                pick_cost,
                // The cache-reload part of a context switch, paid in user
                // space when a worker changes operator.
                op_switch_cost: SimDuration::from_micros(40),
            });
            for w in 0..workers.max(1) {
                let tid = kernel
                    .spawn(
                        node,
                        &format!("{}.worker{}", graph.name, w),
                        WorkerBody::new(Rc::clone(&pool), w),
                    )
                    .build();
                threads.push(tid);
            }
            pool_shared = Some(pool);
        }
    }

    // Data sources.
    let mut sources = Vec::new();
    for src in graph.sources {
        let targets: Vec<Queue> = phys
            .physical_of(src.target)
            .iter()
            .map(|&p| queues[p].clone())
            .collect();
        sources.push(install_source(
            kernel,
            &src.name,
            src.rate_tps,
            src.generator,
            targets,
            config.source_tick,
        ));
    }

    let shared = Rc::new(QueryShared {
        name: graph.name.clone(),
        kind: config.kind,
        cells,
        phys,
        logical_names: graph.ops.iter().map(|o| o.name.clone()).collect(),
        sinks,
        sources,
        threads: RefCell::new(threads),
        pool: pool_shared,
        overload: std::cell::Cell::new(config.overload),
    });

    // Metric reporter: writes the SPE's exposed metrics to the store.
    if let Some(store) = store {
        let shared_cb = Rc::clone(&shared);
        let period = config.report_period;
        kernel.schedule_periodic(period, period, move |k| {
            report_metrics(&shared_cb, &store, k);
        });
    }

    Ok(RunningQuery { shared })
}

/// Metric path for one operator metric: `{spe}.{query}.{op_id}.{metric}`.
pub fn metric_path(kind: SpeKind, query: &str, op: PhysOpId, metric: MetricName) -> String {
    format!("{}.{}.{}.{}", kind.name(), query, op, metric)
}

fn report_metrics(shared: &Rc<QueryShared>, store: &Rc<RefCell<TimeSeriesStore>>, k: &Kernel) {
    let now = k.now();
    let mut store = store.borrow_mut();
    let kind = shared.kind;
    for (i, cell) in shared.cells.iter().enumerate() {
        for &metric in kind.exposed_metrics() {
            // Ingress operators pull from the external Data Source (e.g. a
            // Kafka consumer); they have no SPE-visible input queue, so the
            // SPE reports zero for their queue metrics.
            let value = if metric == names::QUEUE_SIZE {
                Some(if cell.is_ingress() {
                    0.0
                } else {
                    cell.in_queue().len() as f64
                })
            } else if metric == names::HEAD_WAIT {
                Some(if cell.is_ingress() {
                    0.0
                } else {
                    cell.in_queue().head_age(now).unwrap_or(0.0)
                })
            } else if metric == names::TUPLES_IN {
                Some(cell.tuples_in() as f64)
            } else if metric == names::TUPLES_OUT {
                Some(cell.tuples_out() as f64)
            } else if metric == names::CPU_TIME {
                Some(cell.cpu_cost().as_secs_f64())
            } else if metric == names::COST {
                cell.avg_cost()
            } else if metric == names::SELECTIVITY {
                cell.avg_selectivity()
            } else {
                None
            };
            if let Some(v) = value {
                store.record(&metric_path(kind, &shared.name, i, metric), now, v);
            }
        }
        // Operator health is the simulator's own observability signal
        // (every real SPE exposes liveness through its supervisor API),
        // so it is reported for every engine personality.
        store.record(
            &metric_path(kind, &shared.name, i, names::HEALTH),
            now,
            if cell.is_crashed() { 0.0 } else { 1.0 },
        );
        // Same for shed counts: overload protection is a runtime feature
        // of this simulator, visible regardless of SPE personality.
        if shared.overload.get() == OverloadMode::Shed {
            store.record(
                &metric_path(kind, &shared.name, i, names::SHED),
                now,
                cell.in_queue().shed() as f64,
            );
        }
    }
    for (l, sink) in &shared.sinks {
        if let Some(mean) = sink.borrow().latency().mean() {
            store.record(
                &format!("{}.{}.sink{}.{}", kind.name(), shared.name, l, names::LATENCY),
                now,
                mean,
            );
        }
    }
}
