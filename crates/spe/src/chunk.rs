//! Chunked tuple buffers for push-based batch execution.
//!
//! A [`TupleChunk`] is a fixed-capacity, recycled run of input tuples
//! drained from an operator's queue in one lock ([`Queue::pop_chunk`]);
//! a [`ChunkEmitter`] collects the outputs of a whole chunk while
//! recording where each input tuple's outputs begin, so the engine can
//! replay delivery, cost accounting and tracing **per tuple** — batching
//! amortizes queue locks and dynamic dispatch without changing anything
//! an observer (metrics reporter, scheduler, latency histogram, Chrome
//! trace) can see.
//!
//! [`Queue::pop_chunk`]: crate::Queue::pop_chunk

use simos::SimTime;

use crate::operator::Emitter;
use crate::tuple::Tuple;

/// A fixed-capacity, recycled buffer of input tuples.
///
/// Each operator cell owns one chunk sized to its `batch_max`; the buffer
/// (and the tuples' backing storage freed on `clear`) is reused across
/// batches, so steady-state batch execution does not allocate.
#[derive(Debug, Default)]
pub struct TupleChunk {
    tuples: Vec<Tuple>,
    capacity: usize,
}

impl TupleChunk {
    /// Creates an empty chunk holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        TupleChunk {
            tuples: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of tuples the chunk accepts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tuples currently in the chunk.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the chunk holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in arrival order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterates over the tuples in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Empties the chunk for reuse, keeping its allocation.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }

    /// The backing buffer, for bulk refills ([`Queue::pop_chunk`] appends
    /// directly into it). Callers must not grow it past `capacity`.
    ///
    /// [`Queue::pop_chunk`]: crate::Queue::pop_chunk
    pub fn buf_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.tuples
    }
}

impl<'a> IntoIterator for &'a TupleChunk {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

/// Output collector for a whole chunk.
///
/// Wraps the scalar [`Emitter`] (so per-tuple logic runs unchanged inside
/// a batch) and records, for every input tuple, the offset at which its
/// outputs start — the engine slices the shared output buffer back into
/// per-tuple runs when it replays delivery and cost accounting at each
/// tuple's processing boundary.
#[derive(Debug)]
pub struct ChunkEmitter {
    em: Emitter,
    /// `bounds[i]` = offset into the output buffer where input `i`'s
    /// outputs begin. `bounds.len()` = tuples started so far.
    bounds: Vec<usize>,
}

impl ChunkEmitter {
    /// Creates a chunk emitter backed by recycled buffers (both cleared).
    /// `now` is the simulated instant the chunk was drained; see
    /// [`Emitter::now`] for the batch-mode caveat.
    pub fn with_buffers(now: SimTime, out_buf: Vec<(u16, Tuple)>, mut bounds: Vec<usize>) -> Self {
        bounds.clear();
        ChunkEmitter {
            em: Emitter::with_buffer(now, out_buf),
            bounds,
        }
    }

    /// Marks the start of the next input tuple's outputs. Vectorized
    /// [`process_batch`](crate::OperatorLogic::process_batch)
    /// implementations must call this once per input, in order, *before*
    /// emitting that input's outputs.
    pub fn start_tuple(&mut self) {
        self.bounds.push(self.em.emitted());
    }

    /// The scalar emitter for the tuple last started.
    pub fn emitter(&mut self) -> &mut Emitter {
        &mut self.em
    }

    /// Emits a tuple on port 0 (attributed to the input last started).
    pub fn emit(&mut self, tuple: Tuple) {
        self.em.emit(tuple);
    }

    /// Emits a tuple on the given port.
    pub fn emit_to(&mut self, port: u16, tuple: Tuple) {
        self.em.emit_to(port, tuple);
    }

    /// Number of inputs started so far.
    pub fn started(&self) -> usize {
        self.bounds.len()
    }

    /// Consumes the emitter, returning the shared output buffer and the
    /// per-input start offsets. Input `i`'s outputs are
    /// `outputs[bounds[i]..bounds.get(i + 1).unwrap_or(outputs.len())]`.
    pub fn into_parts(self) -> (Vec<(u16, Tuple)>, Vec<usize>) {
        (self.em.into_outputs(), self.bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(k: u64) -> Tuple {
        Tuple::new(SimTime::ZERO, k, vec![])
    }

    #[test]
    fn chunk_recycles_allocation() {
        let mut c = TupleChunk::new(4);
        assert_eq!(c.capacity(), 4);
        c.buf_mut().push(tup(1));
        c.buf_mut().push(tup(2));
        assert_eq!(c.len(), 2);
        let ptr = c.tuples().as_ptr();
        c.clear();
        assert!(c.is_empty());
        c.buf_mut().push(tup(3));
        assert_eq!(c.tuples().as_ptr(), ptr, "clear keeps the allocation");
    }

    #[test]
    fn emitter_records_per_tuple_bounds() {
        let mut e = ChunkEmitter::with_buffers(SimTime::ZERO, Vec::new(), vec![99]);
        e.start_tuple(); // input 0: two outputs
        e.emit(tup(10));
        e.emit_to(1, tup(11));
        e.start_tuple(); // input 1: none
        e.start_tuple(); // input 2: one
        e.emit(tup(12));
        assert_eq!(e.started(), 3);
        let (out, bounds) = e.into_parts();
        assert_eq!(bounds, vec![0, 2, 2]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].0, 1);
        assert_eq!(out[2].1.key, 12);
    }
}
