//! Lightweight streaming statistics: counters and a log-bucketed histogram
//! for latency distributions (averages, tail percentiles, letter values).

use simos::SimDuration;

/// Growth factor between histogram bucket boundaries (~5% resolution).
const BUCKET_GROWTH: f64 = 1.05;
/// Smallest resolvable value (1 microsecond, in seconds).
const BUCKET_MIN: f64 = 1e-6;
/// Largest recordable value (~31 years, in seconds). Samples above it —
/// including `+∞`, which faulty metric sources can produce — are clamped
/// so `bucket_index` stays bounded; `inf as usize` would otherwise yield
/// `usize::MAX` and abort the process in `buckets.resize`.
const BUCKET_CAP: f64 = 1e9;

/// A histogram with logarithmically spaced buckets, tuned for latencies in
/// seconds. Supports mean, min/max and arbitrary quantiles with ~5% relative
/// error — plenty for reproducing the paper's latency plots.
///
/// # Examples
///
/// ```
/// use spe::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for i in 1..=100 {
///     h.record(i as f64 / 1000.0);
/// }
/// assert!((h.mean().unwrap() - 0.0505).abs() < 0.001);
/// let p99 = h.quantile(0.99).unwrap();
/// assert!(p99 > 0.09 && p99 < 0.105, "p99 = {p99}");
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Observed-sample bounds `[lo, hi]` (both inclusive) of the most
    /// recently hit bucket and its index. Consecutive latency samples land
    /// in the same ~5%-wide bucket far more often than not, and the range
    /// check replaces a `ln` call.
    ///
    /// The bounds are *samples that `bucket_index` actually mapped to
    /// `idx`*, never bucket edges re-derived from `BUCKET_GROWTH.powi` —
    /// the `powi` and `ln` paths round differently exactly at bucket
    /// boundaries, which used to make bucketing depend on sample order
    /// (warm vs cold cache). `bucket_index` is weakly monotone, so every
    /// value between two samples with the same index shares that index and
    /// the fast path agrees with `bucket_index` bit-for-bit.
    last_bucket: Option<(f64, f64, usize)>,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last_bucket: None,
        }
    }

    fn bucket_index(value: f64) -> usize {
        // 1 / ln(BUCKET_GROWTH), precomputed: one `ln` per sample instead
        // of two plus a division (this runs once per sink tuple).
        const INV_LN_GROWTH: f64 = 20.495_934_314_287_85;
        if value <= BUCKET_MIN {
            0
        } else {
            ((value / BUCKET_MIN).ln() * INV_LN_GROWTH) as usize + 1
        }
    }

    fn bucket_value(index: usize) -> f64 {
        if index == 0 {
            BUCKET_MIN
        } else {
            // Midpoint (geometric) of the bucket.
            BUCKET_MIN * BUCKET_GROWTH.powf(index as f64 - 0.5)
        }
    }

    /// Records a sample. Negative samples (and `-∞`) are clamped to zero,
    /// values above ~1e9 seconds (and `+∞`) to that cap; NaN samples are
    /// rejected without being recorded.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let value = value.clamp(0.0, BUCKET_CAP);
        let idx = match self.last_bucket {
            Some((lo, hi, idx)) if lo <= value && value <= hi => idx,
            Some((lo, hi, idx)) => {
                let new = Self::bucket_index(value);
                // Same bucket: widen the cached interval with the observed
                // sample. Different bucket: restart from a single sample.
                self.last_bucket = if new == idx {
                    Some((lo.min(value), hi.max(value), idx))
                } else {
                    Some((value, value, new))
                };
                new
            }
            None => {
                let idx = Self::bucket_index(value);
                self.last_bucket = Some((value, value, idx));
                idx
            }
        };
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a simulated duration as seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), if any samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (idx, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_value(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fraction of recorded samples above `threshold`, at bucket
    /// resolution (~5% relative error on the threshold): counts the
    /// samples in buckets strictly above the bucket containing
    /// `threshold`. Returns `None` for an empty histogram or a NaN
    /// threshold. This backs SLO-miss-rate reporting, where `threshold`
    /// is a latency target in seconds.
    pub fn fraction_above(&self, threshold: f64) -> Option<f64> {
        if self.count == 0 || threshold.is_nan() {
            return None;
        }
        if threshold >= BUCKET_CAP {
            return Some(0.0);
        }
        let cut = Self::bucket_index(threshold.clamp(0.0, BUCKET_CAP));
        let above: u64 = self.buckets.iter().skip(cut + 1).sum();
        Some(above as f64 / self.count as f64)
    }

    /// Per-bucket sample counts, lowest bucket first. Exposed so tests can
    /// assert bucketing invariants (e.g. independence from sample order).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Letter values for boxen plots (paper Fig. 13): returns
    /// `(quantile, value)` pairs for the median and successive halved tails
    /// (p75/p25, p87.5/p12.5, ...), `depth` levels deep.
    pub fn letter_values(&self, depth: u32) -> Vec<(f64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut out = vec![(0.5, self.quantile(0.5).unwrap())];
        let mut tail = 0.25;
        for _ in 0..depth {
            out.push((1.0 - tail, self.quantile(1.0 - tail).unwrap()));
            out.push((tail, self.quantile(tail).unwrap()));
            tail /= 2.0;
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples (used to discard warm-up).
    pub fn reset(&mut self) {
        *self = LogHistogram::new();
    }
}

/// A monotonically increasing event counter with rate extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    total: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.total += 1;
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resets to zero (used to discard warm-up).
    pub fn reset(&mut self) {
        self.total = 0;
    }

    /// Events per second accumulated since a previously observed total,
    /// over the interval `dt`. Returns `0.0` for a zero-length interval
    /// or a total that went backwards (e.g. across a [`reset`]).
    ///
    /// [`reset`]: Counter::reset
    pub fn rate_since(&self, prev_total: u64, dt: SimDuration) -> f64 {
        if dt.is_zero() {
            return 0.0;
        }
        self.total.saturating_sub(prev_total) as f64 / dt.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_returns_none() {
        let h = LogHistogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.letter_values(3).is_empty());
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 0.5).abs() / 0.5 < 0.06, "p50={p50}");
        let p999 = h.quantile(0.999).unwrap();
        assert!((p999 - 0.999).abs() / 0.999 < 0.06, "p999={p999}");
        assert_eq!(h.quantile(0.0), Some(0.001));
        assert_eq!(h.quantile(1.0), Some(1.0));
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = LogHistogram::new();
        h.record(0.1);
        h.record(0.3);
        assert_eq!(h.mean(), Some(0.2));
        assert_eq!(h.min(), Some(0.1));
        assert_eq!(h.max(), Some(0.3));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(0.1);
        b.record(0.3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(0.2));
    }

    #[test]
    fn letter_values_nest() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        let lv = h.letter_values(2);
        assert_eq!(lv.len(), 5);
        assert_eq!(lv[0].0, 0.5);
        assert_eq!(lv[1].0, 0.75);
        assert_eq!(lv[2].0, 0.25);
        assert_eq!(lv[3].0, 0.875);
        assert_eq!(lv[4].0, 0.125);
    }

    #[test]
    fn negative_samples_clamped() {
        let mut h = LogHistogram::new();
        h.record(-5.0);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn non_finite_samples_do_not_abort() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN); // rejected outright
        assert_eq!(h.count(), 0);
        h.record(f64::INFINITY); // clamped to the cap
        h.record(f64::NEG_INFINITY); // clamped to zero
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0.0));
        assert!(h.max().unwrap().is_finite());
        assert!(h.mean().unwrap().is_finite());
        assert!(h.quantile(0.99).unwrap().is_finite());
        // Finite samples recorded alongside keep working.
        h.record(0.5);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.5).unwrap().is_finite());
    }

    #[test]
    fn bucketing_is_independent_of_sample_order() {
        // Values sitting exactly on bucket edges (BUCKET_MIN * g^k) are the
        // adversarial case: the retired powi-derived cache bounds rounded
        // differently from the ln-based `bucket_index` there, so a warm
        // cache could classify an edge value into a different bucket than
        // a cold one. Record the same multiset ascending, descending and
        // interleaved; the bucket counts must be identical.
        let edges: Vec<f64> = (0..600).map(|k| BUCKET_MIN * BUCKET_GROWTH.powi(k)).collect();
        let mut asc = LogHistogram::new();
        let mut desc = LogHistogram::new();
        let mut mixed = LogHistogram::new();
        for v in &edges {
            asc.record(*v);
        }
        for v in edges.iter().rev() {
            desc.record(*v);
        }
        for pair in edges.chunks(2) {
            for v in pair.iter().rev() {
                mixed.record(*v);
            }
        }
        assert_eq!(asc.bucket_counts(), desc.bucket_counts());
        assert_eq!(asc.bucket_counts(), mixed.bucket_counts());
        assert_eq!(asc.count(), 600);
    }

    #[test]
    fn fraction_above_matches_distribution() {
        let mut h = LogHistogram::new();
        assert_eq!(h.fraction_above(0.5), None);
        for i in 1..=100 {
            h.record(i as f64 * 1e-3); // 1ms ..= 100ms
        }
        let half = h.fraction_above(0.05).unwrap();
        assert!((half - 0.5).abs() < 0.06, "fraction above 50ms = {half}");
        assert_eq!(h.fraction_above(1.0), Some(0.0));
        assert_eq!(h.fraction_above(f64::INFINITY), Some(0.0));
        assert_eq!(h.fraction_above(0.0), Some(1.0));
        assert_eq!(h.fraction_above(-1.0), Some(1.0));
        assert_eq!(h.fraction_above(f64::NAN), None);
    }

    #[test]
    fn counter_rate_since() {
        let mut c = Counter::new();
        c.add(500);
        assert_eq!(c.rate_since(0, SimDuration::from_secs(1)), 500.0);
        assert_eq!(c.rate_since(250, SimDuration::from_millis(500)), 500.0);
        assert_eq!(c.rate_since(0, SimDuration::ZERO), 0.0);
        assert_eq!(c.rate_since(600, SimDuration::from_secs(1)), 0.0);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.total(), 5);
        c.reset();
        assert_eq!(c.total(), 0);
    }
}
