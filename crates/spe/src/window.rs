//! Windowed aggregation operators.
//!
//! Real streaming queries aggregate over tumbling or sliding windows; the
//! evaluation workloads hand-roll their analytics, but a reusable window
//! library belongs in any SPE substrate a downstream user would adopt.
//! Windows are keyed (per tuple key) and event-time driven; a closing
//! window emits one tuple derived from its contributors, inheriting the
//! *maximum* contributor timestamps as §3.2 requires.

use std::collections::HashMap;

use simos::{SimDuration, SimTime};

use crate::chunk::{ChunkEmitter, TupleChunk};
use crate::operator::{Emitter, OperatorLogic};
use crate::tuple::{Tuple, Value};

/// An incremental aggregation over window contents.
pub trait Aggregator {
    /// Folds one tuple into the accumulator.
    fn add(&mut self, tuple: &Tuple);
    /// Produces the aggregate values and resets the accumulator.
    fn emit_and_reset(&mut self) -> Vec<Value>;
}

/// Count and mean of a numeric field.
#[derive(Debug, Clone, Default)]
pub struct MeanAggregator {
    /// Index of the aggregated field.
    pub field: usize,
    sum: f64,
    count: u64,
}

impl MeanAggregator {
    /// Aggregates the given field index.
    pub fn new(field: usize) -> Self {
        MeanAggregator {
            field,
            ..Default::default()
        }
    }
}

impl Aggregator for MeanAggregator {
    fn add(&mut self, tuple: &Tuple) {
        let v = tuple.values[self.field].as_f64();
        if !v.is_nan() {
            self.sum += v;
            self.count += 1;
        }
    }

    fn emit_and_reset(&mut self) -> Vec<Value> {
        let mean = if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        };
        let out = vec![Value::I(self.count as i64), Value::F(mean)];
        self.sum = 0.0;
        self.count = 0;
        out
    }
}

struct OpenWindow<A> {
    aggregator: A,
    /// Maximum contributor timestamps (for §3.2-compliant outputs).
    max_event: SimTime,
    max_ingress: SimTime,
    window_start: SimTime,
}

/// A keyed tumbling event-time window: tuples fall into consecutive
/// `[k·size, (k+1)·size)` buckets by event time; a bucket closes (emitting
/// one aggregate tuple per key) when a tuple of a later bucket arrives for
/// that key.
///
/// # Examples
///
/// ```
/// use spe::{Emitter, MeanAggregator, OperatorLogic, Tuple, TumblingWindow, Value};
/// use simos::{SimDuration, SimTime};
///
/// let mut w = TumblingWindow::new(SimDuration::from_secs(1), || MeanAggregator::new(0));
/// let mut out = Emitter::new(SimTime::ZERO);
/// let t0 = Tuple::new(SimTime::ZERO, 7, vec![Value::F(2.0)]);
/// let t1 = Tuple::new(SimTime::ZERO + SimDuration::from_millis(1500), 7, vec![Value::F(4.0)]);
/// w.process(&t0, &mut out);           // window [0s,1s) still open
/// w.process(&t1, &mut out);           // closes it
/// let outs = out.into_outputs();
/// assert_eq!(outs.len(), 1);
/// // closed-window tuples carry [window_start, count, mean]:
/// assert_eq!(outs[0].1.values[2].as_f64(), 2.0);
/// ```
pub struct TumblingWindow<A, F> {
    size: SimDuration,
    factory: F,
    open: HashMap<u64, OpenWindow<A>>,
}

impl<A, F> std::fmt::Debug for TumblingWindow<A, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TumblingWindow")
            .field("size", &self.size)
            .field("open_keys", &self.open.len())
            .finish_non_exhaustive()
    }
}

impl<A: Aggregator, F: FnMut() -> A> TumblingWindow<A, F> {
    /// Creates a tumbling window of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: SimDuration, factory: F) -> Self {
        assert!(!size.is_zero(), "window size must be > 0");
        TumblingWindow {
            size,
            factory,
            open: HashMap::new(),
        }
    }

    fn bucket(&self, t: SimTime) -> SimTime {
        let s = self.size.as_nanos();
        SimTime::from_nanos(t.as_nanos() / s * s)
    }
}

impl<A: Aggregator, F: FnMut() -> A> OperatorLogic for TumblingWindow<A, F> {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let bucket = self.bucket(input.event_time);
        let entry = self.open.entry(input.key).or_insert_with(|| OpenWindow {
            aggregator: (self.factory)(),
            max_event: input.event_time,
            max_ingress: input.ingress_time,
            window_start: bucket,
        });
        if bucket > entry.window_start {
            // Close the previous window for this key.
            let mut values = entry.aggregator.emit_and_reset();
            values.insert(0, Value::I(entry.window_start.as_nanos() as i64));
            let mut closed = Tuple::new(entry.max_event, input.key, values);
            closed.ingress_time = entry.max_ingress;
            out.emit(closed);
            entry.window_start = bucket;
            entry.max_event = input.event_time;
            entry.max_ingress = input.ingress_time;
        } else {
            entry.max_event = entry.max_event.max(input.event_time);
            entry.max_ingress = entry.max_ingress.max(input.ingress_time);
        }
        entry.aggregator.add(input);
    }

    // One dynamic dispatch per chunk; the per-tuple fold is monomorphic.
    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for t in chunk.iter() {
            out.start_tuple();
            self.process(t, out.emitter());
        }
    }
}

/// A keyed sliding window of the last `size` of event time: every input
/// emits the aggregate over that key's retained tuples (like the STATS
/// sliding analytics).
pub struct SlidingWindow<A, F> {
    size: SimDuration,
    factory: F,
    retained: HashMap<u64, Vec<Tuple>>,
    _marker: std::marker::PhantomData<A>,
}

impl<A, F> std::fmt::Debug for SlidingWindow<A, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlidingWindow")
            .field("size", &self.size)
            .field("keys", &self.retained.len())
            .finish_non_exhaustive()
    }
}

impl<A: Aggregator, F: FnMut() -> A> SlidingWindow<A, F> {
    /// Creates a sliding window of the given span.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: SimDuration, factory: F) -> Self {
        assert!(!size.is_zero(), "window size must be > 0");
        SlidingWindow {
            size,
            factory,
            retained: HashMap::new(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A: Aggregator, F: FnMut() -> A> OperatorLogic for SlidingWindow<A, F> {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let horizon = SimTime::from_nanos(
            input
                .event_time
                .as_nanos()
                .saturating_sub(self.size.as_nanos()),
        );
        let retained = self.retained.entry(input.key).or_default();
        retained.retain(|t| t.event_time > horizon);
        retained.push(input.clone());
        let mut agg = (self.factory)();
        for t in retained.iter() {
            agg.add(t);
        }
        let result =
            Tuple::derive_from_many(retained.iter(), input.key, agg.emit_and_reset());
        out.emit(result);
    }

    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for t in chunk.iter() {
            out.start_tuple();
            self.process(t, out.emitter());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tuple(ms: u64, key: u64, v: f64) -> Tuple {
        Tuple::new(at(ms), key, vec![Value::F(v)])
    }

    #[test]
    fn tumbling_window_closes_per_key() {
        let mut w = TumblingWindow::new(SimDuration::from_secs(1), || MeanAggregator::new(0));
        let mut out = Emitter::new(SimTime::ZERO);
        w.process(&tuple(100, 1, 10.0), &mut out);
        w.process(&tuple(200, 1, 20.0), &mut out);
        w.process(&tuple(300, 2, 99.0), &mut out);
        assert_eq!(out.emitted(), 0, "windows still open");
        // Key 1 rolls into the next window; key 2's stays open.
        w.process(&tuple(1_100, 1, 50.0), &mut out);
        let outs = out.into_outputs();
        assert_eq!(outs.len(), 1);
        let closed = &outs[0].1;
        assert_eq!(closed.key, 1);
        assert_eq!(closed.values[1].as_i64(), 2, "count");
        assert_eq!(closed.values[2].as_f64(), 15.0, "mean");
        assert_eq!(closed.event_time, at(200), "max contributor event time");
    }

    #[test]
    fn sliding_window_evicts_old_tuples() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(1), || MeanAggregator::new(0));
        let mut out = Emitter::new(SimTime::ZERO);
        w.process(&tuple(0, 1, 10.0), &mut out);
        w.process(&tuple(500, 1, 20.0), &mut out);
        w.process(&tuple(1_400, 1, 30.0), &mut out);
        let outs = out.into_outputs();
        assert_eq!(outs.len(), 3, "one aggregate per input");
        // At t=1.4s the horizon is 0.4s: the t=0 tuple is gone.
        assert_eq!(outs[2].1.values[0].as_i64(), 2);
        assert_eq!(outs[2].1.values[1].as_f64(), 25.0);
    }

    #[test]
    fn sliding_window_output_inherits_max_timestamps() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(10), || MeanAggregator::new(0));
        let mut out = Emitter::new(SimTime::ZERO);
        w.process(&tuple(100, 1, 1.0), &mut out);
        w.process(&tuple(50, 1, 2.0), &mut out); // out of order
        let outs = out.into_outputs();
        assert_eq!(outs[1].1.event_time, at(100), "max, not last");
    }

    #[test]
    fn mean_aggregator_skips_nan() {
        let mut a = MeanAggregator::new(0);
        a.add(&tuple(0, 1, 4.0));
        a.add(&Tuple::new(at(1), 1, vec![Value::F(f64::NAN)]));
        let v = a.emit_and_reset();
        assert_eq!(v[0].as_i64(), 1);
        assert_eq!(v[1].as_f64(), 4.0);
        // Reset: empty aggregate is NaN with count 0.
        let v2 = a.emit_and_reset();
        assert_eq!(v2[0].as_i64(), 0);
        assert!(v2[1].as_f64().is_nan());
    }
}
