//! The physical operator execution cell.
//!
//! An [`OpCell`] holds everything one physical operator needs at runtime:
//! its fused logic chain, input queue, output edges, counters, and optional
//! blocking-I/O injection. It is deliberately decoupled from threads so the
//! same cell can be driven by a dedicated thread (thread-per-operator
//! engines), by a user-level scheduler's worker pool (EdgeWise, Haren), or
//! directly by unit tests.
//!
//! Execution of one tuple is split in two so the simulated CPU cost lands
//! between them:
//!
//! 1. [`begin`](OpCell::begin) pops a tuple, runs the logic chain, and
//!    returns a [`WorkItem`] with the outputs and the CPU cost to charge;
//! 2. after the executor consumed that cost, [`finish`](OpCell::finish)
//!    delivers the outputs downstream (waking consumers, handling full
//!    bounded queues and cross-node delays) and records egress latencies.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simos::{NodeId, SimCtx, SimDuration, SimTime, ThreadId, WaitId};

use crate::chunk::{ChunkEmitter, TupleChunk};
use crate::graph::{LogicalOpId, Partitioning};
use crate::operator::{CostModel, Emitter, OperatorLogic};
use crate::queue::{PushOutcome, Queue};
use crate::sink::SinkCollector;
use crate::tuple::Tuple;

/// One stage of a fused operator chain.
pub struct Stage {
    /// The logical operator this stage implements.
    pub logical: LogicalOpId,
    /// Stage name (the logical operator's name).
    pub name: String,
    /// The transformation.
    pub logic: Box<dyn OperatorLogic>,
    /// CPU cost model.
    pub cost: CostModel,
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("logical", &self.logical)
            .field("name", &self.name)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// An output edge bound to a port of the chain tail.
#[derive(Debug, Clone)]
pub struct OutEdge {
    /// Port of the tail stage this edge consumes.
    pub port: u16,
    /// Routing across target replicas.
    pub partitioning: Partitioning,
    /// Input queues of the target replicas, by replica index.
    pub targets: Vec<Queue>,
    rr: usize,
}

impl OutEdge {
    /// Creates an edge.
    pub fn new(port: u16, partitioning: Partitioning, targets: Vec<Queue>) -> Self {
        OutEdge {
            port,
            partitioning,
            targets,
            rr: 0,
        }
    }

    fn route(&mut self, tuple: &Tuple) -> usize {
        match self.partitioning {
            Partitioning::Forward | Partitioning::Shuffle => {
                let i = self.rr % self.targets.len();
                self.rr = self.rr.wrapping_add(1);
                i
            }
            Partitioning::KeyHash => {
                // Fibonacci hashing spreads small integer keys.
                let h = tuple.key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h % self.targets.len() as u64) as usize
            }
        }
    }
}

/// Simulated blocking I/O: with probability `probability`, processing a
/// tuple is followed by a sleep of up to `max_duration` (paper §6.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingSpec {
    /// Chance that a tuple triggers blocking (e.g. 0.001).
    pub probability: f64,
    /// Upper bound of the uniformly drawn block duration.
    pub max_duration: SimDuration,
}

/// Backlog-dependent processing cost: operators draining deep queues run
/// slower (cache misses on cold queue data, allocator/GC pressure from
/// millions of buffered tuples). This is why throughput *decreases* past
/// the saturation point in the paper's figures (§6.1) — schedulers that
/// keep queues small also keep operators fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacklogPenalty {
    /// Maximum relative slowdown (e.g. 1.0 = up to 2x cost).
    pub alpha: f64,
    /// Queue length at which the full slowdown is reached.
    pub ref_len: usize,
}

impl BacklogPenalty {
    /// The cost multiplier for an operator whose input queue holds `len`
    /// tuples.
    pub fn multiplier(&self, len: usize) -> f64 {
        let frac = (len as f64 / self.ref_len.max(1) as f64).min(1.0);
        1.0 + self.alpha * frac
    }
}

/// Spout-side flow control (Storm's `max.spout.pending` with acking): an
/// ingress operator stops ingesting while the query's internal queues hold
/// more than `cap` tuples, briefly sleeping instead (the spout wait
/// strategy). This is what makes ingress throughput *plateau* at the
/// saturation point in the paper's Storm experiments (§6.1).
///
/// The backlog is a counter every internal queue contributes to (see
/// [`Queue::track_backlog`]), so the check ingress operators run before
/// every single tuple is O(1) instead of a scan over all queues.
#[derive(Debug, Clone)]
pub struct Throttle {
    /// Total tuples currently in the query's internal (non-ingress) queues.
    pub pending: Rc<std::cell::Cell<u64>>,
    /// Maximum total internal backlog before the spout pauses.
    pub cap: usize,
}

impl Throttle {
    /// Whether the spout must pause right now.
    pub fn saturated(&self) -> bool {
        self.pending.get() > self.cap as u64
    }
}

/// Result of [`OpCell::begin`].
#[derive(Debug)]
pub enum Begin {
    /// A tuple was popped and processed; consume its cost, then `finish`.
    Item(WorkItem),
    /// A whole chunk was drained and processed in one dispatch; the first
    /// tuple's boundary is committed — consume [`OpBatch::cost`], then
    /// [`finish_batch`](OpCell::finish_batch).
    Batch(OpBatch),
    /// The input queue is empty; block on the consumer channel.
    Empty,
    /// Spout flow control engaged; retry after a short sleep.
    Throttled,
}

impl Begin {
    /// Extracts the work item, discarding `Empty`/`Throttled`.
    ///
    /// # Panics
    ///
    /// Panics on [`Begin::Batch`] — scalar-only test drivers must build
    /// their cells with `batch_max = 1`.
    pub fn item(self) -> Option<WorkItem> {
        match self {
            Begin::Item(i) => Some(i),
            Begin::Batch(_) => panic!("Begin::item on a batch; use batch_max = 1"),
            Begin::Empty | Begin::Throttled => None,
        }
    }
}

/// The units of work produced by [`OpCell::begin`].
#[derive(Debug)]
pub struct WorkItem {
    outputs: Vec<(u16, Tuple)>,
    /// Simulated CPU cost of processing this tuple through the chain.
    pub cost: SimDuration,
    /// If set, the executor must sleep this long after finishing.
    pub block_after: Option<SimDuration>,
    input_event: SimTime,
    input_ingress: SimTime,
    /// Resume position for stalled deliveries: next output index.
    out_idx: usize,
    /// Resume position: next edge index within the current output.
    edge_idx: usize,
}

impl WorkItem {
    /// Number of output tuples this item will deliver downstream.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }
}

/// Result of [`OpCell::finish`] / [`OpCell::resume`].
#[derive(Debug)]
pub enum FinishOutcome {
    /// All outputs delivered.
    Done,
    /// A bounded downstream queue is full: block on `wait`, then call
    /// [`OpCell::resume`] with the returned item.
    Stalled {
        /// The producer-wait channel of the full queue.
        wait: WaitId,
        /// The partially delivered work item.
        item: WorkItem,
    },
}

/// Per-tuple bookkeeping of a chunk, recorded when the chunk is processed
/// and replayed at each tuple's boundary.
#[derive(Debug, Clone, Copy)]
struct BatchMeta {
    /// Stage cost before any backlog-penalty scaling (the penalty depends
    /// on the queue length *at the tuple's boundary*, which mid-batch
    /// pushes can change, so scaling happens at commit time).
    raw_cost: SimDuration,
    /// Blocking-I/O draw (made upfront in queue order — the cell-private
    /// RNG yields the exact values a scalar run would draw).
    block_after: Option<SimDuration>,
    input_event: SimTime,
    input_ingress: SimTime,
}

/// A chunk of tuples processed in one dispatch, delivered and accounted
/// one tuple at a time.
///
/// Produced by [`OpCell::begin`] when the cell is batch-eligible. The
/// executor consumes [`cost`](OpBatch::cost), calls
/// [`finish_batch`](OpCell::finish_batch) to deliver the current tuple's
/// outputs, handles [`block_after`](OpBatch::block_after), then advances
/// with [`next_in_batch`](OpCell::next_in_batch) — exactly the scalar
/// begin/finish cadence, minus the per-tuple pops and dynamic dispatch.
#[derive(Debug)]
pub struct OpBatch {
    /// Shared output buffer for the whole chunk.
    outputs: Vec<(u16, Tuple)>,
    /// `bounds[i]` = offset into `outputs` where input `i`'s outputs begin.
    bounds: Vec<usize>,
    meta: Vec<BatchMeta>,
    /// Current input index (its boundary is committed).
    idx: usize,
    /// Delivery cursor: absolute index into `outputs`.
    out_idx: usize,
    /// Delivery cursor: next edge for the current output.
    edge_idx: usize,
    /// Simulated CPU cost of the current tuple (boundary-committed).
    pub cost: SimDuration,
    /// If set, the executor must sleep this long after delivering the
    /// current tuple's outputs.
    pub block_after: Option<SimDuration>,
}

impl OpBatch {
    /// Number of input tuples in the chunk.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the chunk holds no inputs (never true for a live batch).
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// End offset (exclusive) of input `i`'s outputs.
    fn bound_end(&self, i: usize) -> usize {
        self.bounds.get(i + 1).copied().unwrap_or(self.outputs.len())
    }

    /// Number of output tuples the current input will deliver.
    pub fn output_count(&self) -> usize {
        self.bound_end(self.idx) - self.bounds[self.idx]
    }
}

/// Result of [`OpCell::finish_batch`] / [`OpCell::resume_batch`].
#[derive(Debug)]
pub enum BatchOutcome {
    /// The current tuple's outputs are delivered. Handle
    /// [`OpBatch::block_after`], then call
    /// [`next_in_batch`](OpCell::next_in_batch).
    Delivered(OpBatch),
    /// A bounded downstream queue is full: block on `wait`, then call
    /// [`OpCell::resume_batch`].
    Stalled {
        /// The producer-wait channel of the full queue.
        wait: WaitId,
        /// The partially delivered batch.
        batch: OpBatch,
    },
}

#[derive(Debug, Default)]
struct OpCounters {
    tuples_in: u64,
    tuples_out: u64,
    cpu_cost: SimDuration,
    blocking_events: u64,
    /// Execution batches: one per drained chunk, and one per scalar tuple.
    batches: u64,
}

struct OpInner {
    stages: Vec<Stage>,
    out_edges: Vec<OutEdge>,
    counters: OpCounters,
    rng: SmallRng,
    thread: Option<ThreadId>,
    /// Scratch buffers reused across stage invocations.
    scratch_a: Vec<(u16, Tuple)>,
    scratch_b: Vec<(u16, Tuple)>,
    /// Emission buffer recycled across every stage invocation.
    emit_buf: Vec<(u16, Tuple)>,
    /// Output vectors recycled between work items: `begin` draws from the
    /// pool, delivery returns the emptied vector. Bounded so a burst of
    /// stalled items cannot hoard memory.
    out_pool: Vec<Vec<(u16, Tuple)>>,
    /// Input chunk recycled across batches (batch-eligible cells only).
    chunk: TupleChunk,
    /// Chunk-wide output buffer recycled across batches.
    batch_out: Vec<(u16, Tuple)>,
    /// Per-input output bounds recycled across batches.
    batch_bounds: Vec<usize>,
    /// Per-input bookkeeping recycled across batches.
    batch_meta: Vec<BatchMeta>,
}

/// A physical operator's runtime state; shared via [`OpCellRef`].
pub struct OpCell {
    id: usize,
    name: String,
    query: String,
    node: NodeId,
    is_ingress: bool,
    in_queue: Queue,
    sink: Option<Rc<RefCell<SinkCollector>>>,
    blocking: Option<BlockingSpec>,
    backlog_penalty: Option<BacklogPenalty>,
    net_delay: SimDuration,
    /// Largest chunk one `begin` may drain (1 = always scalar).
    batch_max: usize,
    /// Structural batch eligibility, fixed at construction: a single-stage,
    /// non-ingress chain with `batch_max > 1`. Dynamic conditions (queue
    /// kind and depth, armed crashes) are checked per `begin`.
    batch_ok: bool,
    throttle: RefCell<Option<Throttle>>,
    /// Scheduled fail-stop instant (fault injection): the executing thread
    /// exits at the first tuple boundary at or after this time.
    crash_at: std::cell::Cell<Option<SimTime>>,
    /// True while the operator is down (crashed, not yet restarted).
    crashed: std::cell::Cell<bool>,
    crashes: std::cell::Cell<u64>,
    restarts: std::cell::Cell<u64>,
    inner: RefCell<OpInner>,
}

impl std::fmt::Debug for OpCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpCell")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("query", &self.query)
            .field("node", &self.node)
            .field("is_ingress", &self.is_ingress)
            .finish_non_exhaustive()
    }
}

/// Shared handle to an [`OpCell`].
pub type OpCellRef = Rc<OpCell>;

/// Constructor parameters for [`OpCell::new`].
#[derive(Debug)]
pub struct OpCellSpec {
    /// Physical operator id within the query.
    pub id: usize,
    /// Physical operator name.
    pub name: String,
    /// Owning query name.
    pub query: String,
    /// Node the operator runs on.
    pub node: NodeId,
    /// Whether the chain head is an ingress operator.
    pub is_ingress: bool,
    /// The operator's input queue.
    pub in_queue: Queue,
    /// Latency collector if the chain tail is an egress operator.
    pub sink: Option<Rc<RefCell<SinkCollector>>>,
    /// Optional blocking-I/O injection.
    pub blocking: Option<BlockingSpec>,
    /// Backlog-dependent slowdown (ignored for ingress operators, whose
    /// "queue" is the external source buffer streamed sequentially).
    pub backlog_penalty: Option<BacklogPenalty>,
    /// Delay applied to pushes toward other nodes.
    pub net_delay: SimDuration,
    /// Deterministic RNG seed (blocking injection).
    pub seed: u64,
    /// Largest chunk one `begin` may drain (1 disables batching; values
    /// above 1 engage the batch path where it is exact — see
    /// [`OpCell::begin`]).
    pub batch_max: usize,
}

impl OpCell {
    /// Creates a cell; output edges are wired afterwards with
    /// [`set_out_edges`](OpCell::set_out_edges).
    pub fn new(spec: OpCellSpec, stages: Vec<Stage>) -> OpCellRef {
        assert!(!stages.is_empty(), "an operator needs at least one stage");
        let batch_max = spec.batch_max.max(1);
        let batch_ok = batch_max > 1 && !spec.is_ingress && stages.len() == 1;
        Rc::new(OpCell {
            id: spec.id,
            name: spec.name,
            query: spec.query,
            node: spec.node,
            is_ingress: spec.is_ingress,
            in_queue: spec.in_queue,
            sink: spec.sink,
            blocking: spec.blocking,
            backlog_penalty: spec.backlog_penalty,
            net_delay: spec.net_delay,
            batch_max,
            batch_ok,
            throttle: RefCell::new(None),
            crash_at: std::cell::Cell::new(None),
            crashed: std::cell::Cell::new(false),
            crashes: std::cell::Cell::new(0),
            restarts: std::cell::Cell::new(0),
            inner: RefCell::new(OpInner {
                stages,
                out_edges: Vec::new(),
                counters: OpCounters::default(),
                rng: SmallRng::seed_from_u64(spec.seed),
                thread: None,
                scratch_a: Vec::new(),
                scratch_b: Vec::new(),
                emit_buf: Vec::new(),
                out_pool: Vec::new(),
                chunk: TupleChunk::new(batch_max),
                batch_out: Vec::new(),
                batch_bounds: Vec::new(),
                batch_meta: Vec::new(),
            }),
        })
    }

    /// Wires the operator's output edges (done after all queues exist).
    pub fn set_out_edges(&self, edges: Vec<OutEdge>) {
        self.inner.borrow_mut().out_edges = edges;
    }

    /// Installs spout flow control (ingress operators only).
    pub fn set_throttle(&self, throttle: Throttle) {
        *self.throttle.borrow_mut() = Some(throttle);
    }

    /// Whether spout flow control currently blocks ingestion (pool
    /// schedulers skip throttled spouts instead of spinning on them).
    pub fn throttled(&self) -> bool {
        self.throttle
            .borrow()
            .as_ref()
            .is_some_and(Throttle::saturated)
    }

    /// Associates the executing thread (thread-per-operator engines).
    pub fn set_thread(&self, tid: ThreadId) {
        self.inner.borrow_mut().thread = Some(tid);
    }

    /// The executing thread, if bound.
    pub fn thread(&self) -> Option<ThreadId> {
        self.inner.borrow().thread
    }

    /// Physical operator id within the query.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Physical operator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Owning query name.
    pub fn query(&self) -> &str {
        &self.query
    }

    /// Node the operator runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the chain head ingests from a data source.
    pub fn is_ingress(&self) -> bool {
        self.is_ingress
    }

    /// The operator's input queue.
    pub fn in_queue(&self) -> &Queue {
        &self.in_queue
    }

    /// Logical operators fused into this physical operator.
    pub fn logical_ops(&self) -> Vec<LogicalOpId> {
        self.inner.borrow().stages.iter().map(|s| s.logical).collect()
    }

    /// Total tuples ingested.
    pub fn tuples_in(&self) -> u64 {
        self.inner.borrow().counters.tuples_in
    }

    /// Total tuples emitted by the chain tail.
    pub fn tuples_out(&self) -> u64 {
        self.inner.borrow().counters.tuples_out
    }

    /// Total simulated CPU cost consumed by tuple processing.
    pub fn cpu_cost(&self) -> SimDuration {
        self.inner.borrow().counters.cpu_cost
    }

    /// Number of injected blocking events.
    pub fn blocking_events(&self) -> u64 {
        self.inner.borrow().counters.blocking_events
    }

    /// Execution batches run: one per drained chunk, one per scalar tuple.
    /// `tuples_in / batches` is the average batch size.
    pub fn batches(&self) -> u64 {
        self.inner.borrow().counters.batches
    }

    /// Average CPU seconds per input tuple, if any were processed.
    pub fn avg_cost(&self) -> Option<f64> {
        let c = self.inner.borrow();
        if c.counters.tuples_in == 0 {
            None
        } else {
            Some(c.counters.cpu_cost.as_secs_f64() / c.counters.tuples_in as f64)
        }
    }

    /// Average outputs per input tuple, if any were processed.
    pub fn avg_selectivity(&self) -> Option<f64> {
        let c = self.inner.borrow();
        if c.counters.tuples_in == 0 {
            None
        } else {
            Some(c.counters.tuples_out as f64 / c.counters.tuples_in as f64)
        }
    }

    /// Arms fail-stop fault injection: the executing thread exits at the
    /// first tuple boundary at or after `at` (crashes land between tuples,
    /// never mid-delivery, so the input queue survives intact).
    pub fn set_crash_at(&self, at: SimTime) {
        self.crash_at.set(Some(at));
    }

    /// Whether an armed crash is due at `now` (and the cell is still up).
    pub fn crash_due(&self, now: SimTime) -> bool {
        !self.crashed.get() && self.crash_at.get().is_some_and(|at| now >= at)
    }

    /// Marks the operator down. Called by the executing thread as it
    /// fail-stops; disarms the pending crash so a restarted thread runs.
    pub fn mark_crashed(&self) {
        self.crash_at.set(None);
        self.crashed.set(true);
        self.crashes.set(self.crashes.get() + 1);
        self.inner.borrow_mut().thread = None;
    }

    /// Marks the operator back up after a successful restart.
    pub fn mark_restarted(&self) {
        self.crashed.set(false);
        self.restarts.set(self.restarts.get() + 1);
    }

    /// True while the operator is down (crashed and not yet restarted).
    pub fn is_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// Number of injected crashes so far.
    pub fn crash_count(&self) -> u64 {
        self.crashes.get()
    }

    /// Number of successful restarts so far.
    pub fn restart_count(&self) -> u64 {
        self.restarts.get()
    }

    /// Resets counters (used to discard warm-up).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().counters = OpCounters::default();
        self.in_queue.reset_stats();
    }

    /// Pops and processes work. The caller must consume the returned CPU
    /// cost and then call [`finish`](OpCell::finish) (scalar items) or
    /// [`finish_batch`](OpCell::finish_batch) (batches).
    ///
    /// The batch path engages only where it is provably exact: a
    /// single-stage, non-ingress chain reading an unbounded non-shedding
    /// queue holding at least two tuples, with no armed crash. Everything
    /// else — ingress/throttled spouts, bounded credit-flow queues,
    /// shedding queues, fused chains, crash-armed cells — takes the scalar
    /// path unchanged, which is how backpressure/shed bookkeeping,
    /// producer wakes and throttle checks stay identical to a scalar run.
    pub fn begin(&self, ctx: &mut SimCtx) -> Begin {
        self.begin_limited(ctx, usize::MAX)
    }

    /// Like [`begin`](OpCell::begin) with the chunk additionally capped at
    /// `limit` tuples — worker pools cap it at the scheduling quantum's
    /// remainder so a batch never overruns the task the scheduler granted.
    pub fn begin_limited(&self, ctx: &mut SimCtx, limit: usize) -> Begin {
        if let Some(t) = self.throttle.borrow().as_ref() {
            if t.saturated() {
                return Begin::Throttled;
            }
        }
        if self.batch_ok
            && limit > 1
            && self.crash_at.get().is_none()
            && self.in_queue.chunk_ready()
        {
            if let Some(batch) = self.begin_batch(ctx, self.batch_max.min(limit)) {
                return Begin::Batch(batch);
            }
        }
        let Some((mut tuple, was_full, backlog)) = self.in_queue.pop_observed() else {
            return Begin::Empty;
        };
        if was_full {
            ctx.wake(self.in_queue.producer_wait());
        }
        if self.is_ingress {
            tuple.ingress_time = ctx.now();
        }
        let input_event = tuple.event_time;
        let input_ingress = tuple.ingress_time;
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        inner.counters.tuples_in += 1;
        inner.counters.batches += 1;

        // Single-stage cells (the common case) skip the fused-chain
        // scratch rotation: the logic emits straight into the recycled
        // output buffer, which then travels with the work item.
        if inner.stages.len() == 1 {
            let mut emitter = Emitter::with_buffer(ctx.now(), std::mem::take(&mut inner.emit_buf));
            let stage = &mut inner.stages[0];
            stage.logic.process(&tuple, &mut emitter);
            let outputs = emitter.into_outputs();
            let mut cost = stage.cost.cost(outputs.len());
            inner.emit_buf = inner.out_pool.pop().unwrap_or_default();
            inner.counters.tuples_out += outputs.len() as u64;
            if !self.is_ingress {
                if let Some(penalty) = self.backlog_penalty {
                    let scaled = cost.as_nanos() as f64 * penalty.multiplier(backlog);
                    cost = SimDuration::from_nanos(scaled as u64);
                }
            }
            inner.counters.cpu_cost += cost;
            let block_after = self.blocking.and_then(|spec| {
                if inner.rng.gen_bool(spec.probability.clamp(0.0, 1.0)) {
                    inner.counters.blocking_events += 1;
                    let nanos = inner.rng.gen_range(0..=spec.max_duration.as_nanos());
                    Some(SimDuration::from_nanos(nanos))
                } else {
                    None
                }
            });
            return Begin::Item(WorkItem {
                cost,
                block_after,
                input_event,
                input_ingress,
                outputs,
                out_idx: 0,
                edge_idx: 0,
            });
        }

        // Run the fused chain. Stage k's port-0 outputs feed stage k+1;
        // only the tail's outputs leave the operator (see physical.rs for
        // why middle stages cannot have external edges).
        let mut cost = SimDuration::ZERO;
        let mut current = std::mem::take(&mut inner.scratch_a);
        current.clear();
        current.push((0, tuple));
        let mut next = std::mem::take(&mut inner.scratch_b);
        // One recycled emission buffer serves every stage invocation; it is
        // taken once per `begin`, not once per tuple×stage.
        let mut emit_buf = std::mem::take(&mut inner.emit_buf);
        let n_stages = inner.stages.len();
        for (k, stage) in inner.stages.iter_mut().enumerate() {
            next.clear();
            for (_, t) in current.drain(..) {
                let mut emitter = Emitter::with_buffer(ctx.now(), emit_buf);
                stage.logic.process(&t, &mut emitter);
                let mut outs = emitter.into_outputs();
                cost += stage.cost.cost(outs.len());
                if k + 1 < n_stages {
                    // Internal hand-off: only port 0 continues the chain.
                    next.extend(outs.drain(..).filter(|(p, _)| *p == 0));
                } else {
                    next.append(&mut outs);
                }
                emit_buf = outs;
            }
            std::mem::swap(&mut current, &mut next);
        }
        inner.emit_buf = emit_buf;
        // `current` holds the tail outputs and travels with the work item
        // (it returns through the recycling pool once delivered); `next` is
        // an emptied scratch again.
        let outputs = current;
        inner.scratch_a = next;
        inner.scratch_b = inner.out_pool.pop().unwrap_or_default();
        inner.counters.tuples_out += outputs.len() as u64;
        if !self.is_ingress {
            if let Some(penalty) = self.backlog_penalty {
                let scaled = cost.as_nanos() as f64 * penalty.multiplier(backlog);
                cost = SimDuration::from_nanos(scaled as u64);
            }
        }
        inner.counters.cpu_cost += cost;

        let block_after = self.blocking.and_then(|spec| {
            if inner.rng.gen_bool(spec.probability.clamp(0.0, 1.0)) {
                inner.counters.blocking_events += 1;
                let nanos = inner.rng.gen_range(0..=spec.max_duration.as_nanos());
                Some(SimDuration::from_nanos(nanos))
            } else {
                None
            }
        });

        Begin::Item(WorkItem {
            cost,
            block_after,
            input_event,
            input_ingress,
            outputs,
            out_idx: 0,
            edge_idx: 0,
        })
    }

    /// Drains up to `max` tuples, processes them with one `process_batch`
    /// dispatch, and commits the first tuple's boundary. Returns `None` if
    /// the queue turned out empty (the caller falls back to the scalar
    /// path, which reports `Empty`).
    fn begin_batch(&self, ctx: &mut SimCtx, max: usize) -> Option<OpBatch> {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let mut chunk = std::mem::take(&mut inner.chunk);
        chunk.clear();
        let n = self
            .in_queue
            .pop_chunk(max.min(chunk.capacity()), chunk.buf_mut());
        if n == 0 {
            inner.chunk = chunk;
            return None;
        }
        // One dynamic dispatch for the whole chunk. Processing runs ahead
        // of the per-tuple boundaries; that is unobservable because the
        // gate guarantees no tuple of an open chunk can be invalidated
        // (nothing sheds an unbounded Block queue, no crash is armed) and
        // no built-in logic reads `Emitter::now`.
        let out_buf = std::mem::take(&mut inner.batch_out);
        let bounds_buf = std::mem::take(&mut inner.batch_bounds);
        let mut em = ChunkEmitter::with_buffers(ctx.now(), out_buf, bounds_buf);
        inner.stages[0].logic.process_batch(&chunk, &mut em);
        let (outputs, bounds) = em.into_parts();
        assert_eq!(
            bounds.len(),
            n,
            "process_batch must call start_tuple once per input ({})",
            self.name
        );
        let mut meta = std::mem::take(&mut inner.batch_meta);
        meta.clear();
        let cost_model = inner.stages[0].cost;
        for (i, t) in chunk.iter().enumerate() {
            let end = bounds.get(i + 1).copied().unwrap_or(outputs.len());
            let raw_cost = cost_model.cost(end - bounds[i]);
            let block_after = self.blocking.and_then(|spec| {
                if inner.rng.gen_bool(spec.probability.clamp(0.0, 1.0)) {
                    let nanos = inner.rng.gen_range(0..=spec.max_duration.as_nanos());
                    Some(SimDuration::from_nanos(nanos))
                } else {
                    None
                }
            });
            meta.push(BatchMeta {
                raw_cost,
                block_after,
                input_event: t.event_time,
                input_ingress: t.ingress_time,
            });
        }
        chunk.clear();
        inner.chunk = chunk;
        inner.counters.batches += 1;
        let mut batch = OpBatch {
            outputs,
            bounds,
            meta,
            idx: 0,
            out_idx: 0,
            edge_idx: 0,
            cost: SimDuration::ZERO,
            block_after: None,
        };
        self.commit_boundary(inner, &mut batch);
        Some(batch)
    }

    /// Replays, at one tuple's processing boundary, everything the scalar
    /// `begin` would have done at that instant: commit the queue pop, read
    /// the backlog for penalty scaling, and bump the counters a mid-batch
    /// metrics sample must see.
    fn commit_boundary(&self, inner: &mut OpInner, batch: &mut OpBatch) {
        // Visible length before this commit == the length the scalar
        // `begin` would read just before its pop.
        let backlog = self.in_queue.len();
        self.in_queue.commit_pop();
        let m = batch.meta[batch.idx];
        let start = batch.bounds[batch.idx];
        let end = batch.bound_end(batch.idx);
        let mut cost = m.raw_cost;
        if let Some(penalty) = self.backlog_penalty {
            let scaled = cost.as_nanos() as f64 * penalty.multiplier(backlog);
            cost = SimDuration::from_nanos(scaled as u64);
        }
        inner.counters.tuples_in += 1;
        inner.counters.tuples_out += (end - start) as u64;
        inner.counters.cpu_cost += cost;
        if m.block_after.is_some() {
            inner.counters.blocking_events += 1;
        }
        batch.cost = cost;
        batch.block_after = m.block_after;
        batch.out_idx = start;
        batch.edge_idx = 0;
    }

    /// Advances a delivered batch to its next tuple, committing that
    /// boundary; `None` when the chunk is exhausted (buffers recycle back
    /// into the cell).
    pub fn next_in_batch(&self, mut batch: OpBatch) -> Option<OpBatch> {
        let mut inner = self.inner.borrow_mut();
        batch.idx += 1;
        if batch.idx >= batch.meta.len() {
            batch.outputs.clear();
            inner.batch_out = batch.outputs;
            inner.batch_bounds = batch.bounds;
            inner.batch_meta = batch.meta;
            return None;
        }
        self.commit_boundary(&mut inner, &mut batch);
        Some(batch)
    }

    /// Delivers a work item's outputs downstream and records egress
    /// latencies. Returns [`FinishOutcome::Stalled`] if a bounded queue is
    /// full (Flink-style backpressure).
    pub fn finish(&self, ctx: &mut SimCtx, item: WorkItem) -> FinishOutcome {
        self.deliver(ctx, item)
    }

    /// Continues delivering a previously stalled item.
    pub fn resume(&self, ctx: &mut SimCtx, item: WorkItem) -> FinishOutcome {
        self.deliver(ctx, item)
    }

    fn deliver(&self, ctx: &mut SimCtx, mut item: WorkItem) -> FinishOutcome {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let end = item.outputs.len();
        if let Err(wait) = self.deliver_range(
            ctx,
            inner,
            &mut item.outputs,
            &mut item.out_idx,
            &mut item.edge_idx,
            end,
        ) {
            return FinishOutcome::Stalled { wait, item };
        }
        // Recycle the outputs vector for future work items.
        let mut buf = std::mem::take(&mut item.outputs);
        buf.clear();
        if inner.out_pool.len() < 8 {
            inner.out_pool.push(buf);
        }
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(ctx.now(), item.input_event, item.input_ingress);
        }
        FinishOutcome::Done
    }

    /// Delivers the current batch tuple's outputs downstream and records
    /// its egress latency — the batch counterpart of
    /// [`finish`](OpCell::finish).
    pub fn finish_batch(&self, ctx: &mut SimCtx, batch: OpBatch) -> BatchOutcome {
        self.deliver_batch(ctx, batch)
    }

    /// Continues delivering a previously stalled batch tuple.
    pub fn resume_batch(&self, ctx: &mut SimCtx, batch: OpBatch) -> BatchOutcome {
        self.deliver_batch(ctx, batch)
    }

    fn deliver_batch(&self, ctx: &mut SimCtx, mut batch: OpBatch) -> BatchOutcome {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let end = batch.bound_end(batch.idx);
        let (mut out_idx, mut edge_idx) = (batch.out_idx, batch.edge_idx);
        let res = self.deliver_range(
            ctx,
            inner,
            &mut batch.outputs,
            &mut out_idx,
            &mut edge_idx,
            end,
        );
        batch.out_idx = out_idx;
        batch.edge_idx = edge_idx;
        if let Err(wait) = res {
            return BatchOutcome::Stalled { wait, batch };
        }
        if let Some(sink) = &self.sink {
            let m = batch.meta[batch.idx];
            sink.borrow_mut()
                .record(ctx.now(), m.input_event, m.input_ingress);
        }
        BatchOutcome::Delivered(batch)
    }

    /// Delivers `outputs[*out_idx..end]` downstream, advancing the cursors
    /// so a stalled delivery resumes exactly where it left off. `Err(wait)`
    /// reports a full bounded queue's producer-wait channel.
    fn deliver_range(
        &self,
        ctx: &mut SimCtx,
        inner: &mut OpInner,
        outputs: &mut [(u16, Tuple)],
        out_idx: &mut usize,
        edge_idx: &mut usize,
        end: usize,
    ) -> Result<(), WaitId> {
        while *out_idx < end {
            let port = outputs[*out_idx].0;
            let n_edges = inner.out_edges.len();
            while *edge_idx < n_edges {
                {
                    let edge = &inner.out_edges[*edge_idx];
                    if edge.port != port || edge.targets.is_empty() {
                        *edge_idx += 1;
                        continue;
                    }
                }
                let target_idx = {
                    let tuple = &outputs[*out_idx].1;
                    inner.out_edges[*edge_idx].route(tuple)
                };
                let target = &inner.out_edges[*edge_idx].targets[target_idx];
                let remote = target.node() != self.node;
                // Admission first (local room check, or a reserved slot for
                // credit-based cross-node flow control): a stall then never
                // needs to clone or recover a consumed tuple.
                let admitted = if remote {
                    target.reserve()
                } else {
                    target.has_room()
                };
                if !admitted {
                    return Err(target.producer_wait());
                }
                // The last edge consuming this output takes the tuple by
                // move; only fan-out across several edges pays clones.
                let is_last = !inner.out_edges[*edge_idx + 1..]
                    .iter()
                    .any(|e| e.port == port && !e.targets.is_empty());
                let tuple = if is_last {
                    std::mem::replace(
                        &mut outputs[*out_idx].1,
                        Tuple::new(SimTime::ZERO, 0, Vec::new()),
                    )
                } else {
                    outputs[*out_idx].1.clone()
                };
                if remote {
                    // Deliver after the network delay: the tuple rides the
                    // target queue's in-flight buffer and its registered
                    // handler completes the push — no closure allocation.
                    target.net_enqueue(tuple, self.net_delay);
                    ctx.defer_call(self.net_delay, target.net_call());
                } else {
                    match target.push(tuple) {
                        PushOutcome::Pushed(was_empty) => {
                            if was_empty {
                                ctx.wake(target.consumer_wait());
                            }
                        }
                        PushOutcome::Full => unreachable!("admission checked above"),
                    }
                }
                *edge_idx += 1;
            }
            *out_idx += 1;
            *edge_idx = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Consume, PassThrough};
    use simos::Kernel;

    struct Fixture {
        kernel: Kernel,
        node: NodeId,
    }

    impl Fixture {
        fn new() -> Self {
            let mut kernel = Kernel::default();
            let node = kernel.add_node("n", 1);
            Fixture { kernel, node }
        }

        fn queue(&mut self, name: &str, cap: Option<usize>) -> Queue {
            Queue::new(&mut self.kernel, name, self.node, cap)
        }

        fn ctx(&self) -> SimCtx {
            SimCtx::detached(self.kernel.now())
        }
    }

    fn cell(
        fx: &mut Fixture,
        in_queue: Queue,
        stages: Vec<Stage>,
        sink: Option<Rc<RefCell<SinkCollector>>>,
    ) -> OpCellRef {
        OpCell::new(
            OpCellSpec {
                id: 0,
                name: "op#0".into(),
                query: "q".into(),
                node: fx.node,
                is_ingress: true,
                in_queue,
                sink,
                blocking: None,
                backlog_penalty: None,
                net_delay: SimDuration::from_micros(100),
                seed: 7,
                batch_max: 1,
            },
            stages,
        )
    }

    fn stage(logic: impl OperatorLogic + 'static, us: u64) -> Stage {
        Stage {
            logical: 0,
            name: "s".into(),
            logic: Box::new(logic),
            cost: CostModel::micros(us),
        }
    }

    fn tuple(key: u64) -> Tuple {
        Tuple::new(SimTime::ZERO, key, vec![])
    }

    #[test]
    fn begin_empty_queue_returns_none() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        let c = cell(&mut fx, q, vec![stage(PassThrough, 10)], None);
        let mut ctx = fx.ctx();
        assert!(c.begin(&mut ctx).item().is_none());
    }

    #[test]
    fn begin_processes_and_counts() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        q.push(tuple(1));
        let out_q = fx.queue("out", None);
        let c = cell(&mut fx, q, vec![stage(PassThrough, 10)], None);
        c.set_out_edges(vec![OutEdge::new(
            0,
            Partitioning::Forward,
            vec![out_q.clone()],
        )]);
        let mut ctx = fx.ctx();
        let item = c.begin(&mut ctx).item().unwrap();
        assert_eq!(item.cost, SimDuration::from_micros(10));
        assert!(matches!(c.finish(&mut ctx, item), FinishOutcome::Done));
        assert_eq!(out_q.len(), 1);
        assert_eq!(c.tuples_in(), 1);
        assert_eq!(c.tuples_out(), 1);
        assert_eq!(c.avg_selectivity(), Some(1.0));
        assert_eq!(c.avg_cost(), Some(10e-6));
    }

    #[test]
    fn fused_chain_costs_accumulate() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        q.push(tuple(1));
        // Stage 1 duplicates, stage 2 passes through: 2 tail outputs.
        let dup = |t: &Tuple, out: &mut Emitter| {
            out.emit(t.clone());
            out.emit(t.clone());
        };
        let c = cell(
            &mut fx,
            q,
            vec![stage(dup, 10), stage(PassThrough, 5)],
            None,
        );
        let mut ctx = fx.ctx();
        let item = c.begin(&mut ctx).item().unwrap();
        // 10us for stage 1 (one invocation) + 2 × 5us for stage 2.
        assert_eq!(item.cost, SimDuration::from_micros(20));
        assert_eq!(c.tuples_out(), 2);
    }

    #[test]
    fn bounded_queue_stalls_and_resumes() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        q.push(tuple(1));
        let out_q = fx.queue("out", Some(1));
        out_q.push(tuple(9)); // already full
        let c = cell(&mut fx, q, vec![stage(PassThrough, 10)], None);
        c.set_out_edges(vec![OutEdge::new(
            0,
            Partitioning::Forward,
            vec![out_q.clone()],
        )]);
        let mut ctx = fx.ctx();
        let item = c.begin(&mut ctx).item().unwrap();
        let FinishOutcome::Stalled { wait, item } = c.finish(&mut ctx, item) else {
            panic!("expected stall");
        };
        assert_eq!(wait, out_q.producer_wait());
        // Drain the target and resume.
        out_q.pop();
        assert!(matches!(c.resume(&mut ctx, item), FinishOutcome::Done));
        assert_eq!(out_q.len(), 1);
    }

    #[test]
    fn keyhash_routes_consistently() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        for k in 0..20 {
            q.push(tuple(k));
        }
        let t0 = fx.queue("t0", None);
        let t1 = fx.queue("t1", None);
        let c = cell(&mut fx, q, vec![stage(PassThrough, 1)], None);
        c.set_out_edges(vec![OutEdge::new(
            0,
            Partitioning::KeyHash,
            vec![t0.clone(), t1.clone()],
        )]);
        let mut ctx = fx.ctx();
        for _ in 0..20 {
            let item = c.begin(&mut ctx).item().unwrap();
            let _ = c.finish(&mut ctx, item);
        }
        assert_eq!(t0.len() + t1.len(), 20);
        assert!(!t0.is_empty() && !t1.is_empty(), "keys spread across replicas");
        // Same key always goes to the same replica: replay key 3.
        let q2 = fx.queue("in2", None);
        q2.push(tuple(3));
        q2.push(tuple(3));
        let c2 = cell(&mut fx, q2, vec![stage(PassThrough, 1)], None);
        let t0b = fx.queue("t0b", None);
        let t1b = fx.queue("t1b", None);
        c2.set_out_edges(vec![OutEdge::new(
            0,
            Partitioning::KeyHash,
            vec![t0b.clone(), t1b.clone()],
        )]);
        for _ in 0..2 {
            let item = c2.begin(&mut ctx).item().unwrap();
            let _ = c2.finish(&mut ctx, item);
        }
        assert!(t0b.len() == 2 || t1b.len() == 2);
    }

    #[test]
    fn shuffle_round_robins() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        for k in 0..10 {
            q.push(tuple(k));
        }
        let t0 = fx.queue("t0", None);
        let t1 = fx.queue("t1", None);
        let c = cell(&mut fx, q, vec![stage(PassThrough, 1)], None);
        c.set_out_edges(vec![OutEdge::new(
            0,
            Partitioning::Shuffle,
            vec![t0.clone(), t1.clone()],
        )]);
        let mut ctx = fx.ctx();
        for _ in 0..10 {
            let item = c.begin(&mut ctx).item().unwrap();
            let _ = c.finish(&mut ctx, item);
        }
        assert_eq!(t0.len(), 5);
        assert_eq!(t1.len(), 5);
    }

    #[test]
    fn egress_records_latencies() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        q.push(tuple(1));
        let sink = Rc::new(RefCell::new(SinkCollector::new("sink")));
        let c = cell(&mut fx, q, vec![stage(Consume, 5)], Some(sink.clone()));
        let mut ctx = fx.ctx();
        let item = c.begin(&mut ctx).item().unwrap();
        let _ = c.finish(&mut ctx, item);
        assert_eq!(sink.borrow().count(), 1);
    }

    #[test]
    fn blocking_injection_is_deterministic() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        for k in 0..2000 {
            q.push(tuple(k));
        }
        let mut c = OpCell::new(
            OpCellSpec {
                id: 0,
                name: "op#0".into(),
                query: "q".into(),
                node: fx.node,
                is_ingress: false,
                in_queue: q,
                sink: None,
                blocking: Some(BlockingSpec {
                    probability: 0.05,
                    max_duration: SimDuration::from_millis(200),
                }),
                backlog_penalty: None,
                net_delay: SimDuration::ZERO,
                seed: 42,
                batch_max: 1,
            },
            vec![stage(Consume, 1)],
        );
        let mut ctx = fx.ctx();
        let mut blocks = 0;
        while let Some(item) = c.begin(&mut ctx).item() {
            if let Some(d) = item.block_after {
                assert!(d <= SimDuration::from_millis(200));
                blocks += 1;
            }
            let _ = c.finish(&mut ctx, item);
        }
        // ~5% of 2000 = 100 expected.
        assert!((60..160).contains(&blocks), "blocks = {blocks}");
        assert_eq!(c.blocking_events(), blocks);
        let _ = &mut c;
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut fx = Fixture::new();
        let q = fx.queue("in", None);
        q.push(tuple(1));
        let c = cell(&mut fx, q, vec![stage(PassThrough, 10)], None);
        let mut ctx = fx.ctx();
        let item = c.begin(&mut ctx).item().unwrap();
        let _ = c.finish(&mut ctx, item);
        c.reset_stats();
        assert_eq!(c.tuples_in(), 0);
        assert_eq!(c.avg_cost(), None);
    }
}
