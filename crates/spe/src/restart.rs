//! Operator crash injection and restart supervision.
//!
//! A [`FaultPlan`] (see `lachesis-metrics`) can name operators that must
//! fail-stop at chosen sim times ([`FaultPlan::operator_crash`]).
//! [`install_chaos`] arms those crashes on the deployed [`OpCell`]s and
//! installs a per-operator restart supervisor driven by kernel callbacks:
//!
//! 1. at the scheduled instant the supervisor wakes the operator's
//!    consumer channel so even an idle (blocked) operator reaches the
//!    tuple boundary where the poison is checked and the thread exits;
//! 2. a detection poll notices the down operator after a health-check
//!    period (crash detection is never instantaneous in a real cluster);
//! 3. restart attempts follow exponential backoff with bounded retries —
//!    each attempt can itself fail via [`FaultPlan::restart_fails`] — and
//!    a successful attempt re-spawns the operator thread on the same
//!    [`OpCell`], whose input queue survived the crash (tuples that
//!    arrived while the operator was down are processed after recovery).
//!
//! Everything is deterministic: crash times come from the plan, restart
//! failures from the plan's seeded RNG, and all delays are sim-time
//! calendar entries.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis_metrics::FaultPlan;
use simos::{Kernel, SimDuration, TraceEvent, TraceTrack};

use crate::body::OpBody;
use crate::opcell::OpCellRef;
use crate::runtime::RunningQuery;

/// Restart policy for crashed operators: exponential backoff with bounded
/// retries (the Storm/Flink supervisor model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Health-check period: how long after the crash instant the
    /// supervisor notices the operator is down.
    pub detect_period: SimDuration,
    /// Backoff before the first restart attempt; doubles per failed
    /// attempt.
    pub initial_backoff: SimDuration,
    /// Maximum restart attempts per crash before the supervisor gives up
    /// and leaves the operator down (degraded, not fatal).
    pub max_retries: u32,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            detect_period: SimDuration::from_millis(50),
            initial_backoff: SimDuration::from_millis(100),
            max_retries: 5,
        }
    }
}

impl RestartPolicy {
    /// Backoff before attempt `n` (0-based): `initial_backoff * 2^n`,
    /// with the exponent capped so the arithmetic never overflows.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        self.initial_backoff.saturating_mul(1u64 << attempt.min(16))
    }
}

struct ChaosState {
    cell: OpCellRef,
    query: RunningQuery,
    plan: Rc<RefCell<FaultPlan>>,
    policy: RestartPolicy,
}

impl ChaosState {
    fn supervisor_event(&self, k: &Kernel, name: &'static str, attempt: u32) {
        let now = k.now();
        if let Some(t) = k.trace_sink() {
            t.borrow_mut().push(
                now,
                TraceEvent::Instant {
                    track: TraceTrack::Supervisor,
                    name,
                    args: vec![
                        ("op", self.cell.id() as f64),
                        ("attempt", attempt as f64),
                    ],
                },
            );
        }
    }
}

/// Arms every operator crash the plan schedules for `query`'s operators
/// (matched by physical operator name) and installs restart supervision
/// with `policy`. Call once right after [`deploy`](crate::deploy).
///
/// Operators the plan does not name are untouched. Thread-per-operator
/// deployments only: worker-pool cells have no dedicated thread to crash.
pub fn install_chaos(
    kernel: &mut Kernel,
    query: &RunningQuery,
    plan: &Rc<RefCell<FaultPlan>>,
    policy: RestartPolicy,
) {
    let now = kernel.now();
    for cell in query.cells() {
        let Some(at) = plan.borrow().crash_time(cell.name()) else {
            continue;
        };
        cell.set_crash_at(at);
        let st = Rc::new(ChaosState {
            cell: Rc::clone(cell),
            query: query.clone(),
            plan: Rc::clone(plan),
            policy,
        });
        let delay = if at > now { at - now } else { SimDuration::ZERO };
        kernel.schedule_once(delay, move |k| {
            // Nudge an idle (blocked) operator to its tuple boundary so
            // the poison is observed at the scheduled instant.
            k.wake(st.cell.in_queue().consumer_wait());
            schedule_detect(k, st);
        });
    }
}

fn schedule_detect(k: &mut Kernel, st: Rc<ChaosState>) {
    let period = st.policy.detect_period;
    k.schedule_once(period, move |k| {
        if st.cell.is_crashed() {
            st.plan.borrow_mut().record_injected("operator_crash");
            st.supervisor_event(k, "op_crash_detected", 0);
            let backoff = st.policy.backoff(0);
            schedule_attempt(k, st, 0, backoff);
        } else {
            // The thread was mid-sleep (injected I/O) or mid-tuple; wake
            // and poll again.
            k.wake(st.cell.in_queue().consumer_wait());
            schedule_detect(k, st);
        }
    });
}

fn schedule_attempt(k: &mut Kernel, st: Rc<ChaosState>, attempt: u32, backoff: SimDuration) {
    k.schedule_once(backoff, move |k| {
        let now = k.now();
        if st.plan.borrow_mut().restart_fails(st.cell.name(), now) {
            let next = attempt + 1;
            if next >= st.policy.max_retries {
                st.supervisor_event(k, "op_restart_giveup", next);
                return; // stays degraded; stats keep reporting it down
            }
            st.supervisor_event(k, "op_restart_failed", next);
            let backoff = st.policy.backoff(next);
            schedule_attempt(k, st, next, backoff);
            return;
        }
        // Re-deploy the operator thread on the surviving cell. The input
        // queue kept accumulating while the operator was down; the new
        // thread drains it from where the old one stopped.
        let trace = k.trace_sink().cloned();
        let name = format!("{}.{}", st.cell.query(), st.cell.name());
        let tid = k
            .spawn(
                st.cell.node(),
                &name,
                OpBody::traced(Rc::clone(&st.cell), trace),
            )
            .build();
        st.cell.set_thread(tid);
        st.cell.mark_restarted();
        st.query.push_thread(tid);
        st.supervisor_event(k, "op_restart", attempt);
        // Kick the fresh thread if input is already waiting.
        if !st.cell.in_queue().is_empty() {
            k.wake(st.cell.in_queue().consumer_wait());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LogicalGraph, Partitioning, Role};
    use crate::operator::{Consume, CostModel, PassThrough};
    use crate::runtime::{deploy, EngineConfig, Placement};
    use crate::tuple::Tuple;
    use simos::SimTime;

    fn pipeline(kernel: &mut Kernel, rate: f64) -> RunningQuery {
        let mut b = LogicalGraph::builder("q");
        let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
            Box::new(PassThrough)
        });
        let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
            Box::new(Consume)
        });
        b.edge(src, sink, Partitioning::Forward);
        b.source("gen", src, rate, |seq, now| Tuple::new(now, seq, vec![]));
        let node = kernel.add_node("n", 2);
        deploy(
            kernel,
            b.build().unwrap(),
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn crashed_operator_restarts_and_drains_backlog() {
        let mut kernel = Kernel::default();
        let q = pipeline(&mut kernel, 500.0);
        let plan = Rc::new(RefCell::new(FaultPlan::new(1).operator_crash("sink#0", t(2))));
        install_chaos(&mut kernel, &q, &plan, RestartPolicy::default());
        kernel.run_for(SimDuration::from_secs(10));
        let sink = q
            .cells()
            .iter()
            .find(|c| c.name() == "sink#0")
            .expect("sink cell");
        assert_eq!(sink.crash_count(), 1, "crash fired");
        assert_eq!(sink.restart_count(), 1, "restart happened");
        assert!(!sink.is_crashed(), "operator recovered");
        assert_eq!(plan.borrow().injected()["operator_crash"], 1);
        // The input queue survived the crash: everything the source kept
        // emitting during the outage was processed after recovery.
        let emitted = q.source_emitted();
        assert!(emitted > 4000, "source kept running: {emitted}");
        assert!(
            q.egress_total() > emitted - 100,
            "backlog drained after restart: egress {} of {}",
            q.egress_total(),
            emitted
        );
        assert_eq!(q.crashed_ops(), 0);
    }

    #[test]
    fn restart_failures_back_off_and_eventually_recover() {
        let mut kernel = Kernel::default();
        let q = pipeline(&mut kernel, 200.0);
        // Restarts fail unconditionally for 3 seconds after the crash.
        let plan = Rc::new(RefCell::new(
            FaultPlan::new(1)
                .operator_crash("sink#0", t(1))
                .restart_failure(Some("sink#0"), t(0), t(4), 1.0),
        ));
        let policy = RestartPolicy {
            max_retries: 20,
            ..RestartPolicy::default()
        };
        install_chaos(&mut kernel, &q, &plan, policy);
        kernel.run_for(SimDuration::from_secs(12));
        let sink = q.cells().iter().find(|c| c.name() == "sink#0").unwrap();
        assert!(!sink.is_crashed(), "recovered once the failure window closed");
        assert_eq!(sink.restart_count(), 1);
        let fails = plan.borrow().injected()["restart_failure"];
        assert!(fails >= 2, "several attempts failed first: {fails}");
    }

    #[test]
    fn bounded_retries_leave_operator_degraded() {
        let mut kernel = Kernel::default();
        let q = pipeline(&mut kernel, 200.0);
        let plan = Rc::new(RefCell::new(
            FaultPlan::new(1)
                .operator_crash("sink#0", t(1))
                .restart_failure(Some("sink#0"), t(0), t(1_000), 1.0),
        ));
        let policy = RestartPolicy {
            max_retries: 3,
            ..RestartPolicy::default()
        };
        install_chaos(&mut kernel, &q, &plan, policy);
        kernel.run_for(SimDuration::from_secs(10));
        let sink = q.cells().iter().find(|c| c.name() == "sink#0").unwrap();
        assert!(sink.is_crashed(), "supervisor gave up");
        assert_eq!(sink.restart_count(), 0);
        assert_eq!(q.crashed_ops(), 1);
        // Graceful degradation, not collapse: the ingress half of the
        // query keeps processing.
        let src = q.cells().iter().find(|c| c.name() == "src#0").unwrap();
        assert!(src.tuples_in() > 1000, "upstream still flowing");
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RestartPolicy {
            initial_backoff: SimDuration::from_millis(100),
            ..RestartPolicy::default()
        };
        assert_eq!(p.backoff(0), SimDuration::from_millis(100));
        assert_eq!(p.backoff(1), SimDuration::from_millis(200));
        assert_eq!(p.backoff(3), SimDuration::from_millis(800));
        assert_eq!(p.backoff(40), p.backoff(16), "exponent capped");
    }
}
