//! Logical query graphs: the DAG of operators and streams a user defines
//! (paper §2), before the SPE turns it into a physical DAG.

use std::fmt;

use simos::{SimDuration, SimTime};

use crate::operator::{CostModel, OperatorLogic};
use crate::tuple::Tuple;

/// Index of a logical operator within its graph.
pub type LogicalOpId = usize;

/// Role of a logical operator in the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Reads ingress tuples from a Data Source (Spout/Source).
    Ingress,
    /// A mid-query transformation.
    Transform,
    /// Delivers egress tuples to the user (Sink); the runtime records
    /// latency metrics here.
    Egress,
}

/// How an edge distributes tuples among the consumer's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Replica `i` of the producer feeds replica `i` of the consumer.
    Forward,
    /// Round-robin across consumer replicas.
    Shuffle,
    /// Hash of the tuple key selects the consumer replica (group-by).
    KeyHash,
}

/// A logical operator: a named transformation with a cost model and a
/// replica factory for its logic.
pub struct LogicalOp {
    /// Operator name, unique within the graph.
    pub name: String,
    /// Creates one logic instance per physical replica.
    pub factory: Box<dyn Fn() -> Box<dyn OperatorLogic>>,
    /// Simulated CPU cost per tuple.
    pub cost: CostModel,
    /// Fission degree (number of physical replicas).
    pub parallelism: usize,
    /// Position in the DAG.
    pub role: Role,
}

impl fmt::Debug for LogicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogicalOp")
            .field("name", &self.name)
            .field("cost", &self.cost)
            .field("parallelism", &self.parallelism)
            .field("role", &self.role)
            .finish_non_exhaustive()
    }
}

/// A logical stream between two operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicalEdge {
    /// Producer operator.
    pub from: LogicalOpId,
    /// Output port of the producer the edge binds to.
    pub port: u16,
    /// Consumer operator.
    pub to: LogicalOpId,
    /// Replica routing strategy.
    pub partitioning: Partitioning,
}

/// A Data Source external to the query (paper §2): replays or generates
/// ingress tuples at a controlled rate into an Ingress operator.
pub struct SourceSpec {
    /// Source name (for metric paths).
    pub name: String,
    /// The Ingress operator fed by this source.
    pub target: LogicalOpId,
    /// Ingress rate in tuples per second.
    pub rate_tps: f64,
    /// Generates the `seq`-th tuple with the given event time.
    pub generator: Box<dyn FnMut(u64, SimTime) -> Tuple>,
}

impl fmt::Debug for SourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceSpec")
            .field("name", &self.name)
            .field("target", &self.target)
            .field("rate_tps", &self.rate_tps)
            .finish_non_exhaustive()
    }
}

/// A complete logical query: operators, streams and data sources.
#[derive(Debug)]
pub struct LogicalGraph {
    /// Query name.
    pub name: String,
    /// Operators, indexed by [`LogicalOpId`].
    pub ops: Vec<LogicalOp>,
    /// Streams.
    pub edges: Vec<LogicalEdge>,
    /// External data sources.
    pub sources: Vec<SourceSpec>,
}

impl LogicalGraph {
    /// Starts building a query graph.
    pub fn builder(name: &str) -> GraphBuilder {
        GraphBuilder {
            graph: LogicalGraph {
                name: name.to_owned(),
                ops: Vec::new(),
                edges: Vec::new(),
                sources: Vec::new(),
            },
        }
    }

    /// Outgoing edges of an operator.
    pub fn out_edges(&self, op: LogicalOpId) -> impl Iterator<Item = &LogicalEdge> {
        self.edges.iter().filter(move |e| e.from == op)
    }

    /// Incoming edges of an operator.
    pub fn in_edges(&self, op: LogicalOpId) -> impl Iterator<Item = &LogicalEdge> {
        self.edges.iter().filter(move |e| e.to == op)
    }

    /// Validates DAG structure.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: dangling edge ids,
    /// sources targeting non-ingress operators, cycles, ingress operators
    /// with inputs, or zero parallelism.
    pub fn validate(&self) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.parallelism == 0 {
                return Err(format!("operator {} has parallelism 0", op.name));
            }
            if op.role == Role::Ingress && self.in_edges(i).next().is_some() {
                return Err(format!("ingress operator {} has an input edge", op.name));
            }
        }
        for e in &self.edges {
            if e.from >= self.ops.len() || e.to >= self.ops.len() {
                return Err(format!("edge {e:?} references unknown operator"));
            }
        }
        for s in &self.sources {
            if s.target >= self.ops.len() {
                return Err(format!("source {} targets unknown operator", s.name));
            }
            if self.ops[s.target].role != Role::Ingress {
                return Err(format!(
                    "source {} targets non-ingress operator {}",
                    s.name, self.ops[s.target].name
                ));
            }
        }
        // Cycle check: repeated removal of zero-in-degree nodes.
        let mut indeg = vec![0usize; self.ops.len()];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut stack: Vec<usize> = (0..self.ops.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(op) = stack.pop() {
            seen += 1;
            for e in self.out_edges(op) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    stack.push(e.to);
                }
            }
        }
        if seen != self.ops.len() {
            return Err(format!("query {} contains a cycle", self.name));
        }
        Ok(())
    }

    /// Looks up an operator id by name.
    pub fn op_by_name(&self, name: &str) -> Option<LogicalOpId> {
        self.ops.iter().position(|o| o.name == name)
    }

    /// DRS-style static service-demand estimate: the number of CPU cores
    /// the query needs at its configured source rates, assuming unit
    /// selectivity on every edge (each input tuple produces one output on
    /// each out-edge). An admission controller uses this as the a-priori
    /// demand of a query that has not run yet; live metrics refine it.
    pub fn estimated_cores(&self) -> f64 {
        // Propagate rates in topological order (validate() guarantees a
        // DAG; unvalidated graphs still terminate because each edge is
        // visited at most once per pass).
        let mut in_rate = vec![0.0f64; self.ops.len()];
        for s in &self.sources {
            in_rate[s.target] += s.rate_tps;
        }
        let mut indeg = vec![0usize; self.ops.len()];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut stack: Vec<usize> = (0..self.ops.len()).filter(|&i| indeg[i] == 0).collect();
        let mut demand = 0.0f64;
        while let Some(op) = stack.pop() {
            demand += in_rate[op] * self.ops[op].cost.cost(1).as_secs_f64();
            for e in self.out_edges(op) {
                in_rate[e.to] += in_rate[op];
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    stack.push(e.to);
                }
            }
        }
        demand
    }
}

/// Builder for [`LogicalGraph`] (see [`LogicalGraph::builder`]).
///
/// # Examples
///
/// ```
/// use spe::{CostModel, LogicalGraph, Partitioning, PassThrough, Role, Tuple};
///
/// let mut b = LogicalGraph::builder("demo");
/// let src = b.op("src", Role::Ingress, CostModel::micros(5), 1, || Box::new(PassThrough));
/// let sink = b.op("sink", Role::Egress, CostModel::micros(5), 1, || Box::new(spe::Consume));
/// b.edge(src, sink, Partitioning::Forward);
/// b.source("gen", src, 100.0, |seq, now| Tuple::new(now, seq, vec![]));
/// let graph = b.build().unwrap();
/// assert_eq!(graph.ops.len(), 2);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: LogicalGraph,
}

impl GraphBuilder {
    /// Adds an operator and returns its id.
    pub fn op(
        &mut self,
        name: &str,
        role: Role,
        cost: CostModel,
        parallelism: usize,
        factory: impl Fn() -> Box<dyn OperatorLogic> + 'static,
    ) -> LogicalOpId {
        self.graph.ops.push(LogicalOp {
            name: name.to_owned(),
            factory: Box::new(factory),
            cost,
            parallelism,
            role,
        });
        self.graph.ops.len() - 1
    }

    /// Adds a port-0 stream between two operators.
    pub fn edge(&mut self, from: LogicalOpId, to: LogicalOpId, partitioning: Partitioning) {
        self.edge_on_port(from, 0, to, partitioning);
    }

    /// Adds a stream bound to a specific output port of `from`.
    pub fn edge_on_port(
        &mut self,
        from: LogicalOpId,
        port: u16,
        to: LogicalOpId,
        partitioning: Partitioning,
    ) {
        self.graph.edges.push(LogicalEdge {
            from,
            port,
            to,
            partitioning,
        });
    }

    /// Attaches a data source to an ingress operator.
    pub fn source(
        &mut self,
        name: &str,
        target: LogicalOpId,
        rate_tps: f64,
        generator: impl FnMut(u64, SimTime) -> Tuple + 'static,
    ) {
        self.graph.sources.push(SourceSpec {
            name: name.to_owned(),
            target,
            rate_tps,
            generator: Box::new(generator),
        });
    }

    /// Finishes the graph.
    ///
    /// # Errors
    ///
    /// Returns the first validation problem (see [`LogicalGraph::validate`]).
    pub fn build(self) -> Result<LogicalGraph, String> {
        self.graph.validate()?;
        Ok(self.graph)
    }
}

/// Interval between consecutive source tuples at `rate_tps`.
pub fn tuple_interval(rate_tps: f64) -> SimDuration {
    SimDuration::from_secs_f64(1.0 / rate_tps.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Consume, PassThrough};

    fn simple_graph() -> GraphBuilder {
        let mut b = LogicalGraph::builder("t");
        let a = b.op("a", Role::Ingress, CostModel::micros(1), 1, || {
            Box::new(PassThrough)
        });
        let c = b.op("c", Role::Egress, CostModel::micros(1), 1, || {
            Box::new(Consume)
        });
        b.edge(a, c, Partitioning::Forward);
        b
    }

    #[test]
    fn builder_produces_valid_graph() {
        let g = simple_graph().build().unwrap();
        assert_eq!(g.ops.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.op_by_name("c"), Some(1));
        assert_eq!(g.out_edges(0).count(), 1);
        assert_eq!(g.in_edges(1).count(), 1);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = simple_graph();
        b.edge(1, 0, Partitioning::Forward); // back edge creates a cycle
        // ...but edges into an ingress are also illegal, so use transforms:
        let mut b2 = LogicalGraph::builder("cyc");
        let x = b2.op("x", Role::Transform, CostModel::micros(1), 1, || {
            Box::new(PassThrough)
        });
        let y = b2.op("y", Role::Transform, CostModel::micros(1), 1, || {
            Box::new(PassThrough)
        });
        b2.edge(x, y, Partitioning::Forward);
        b2.edge(y, x, Partitioning::Forward);
        assert!(b2.build().is_err());
        assert!(b.build().is_err());
    }

    #[test]
    fn source_must_target_ingress() {
        let mut b = simple_graph();
        b.source("bad", 1, 10.0, |s, now| Tuple::new(now, s, vec![]));
        assert!(b.build().is_err());
    }

    #[test]
    fn zero_parallelism_rejected() {
        let mut b = LogicalGraph::builder("zp");
        b.op("z", Role::Ingress, CostModel::micros(1), 0, || {
            Box::new(PassThrough)
        });
        assert!(b.build().is_err());
    }

    #[test]
    fn tuple_interval_is_inverse_rate() {
        assert_eq!(tuple_interval(1000.0), SimDuration::from_millis(1));
    }

    #[test]
    fn estimated_cores_sums_service_demand() {
        let mut b = LogicalGraph::builder("d");
        let src = b.op("src", Role::Ingress, CostModel::micros(100), 1, || {
            Box::new(PassThrough)
        });
        let mid = b.op("mid", Role::Transform, CostModel::micros(300), 1, || {
            Box::new(PassThrough)
        });
        let sink = b.op("sink", Role::Egress, CostModel::micros(100), 1, || {
            Box::new(Consume)
        });
        b.edge(src, mid, Partitioning::Forward);
        b.edge(mid, sink, Partitioning::Forward);
        b.source("gen", src, 1000.0, |s, now| Tuple::new(now, s, vec![]));
        let g = b.build().unwrap();
        // 1000 t/s × (100 + 300 + 100)µs = 0.5 cores.
        let cores = g.estimated_cores();
        assert!((cores - 0.5).abs() < 1e-9, "cores {cores}");
    }
}
