//! Stream-stream interval joins.
//!
//! A keyed interval join matches tuples of two streams whose event times
//! lie within a window of each other — the standard two-input stateful
//! operator of one-at-a-time SPEs (the paper's VS query fuses module pairs
//! this way). Because a physical operator has a single input queue, the
//! two streams are distinguished by a caller-provided discriminator.

use std::collections::HashMap;

use simos::{SimDuration, SimTime};

use crate::operator::{Emitter, OperatorLogic};
use crate::tuple::Tuple;

/// Which input stream a tuple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The left stream.
    Left,
    /// The right stream.
    Right,
}

/// A keyed interval join: a left and a right tuple with equal keys match
/// when `|event_time_left − event_time_right| <= window`. Each match emits
/// one output built by the join function; retained state is evicted by
/// event time as the streams advance.
///
/// # Examples
///
/// ```
/// use simos::{SimDuration, SimTime};
/// use spe::{Emitter, IntervalJoin, JoinSide, OperatorLogic, Tuple, Value};
///
/// // Side encoded in field 0: 0 = left, 1 = right.
/// let mut join = IntervalJoin::new(
///     SimDuration::from_secs(1),
///     |t: &Tuple| if t.values[0].as_i64() == 0 { JoinSide::Left } else { JoinSide::Right },
///     |l: &Tuple, r: &Tuple| l.derive(l.key, vec![l.values[1].clone(), r.values[1].clone()]),
/// );
/// let mut out = Emitter::new(SimTime::ZERO);
/// let left = Tuple::new(SimTime::ZERO, 7, vec![Value::I(0), Value::F(1.0)]);
/// let right = Tuple::new(SimTime::ZERO + SimDuration::from_millis(500), 7,
///                        vec![Value::I(1), Value::F(2.0)]);
/// join.process(&left, &mut out);
/// join.process(&right, &mut out);
/// assert_eq!(out.emitted(), 1);
/// ```
pub struct IntervalJoin<S, J> {
    window: SimDuration,
    side: S,
    join: J,
    left: HashMap<u64, Vec<Tuple>>,
    right: HashMap<u64, Vec<Tuple>>,
    /// High-water mark of observed event times, drives eviction.
    watermark: SimTime,
}

impl<S, J> std::fmt::Debug for IntervalJoin<S, J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntervalJoin")
            .field("window", &self.window)
            .field("left_keys", &self.left.len())
            .field("right_keys", &self.right.len())
            .finish_non_exhaustive()
    }
}

impl<S, J> IntervalJoin<S, J>
where
    S: FnMut(&Tuple) -> JoinSide,
    J: FnMut(&Tuple, &Tuple) -> Tuple,
{
    /// Creates the join with the given matching window.
    ///
    /// `side` classifies each input tuple; `join` builds the output from a
    /// matching (left, right) pair.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration, side: S, join: J) -> Self {
        assert!(!window.is_zero(), "join window must be > 0");
        IntervalJoin {
            window,
            side,
            join,
            left: HashMap::new(),
            right: HashMap::new(),
            watermark: SimTime::ZERO,
        }
    }

    /// Tuples currently retained on both sides (diagnostics).
    pub fn retained(&self) -> usize {
        self.left.values().map(Vec::len).sum::<usize>()
            + self.right.values().map(Vec::len).sum::<usize>()
    }

    fn evict(&mut self) {
        let horizon = SimTime::from_nanos(
            self.watermark
                .as_nanos()
                .saturating_sub(self.window.as_nanos()),
        );
        for store in [&mut self.left, &mut self.right] {
            store.retain(|_, v| {
                v.retain(|t| t.event_time >= horizon);
                !v.is_empty()
            });
        }
    }
}

impl<S, J> OperatorLogic for IntervalJoin<S, J>
where
    S: FnMut(&Tuple) -> JoinSide,
    J: FnMut(&Tuple, &Tuple) -> Tuple,
{
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        self.watermark = self.watermark.max(input.event_time);
        let window = self.window.as_nanos();
        let side = (self.side)(input);
        let (own, other) = match side {
            JoinSide::Left => (&mut self.left, &self.right),
            JoinSide::Right => (&mut self.right, &self.left),
        };
        if let Some(candidates) = other.get(&input.key) {
            for c in candidates {
                let dt = input.event_time.as_nanos().abs_diff(c.event_time.as_nanos());
                if dt <= window {
                    let joined = match side {
                        JoinSide::Left => (self.join)(input, c),
                        JoinSide::Right => (self.join)(c, input),
                    };
                    out.emit(joined);
                }
            }
        }
        own.entry(input.key).or_default().push(input.clone());
        self.evict();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tuple(ms: u64, key: u64, side: i64, v: f64) -> Tuple {
        Tuple::new(at(ms), key, vec![Value::I(side), Value::F(v)])
    }

    fn join() -> IntervalJoin<impl FnMut(&Tuple) -> JoinSide, impl FnMut(&Tuple, &Tuple) -> Tuple>
    {
        IntervalJoin::new(
            SimDuration::from_secs(1),
            |t: &Tuple| {
                if t.values[0].as_i64() == 0 {
                    JoinSide::Left
                } else {
                    JoinSide::Right
                }
            },
            |l: &Tuple, r: &Tuple| {
                Tuple::derive_from_many(
                    [l, r],
                    l.key,
                    vec![l.values[1].clone(), r.values[1].clone()],
                )
            },
        )
    }

    fn run(j: &mut dyn OperatorLogic, tuples: &[Tuple]) -> Vec<Tuple> {
        let mut out = Emitter::new(SimTime::ZERO);
        for t in tuples {
            j.process(t, &mut out);
        }
        out.into_outputs().into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn matches_within_window_and_key() {
        let mut j = join();
        let outs = run(
            &mut j,
            &[
                tuple(0, 1, 0, 1.0),
                tuple(500, 1, 1, 2.0),   // matches (same key, in window)
                tuple(500, 2, 1, 3.0),   // different key: no match
                tuple(5_000, 1, 1, 4.0), // out of window: no match
            ],
        );
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].values[0].as_f64(), 1.0);
        assert_eq!(outs[0].values[1].as_f64(), 2.0);
        // Output inherits the max contributor event time (§3.2).
        assert_eq!(outs[0].event_time, at(500));
    }

    #[test]
    fn join_is_symmetric_in_arrival_order() {
        let mut j1 = join();
        let a = run(&mut j1, &[tuple(0, 1, 0, 1.0), tuple(100, 1, 1, 2.0)]);
        let mut j2 = join();
        let b = run(&mut j2, &[tuple(100, 1, 1, 2.0), tuple(0, 1, 0, 1.0)]);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        // Left/right roles preserved regardless of arrival order.
        assert_eq!(a[0].values[0].as_f64(), b[0].values[0].as_f64());
        assert_eq!(a[0].values[1].as_f64(), b[0].values[1].as_f64());
    }

    #[test]
    fn one_left_matches_many_rights() {
        let mut j = join();
        let outs = run(
            &mut j,
            &[
                tuple(0, 1, 0, 1.0),
                tuple(100, 1, 1, 2.0),
                tuple(200, 1, 1, 3.0),
                tuple(300, 1, 1, 4.0),
            ],
        );
        assert_eq!(outs.len(), 3);
    }

    #[test]
    fn state_is_evicted_past_the_window() {
        let mut j = join();
        let _ = run(
            &mut j,
            &[
                tuple(0, 1, 0, 1.0),
                tuple(0, 2, 0, 1.0),
                tuple(10_000, 3, 0, 1.0), // watermark jumps far ahead
            ],
        );
        assert_eq!(j.retained(), 1, "only the fresh tuple is retained");
    }
}
