//! # spe — a stream-processing-engine substrate on `simos`
//!
//! One-at-a-time stream processing engines in the style of Apache Storm,
//! Apache Flink and Liebre, built for the Lachesis reproduction:
//!
//! * queries are [`LogicalGraph`]s of operators and streams, converted to
//!   physical DAGs by fission and (optional) fusion ([`PhysicalGraph`]);
//! * each physical operator runs on a dedicated simulated thread
//!   ([`OpBody`]) or under a user-level scheduler's worker pool
//!   ([`WorkerBody`], [`PoolScheduler`]);
//! * Storm-like engines use unbounded queues, the Flink-like engine bounded
//!   queues with producer blocking (backpressure);
//! * data sources pace ingress tuples at a configurable rate and queries
//!   report their runtime metrics to a Graphite-like store each second.
//!
//! Deploy with [`deploy`]; observe with [`RunningQuery`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod body;
mod chunk;
mod graph;
mod join;
mod opcell;
mod operator;
mod physical;
mod pool;
mod queue;
mod restart;
mod runtime;
mod sink;
mod source;
mod stats;
mod tuple;
mod window;

pub use body::OpBody;
pub use chunk::{ChunkEmitter, TupleChunk};
pub use graph::{
    tuple_interval, GraphBuilder, LogicalEdge, LogicalGraph, LogicalOp, LogicalOpId, Partitioning,
    Role, SourceSpec,
};
pub use opcell::{
    BacklogPenalty, BatchOutcome, Begin, OpBatch, Throttle,
    BlockingSpec, FinishOutcome, OpCell, OpCellRef, OpCellSpec, OutEdge, Stage, WorkItem,
};
pub use operator::{Consume, CostModel, Emitter, Filter, Map, OperatorLogic, PassThrough};
pub use physical::{PhysEdgeSpec, PhysOpId, PhysOpSpec, PhysicalGraph};
pub use pool::{PoolScheduler, PoolShared, PoolTask, PoolView, RoundRobinScheduler, WorkerBody};
pub use queue::{PushOutcome, Queue, QueueDiscipline};
pub use restart::{install_chaos, RestartPolicy};
pub use runtime::{
    deploy, metric_path, BlockingConfig, EngineConfig, Execution, OverloadMode, Placement,
    RunningQuery, SpeKind, DEFAULT_BATCH_MAX,
};
pub use sink::SinkCollector;
pub use source::{install_relay_source, install_source, SourceState};
pub use stats::{Counter, LogHistogram};
pub use join::{IntervalJoin, JoinSide};
pub use tuple::{Tuple, Value};
pub use window::{Aggregator, MeanAggregator, SlidingWindow, TumblingWindow};
