//! Thread body driving one physical operator (thread-per-operator engines).
//!
//! This is the execution model of Storm, Flink and Liebre as the paper
//! describes them (§2): each physical operator runs on a dedicated kernel
//! thread scheduled by the OS. The body loops: pop a tuple, consume its CPU
//! cost, deliver outputs; block when the input queue is empty; block on the
//! producer channel when a bounded downstream queue is full; sleep for
//! injected blocking I/O.

use simos::{Action, SimCtx, SimDuration, ThreadBody, TraceEvent, TraceHandle, TraceTrack};

use crate::opcell::{Begin, BatchOutcome, FinishOutcome, OpBatch, OpCellRef, WorkItem};

/// Spout wait strategy: how long a throttled ingress operator sleeps
/// before re-checking the pending cap (Storm's `sleep-spout-wait`).
const SPOUT_WAIT: SimDuration = SimDuration::from_millis(1);

enum OpBodyState {
    Idle,
    Working(WorkItem),
    Stalled(WorkItem),
    /// Sleep issued after delivery (injected blocking I/O).
    Blocking,
    /// Computing the current tuple of a batch.
    BatchWorking(OpBatch),
    /// A bounded downstream queue stalled a batch tuple's delivery.
    BatchStalled(OpBatch),
    /// Sleeping out injected blocking I/O between batch tuples.
    BatchBlocking(OpBatch),
}

/// The [`ThreadBody`] of one physical operator.
pub struct OpBody {
    cell: OpCellRef,
    state: OpBodyState,
    /// Trace sink for operator lifecycle spans (batch start/end, tuples
    /// processed, queue depth at poll); `None` keeps the hot loop at one
    /// branch per event.
    trace: Option<TraceHandle>,
}

impl std::fmt::Debug for OpBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpBody")
            .field("op", &self.cell.name())
            .finish_non_exhaustive()
    }
}

impl OpBody {
    /// Creates the body for `cell`.
    pub fn new(cell: OpCellRef) -> Self {
        OpBody {
            cell,
            state: OpBodyState::Idle,
            trace: None,
        }
    }

    /// Like [`new`](OpBody::new) but emitting operator lifecycle spans to
    /// `trace` (when `Some`): one `batch` span per processed tuple, with
    /// the input-queue depth observed at poll time and the number of
    /// output tuples as span arguments.
    pub fn traced(cell: OpCellRef, trace: Option<TraceHandle>) -> Self {
        OpBody {
            cell,
            state: OpBodyState::Idle,
            trace,
        }
    }

    /// Emits a span event on this operator's thread track; with tracing
    /// off this is never called (call sites gate on `trace.is_some()`).
    fn emit(&self, ctx: &SimCtx, event: impl FnOnce(TraceTrack) -> TraceEvent) {
        if let Some(t) = &self.trace {
            if let Some(tid) = self.cell.thread() {
                t.borrow_mut().push(ctx.now(), event(TraceTrack::Thread(tid)));
            }
        }
    }

    fn after_delivery(&mut self, block_after: Option<SimDuration>) -> Option<Action> {
        if let Some(d) = block_after {
            self.state = OpBodyState::Blocking;
            Some(Action::Sleep(d))
        } else {
            self.state = OpBodyState::Idle;
            None
        }
    }

    /// Advances a delivered batch to its next tuple — the batch analogue
    /// of falling through to `begin` after a scalar `finish`. Returns the
    /// compute action for the next tuple, or `None` when the chunk is
    /// exhausted (state is then `Idle`; the caller's loop re-polls).
    fn advance_batch(&mut self, ctx: &mut SimCtx, batch: OpBatch) -> Option<Action> {
        // Queue depth at this boundary: the scalar path samples it just
        // before its pop, which the uncommitted ghost tuples reproduce.
        let depth = if self.trace.is_some() {
            self.cell.in_queue().len()
        } else {
            0
        };
        match self.cell.next_in_batch(batch) {
            Some(batch) => {
                if self.trace.is_some() {
                    let outs = batch.output_count();
                    self.emit(ctx, |track| TraceEvent::SpanBegin {
                        track,
                        name: "batch",
                        args: vec![
                            ("queue_depth", depth as f64),
                            ("tuples_out", outs as f64),
                        ],
                    });
                }
                let cost = batch.cost;
                self.state = OpBodyState::BatchWorking(batch);
                Some(Action::Compute(cost))
            }
            None => {
                self.state = OpBodyState::Idle;
                None
            }
        }
    }
}

impl ThreadBody for OpBody {
    fn next_action(&mut self, ctx: &mut SimCtx) -> Action {
        loop {
            match std::mem::replace(&mut self.state, OpBodyState::Idle) {
                OpBodyState::Idle | OpBodyState::Blocking => {
                    // Injected fail-stop: crashes land at tuple boundaries
                    // only, so the input queue (owned by the cell, not this
                    // thread) survives intact for the restarted thread.
                    if self.cell.crash_due(ctx.now()) {
                        if self.trace.is_some() {
                            self.emit(ctx, |track| TraceEvent::Instant {
                                track,
                                name: "op_crash",
                                args: vec![("op", self.cell.id() as f64)],
                            });
                        }
                        self.cell.mark_crashed();
                        return Action::Exit;
                    }
                    let depth = if self.trace.is_some() {
                        self.cell.in_queue().len()
                    } else {
                        0
                    };
                    match self.cell.begin(ctx) {
                        Begin::Item(item) => {
                            if self.trace.is_some() {
                                let outs = item.output_count();
                                self.emit(ctx, |track| TraceEvent::SpanBegin {
                                    track,
                                    name: "batch",
                                    args: vec![
                                        ("queue_depth", depth as f64),
                                        ("tuples_out", outs as f64),
                                    ],
                                });
                            }
                            let cost = item.cost;
                            self.state = OpBodyState::Working(item);
                            return Action::Compute(cost);
                        }
                        Begin::Batch(batch) => {
                            if self.trace.is_some() {
                                let outs = batch.output_count();
                                self.emit(ctx, |track| TraceEvent::SpanBegin {
                                    track,
                                    name: "batch",
                                    args: vec![
                                        ("queue_depth", depth as f64),
                                        ("tuples_out", outs as f64),
                                    ],
                                });
                            }
                            let cost = batch.cost;
                            self.state = OpBodyState::BatchWorking(batch);
                            return Action::Compute(cost);
                        }
                        Begin::Empty => {
                            return Action::Block(self.cell.in_queue().consumer_wait())
                        }
                        Begin::Throttled => return Action::Sleep(SPOUT_WAIT),
                    }
                }
                OpBodyState::Working(item) => {
                    let block_after = item.block_after;
                    match self.cell.finish(ctx, item) {
                        FinishOutcome::Done => {
                            if self.trace.is_some() {
                                self.emit(ctx, |track| TraceEvent::SpanEnd {
                                    track,
                                    name: "batch",
                                    args: Vec::new(),
                                });
                            }
                            if let Some(a) = self.after_delivery(block_after) {
                                return a;
                            }
                        }
                        FinishOutcome::Stalled { wait, item } => {
                            self.state = OpBodyState::Stalled(item);
                            return Action::Block(wait);
                        }
                    }
                }
                OpBodyState::Stalled(item) => {
                    let block_after = item.block_after;
                    match self.cell.resume(ctx, item) {
                        FinishOutcome::Done => {
                            if self.trace.is_some() {
                                self.emit(ctx, |track| TraceEvent::SpanEnd {
                                    track,
                                    name: "batch",
                                    args: Vec::new(),
                                });
                            }
                            if let Some(a) = self.after_delivery(block_after) {
                                return a;
                            }
                        }
                        FinishOutcome::Stalled { wait, item } => {
                            self.state = OpBodyState::Stalled(item);
                            return Action::Block(wait);
                        }
                    }
                }
                OpBodyState::BatchWorking(batch) => {
                    match self.cell.finish_batch(ctx, batch) {
                        BatchOutcome::Delivered(batch) => {
                            if self.trace.is_some() {
                                self.emit(ctx, |track| TraceEvent::SpanEnd {
                                    track,
                                    name: "batch",
                                    args: Vec::new(),
                                });
                            }
                            if let Some(d) = batch.block_after {
                                self.state = OpBodyState::BatchBlocking(batch);
                                return Action::Sleep(d);
                            }
                            if let Some(a) = self.advance_batch(ctx, batch) {
                                return a;
                            }
                        }
                        BatchOutcome::Stalled { wait, batch } => {
                            self.state = OpBodyState::BatchStalled(batch);
                            return Action::Block(wait);
                        }
                    }
                }
                OpBodyState::BatchStalled(batch) => {
                    match self.cell.resume_batch(ctx, batch) {
                        BatchOutcome::Delivered(batch) => {
                            if self.trace.is_some() {
                                self.emit(ctx, |track| TraceEvent::SpanEnd {
                                    track,
                                    name: "batch",
                                    args: Vec::new(),
                                });
                            }
                            if let Some(d) = batch.block_after {
                                self.state = OpBodyState::BatchBlocking(batch);
                                return Action::Sleep(d);
                            }
                            if let Some(a) = self.advance_batch(ctx, batch) {
                                return a;
                            }
                        }
                        BatchOutcome::Stalled { wait, batch } => {
                            self.state = OpBodyState::BatchStalled(batch);
                            return Action::Block(wait);
                        }
                    }
                }
                OpBodyState::BatchBlocking(batch) => {
                    // Woke from injected blocking I/O between batch tuples
                    // (an armed crash cannot be pending: batches only start
                    // with none armed, and arming happens pre-run).
                    if let Some(a) = self.advance_batch(ctx, batch) {
                        return a;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CostModel, PassThrough};
    use crate::opcell::{OpCell, OpCellSpec, OutEdge, Stage};
    use crate::queue::Queue;
    use crate::tuple::Tuple;
    use simos::{Kernel, SimTime};

    #[test]
    fn body_pipelines_tuples_through_kernel() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q_in = Queue::new(&mut kernel, "in", node, None);
        let q_out = Queue::new(&mut kernel, "out", node, None);
        let cell = OpCell::new(
            OpCellSpec {
                id: 0,
                name: "op#0".into(),
                query: "q".into(),
                node,
                is_ingress: true,
                in_queue: q_in.clone(),
                sink: None,
                blocking: None,
                backlog_penalty: None,
                net_delay: SimDuration::ZERO,
                seed: 1,
                batch_max: 1,
            },
            vec![Stage {
                logical: 0,
                name: "op".into(),
                logic: Box::new(PassThrough),
                cost: CostModel::micros(100),
            }],
        );
        cell.set_out_edges(vec![OutEdge::new(
            0,
            crate::graph::Partitioning::Forward,
            vec![q_out.clone()],
        )]);
        kernel
            .spawn(node, "op-thread", OpBody::new(cell.clone()))
            .build();
        for k in 0..5 {
            q_in.push(Tuple::new(SimTime::ZERO, k, vec![]));
        }
        kernel.run_for(SimDuration::from_millis(10));
        assert_eq!(q_out.len(), 5);
        assert_eq!(cell.tuples_in(), 5);
        // Thread is now blocked on the empty input queue; a new push with a
        // wake resumes it.
        q_in.push(Tuple::new(kernel.now(), 99, vec![]));
        kernel.wake(q_in.consumer_wait());
        kernel.run_for(SimDuration::from_millis(1));
        assert_eq!(q_out.len(), 6);
    }
}
