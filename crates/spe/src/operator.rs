//! Operator logic: the user-defined transformation a physical operator
//! applies to each tuple, plus its (simulated) CPU cost model.
//!
//! An operator is characterised by its *cost* (average time to process a
//! tuple) and *selectivity* (average outputs per input) — paper §2. Here
//! selectivity emerges from the logic's emissions and cost from the
//! [`CostModel`].

use std::fmt;

use simos::{SimDuration, SimTime};

use crate::chunk::{ChunkEmitter, TupleChunk};
use crate::tuple::Tuple;

/// Output collector handed to [`OperatorLogic::process`].
///
/// Tuples are emitted on numbered ports; edges of the query graph bind to a
/// port (port 0 by default), which is how splitter operators route different
/// record types down different branches.
#[derive(Debug)]
pub struct Emitter {
    now: SimTime,
    buf: Vec<(u16, Tuple)>,
}

impl Emitter {
    /// Creates an emitter; useful for exercising logic outside an engine
    /// (unit tests, benchmarks).
    pub fn new(now: SimTime) -> Self {
        Emitter {
            now,
            buf: Vec::new(),
        }
    }

    /// Creates an emitter backed by a recycled buffer (cleared first). The
    /// engine hands each stage invocation the same buffer so the per-tuple
    /// hot path does not allocate.
    pub fn with_buffer(now: SimTime, mut buf: Vec<(u16, Tuple)>) -> Self {
        buf.clear();
        Emitter { now, buf }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Emits a tuple on port 0.
    pub fn emit(&mut self, tuple: Tuple) {
        self.buf.push((0, tuple));
    }

    /// Emits a tuple on the given port.
    pub fn emit_to(&mut self, port: u16, tuple: Tuple) {
        self.buf.push((port, tuple));
    }

    /// Number of tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the emitter, returning the `(port, tuple)` outputs.
    pub fn into_outputs(self) -> Vec<(u16, Tuple)> {
        self.buf
    }
}

/// The per-tuple transformation of an operator.
///
/// Implementations are stateful (windows, Bloom filters, counters); each
/// physical replica gets its own instance from the logical operator's
/// factory.
pub trait OperatorLogic {
    /// Processes one input tuple, emitting any outputs.
    fn process(&mut self, input: &Tuple, out: &mut Emitter);

    /// Processes a whole chunk of inputs with one dynamic dispatch. The
    /// default delegates to [`process`](OperatorLogic::process) per tuple,
    /// so custom bodies keep working unchanged; built-in logics override
    /// it with a monomorphic loop the compiler can inline and vectorize.
    ///
    /// Implementations **must** call [`ChunkEmitter::start_tuple`] exactly
    /// once per input, in order, before emitting that input's outputs —
    /// the engine relies on the recorded bounds to replay delivery, cost
    /// and latency accounting per tuple.
    ///
    /// Note [`Emitter::now`] inside a batch reads the chunk-drain instant,
    /// not each tuple's own processing boundary; logic that consults it
    /// should run with `batch_max = 1`. No built-in logic reads it.
    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for t in chunk.iter() {
            out.start_tuple();
            self.process(t, out.emitter());
        }
    }
}

impl<F> OperatorLogic for F
where
    F: FnMut(&Tuple, &mut Emitter),
{
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        self(input, out)
    }

    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for t in chunk.iter() {
            out.start_tuple();
            self(t, out.emitter());
        }
    }
}

/// How much simulated CPU a tuple costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// A fixed cost per input tuple.
    Fixed(SimDuration),
    /// A base cost plus a cost per emitted output tuple.
    PerOutput {
        /// Cost charged for every input tuple.
        base: SimDuration,
        /// Additional cost per emitted output.
        per_output: SimDuration,
    },
}

impl CostModel {
    /// The cost of processing one tuple that produced `outputs` tuples.
    pub fn cost(&self, outputs: usize) -> SimDuration {
        match *self {
            CostModel::Fixed(c) => c,
            CostModel::PerOutput { base, per_output } => base + per_output * outputs as u64,
        }
    }

    /// Convenience constructor for a fixed cost in microseconds.
    pub fn micros(us: u64) -> CostModel {
        CostModel::Fixed(SimDuration::from_micros(us))
    }
}

/// A logic that forwards every tuple unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThrough;

impl OperatorLogic for PassThrough {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        out.emit(input.clone());
    }

    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for t in chunk.iter() {
            out.start_tuple();
            out.emit(t.clone());
        }
    }
}

/// A logic that forwards tuples satisfying a predicate.
pub struct Filter<P>(pub P);

impl<P> fmt::Debug for Filter<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Filter")
    }
}

impl<P: FnMut(&Tuple) -> bool> OperatorLogic for Filter<P> {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        if (self.0)(input) {
            out.emit(input.clone());
        }
    }

    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for t in chunk.iter() {
            out.start_tuple();
            if (self.0)(t) {
                out.emit(t.clone());
            }
        }
    }
}

/// A logic that transforms each tuple one-to-one.
pub struct Map<F>(pub F);

impl<F> fmt::Debug for Map<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Map")
    }
}

impl<F: FnMut(&Tuple) -> Tuple> OperatorLogic for Map<F> {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        out.emit((self.0)(input));
    }

    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for t in chunk.iter() {
            out.start_tuple();
            out.emit((self.0)(t));
        }
    }
}

/// A logic that consumes tuples and emits nothing (egress endpoint work,
/// e.g. publishing to an external broker, happens via its cost model).
#[derive(Debug, Clone, Copy, Default)]
pub struct Consume;

impl OperatorLogic for Consume {
    fn process(&mut self, _input: &Tuple, _out: &mut Emitter) {}

    fn process_batch(&mut self, chunk: &TupleChunk, out: &mut ChunkEmitter) {
        for _ in 0..chunk.len() {
            out.start_tuple();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> Tuple {
        Tuple::new(SimTime::ZERO, 7, vec![1.0.into()])
    }

    fn run(logic: &mut dyn OperatorLogic, t: &Tuple) -> Vec<(u16, Tuple)> {
        let mut e = Emitter::new(SimTime::ZERO);
        logic.process(t, &mut e);
        e.into_outputs()
    }

    #[test]
    fn pass_through_forwards() {
        let out = run(&mut PassThrough, &tuple());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1, tuple());
    }

    #[test]
    fn filter_drops_and_keeps() {
        let mut keep = Filter(|_: &Tuple| true);
        let mut drop = Filter(|_: &Tuple| false);
        assert_eq!(run(&mut keep, &tuple()).len(), 1);
        assert_eq!(run(&mut drop, &tuple()).len(), 0);
    }

    #[test]
    fn map_transforms() {
        let mut m = Map(|t: &Tuple| t.derive(t.key * 2, vec![]));
        let out = run(&mut m, &tuple());
        assert_eq!(out[0].1.key, 14);
    }

    #[test]
    fn emitter_ports() {
        let mut e = Emitter::new(SimTime::ZERO);
        e.emit(tuple());
        e.emit_to(3, tuple());
        assert_eq!(e.emitted(), 2);
        let out = e.into_outputs();
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 3);
    }

    #[test]
    fn cost_models() {
        assert_eq!(CostModel::micros(5).cost(100), SimDuration::from_micros(5));
        let per = CostModel::PerOutput {
            base: SimDuration::from_micros(10),
            per_output: SimDuration::from_micros(2),
        };
        assert_eq!(per.cost(0), SimDuration::from_micros(10));
        assert_eq!(per.cost(5), SimDuration::from_micros(20));
    }

    #[test]
    fn closures_are_logic() {
        let mut double = |t: &Tuple, out: &mut Emitter| {
            out.emit(t.clone());
            out.emit(t.clone());
        };
        let out = run(&mut double, &tuple());
        assert_eq!(out.len(), 2);
    }
}
