//! Worker-pool execution: the substrate for user-level streaming schedulers.
//!
//! UL-SS baselines (EdgeWise, Haren) do not bind operators to threads.
//! Instead a small pool of worker threads repeatedly asks a
//! [`PoolScheduler`] which operator to run next and for how many tuples —
//! exactly the model of the paper's §1/§2. The scheduler sees *fresh*
//! operator state (queue lengths, costs) because it runs inside the engine,
//! the advantage Haren enjoys over Lachesis in Fig. 14.
//!
//! The known drawback reproduced here (paper §6.4): when an operator blocks
//! (injected I/O), the *worker* sleeps, stalling a whole execution slot.

use std::cell::RefCell;
use std::rc::Rc;

use simos::{Action, SimCtx, SimDuration, SimTime, ThreadBody, WaitId};

use crate::opcell::{Begin, BatchOutcome, FinishOutcome, OpBatch, OpCellRef, WorkItem};

/// What the pool scheduler sees when picking work.
pub struct PoolView<'a> {
    /// All operator cells of the engine, by pool index.
    pub ops: &'a [OpCellRef],
    /// Whether an operator is currently claimed by a worker.
    pub in_flight: &'a [bool],
    /// Current simulated time.
    pub now: SimTime,
}

impl std::fmt::Debug for PoolView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolView")
            .field("ops", &self.ops.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

/// A task assignment: which operator to run and for at most how many tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolTask {
    /// Pool index of the operator.
    pub op: usize,
    /// Maximum tuples to process before asking again.
    pub batch: usize,
}

/// A user-level scheduling strategy driving the worker pool.
pub trait PoolScheduler {
    /// Picks the next task for idle worker `worker`, or `None` if there is
    /// nothing runnable for it (the worker then sleeps until new input
    /// arrives). Schedulers that partition operators among workers (Haren)
    /// key off the worker index; others ignore it.
    fn next_task(&mut self, view: &PoolView<'_>, worker: usize) -> Option<PoolTask>;

    /// Notifies that a worker finished (or abandoned) a task.
    fn task_done(&mut self, op: usize, processed: usize);
}

/// State shared between the workers of one engine instance.
pub struct PoolShared {
    /// Operator cells, by pool index.
    pub ops: Vec<OpCellRef>,
    /// Claim flags preventing two workers from running the same operator.
    pub in_flight: RefCell<Vec<bool>>,
    /// Channel idle workers sleep on; pushes and task completions wake it.
    pub wait: WaitId,
    /// The scheduling strategy.
    pub scheduler: RefCell<Box<dyn PoolScheduler>>,
    /// CPU cost charged for each scheduling decision (pick overhead).
    pub pick_cost: SimDuration,
    /// CPU cost charged when a worker switches to a *different* operator
    /// than it last executed: a user-level operator switch repopulates
    /// caches just like a kernel context switch does.
    pub op_switch_cost: SimDuration,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field("ops", &self.ops.len())
            .field("wait", &self.wait)
            .field("pick_cost", &self.pick_cost)
            .finish_non_exhaustive()
    }
}

enum WorkerState {
    Idle,
    /// Charged the pick cost; about to start the claimed task.
    Claimed { task: PoolTask, processed: usize },
    Working {
        task: PoolTask,
        processed: usize,
        item: WorkItem,
    },
    Stalled {
        task: PoolTask,
        processed: usize,
        item: WorkItem,
    },
    /// Sleeping out an injected blocking I/O inside a task.
    Blocking { task: PoolTask, processed: usize },
    /// Computing the current tuple of a batch (chunked execution within
    /// the scheduler-granted quantum).
    BatchWorking {
        task: PoolTask,
        processed: usize,
        batch: OpBatch,
    },
    /// A bounded downstream queue stalled a batch tuple's delivery.
    BatchStalled {
        task: PoolTask,
        processed: usize,
        batch: OpBatch,
    },
    /// Sleeping out injected blocking I/O between batch tuples.
    BatchBlocking {
        task: PoolTask,
        processed: usize,
        batch: OpBatch,
    },
}

/// The [`ThreadBody`] of one pool worker.
pub struct WorkerBody {
    pool: Rc<PoolShared>,
    id: usize,
    state: WorkerState,
    last_op: Option<usize>,
}

impl std::fmt::Debug for WorkerBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerBody").finish_non_exhaustive()
    }
}

impl WorkerBody {
    /// Creates worker number `id` for the pool.
    pub fn new(pool: Rc<PoolShared>, id: usize) -> Self {
        WorkerBody {
            pool,
            id,
            state: WorkerState::Idle,
            last_op: None,
        }
    }

    /// Advances a delivered batch to its next tuple; on exhaustion the
    /// worker returns to `Claimed` (quantum check, then next chunk or
    /// task end).
    fn advance_batch(
        &mut self,
        task: PoolTask,
        processed: usize,
        batch: OpBatch,
    ) -> Option<Action> {
        match self.pool.ops[task.op].next_in_batch(batch) {
            Some(batch) => {
                let cost = batch.cost;
                self.state = WorkerState::BatchWorking {
                    task,
                    processed,
                    batch,
                };
                Some(Action::Compute(cost))
            }
            None => {
                self.state = WorkerState::Claimed { task, processed };
                None
            }
        }
    }

    fn end_task(&mut self, ctx: &mut SimCtx, task: PoolTask, processed: usize) {
        self.pool.in_flight.borrow_mut()[task.op] = false;
        self.pool
            .scheduler
            .borrow_mut()
            .task_done(task.op, processed);
        // Other idle workers may now be able to claim this operator.
        ctx.wake(self.pool.wait);
        self.state = WorkerState::Idle;
    }
}

impl ThreadBody for WorkerBody {
    fn next_action(&mut self, ctx: &mut SimCtx) -> Action {
        loop {
            match std::mem::replace(&mut self.state, WorkerState::Idle) {
                WorkerState::Idle => {
                    let task = {
                        let in_flight = self.pool.in_flight.borrow();
                        let view = PoolView {
                            ops: &self.pool.ops,
                            in_flight: &in_flight,
                            now: ctx.now(),
                        };
                        self.pool.scheduler.borrow_mut().next_task(&view, self.id)
                    };
                    match task {
                        None => return Action::Block(self.pool.wait),
                        Some(task) => {
                            debug_assert!(task.op < self.pool.ops.len());
                            debug_assert!(task.batch > 0);
                            self.pool.in_flight.borrow_mut()[task.op] = true;
                            self.state = WorkerState::Claimed { task, processed: 0 };
                            let mut cost = self.pool.pick_cost;
                            if self.last_op != Some(task.op) {
                                cost += self.pool.op_switch_cost;
                            }
                            self.last_op = Some(task.op);
                            if !cost.is_zero() {
                                return Action::Compute(cost);
                            }
                        }
                    }
                }
                WorkerState::Claimed { task, processed } => {
                    if processed >= task.batch {
                        self.end_task(ctx, task, processed);
                        continue;
                    }
                    // A chunk may not overrun the quantum the scheduler
                    // granted, so cap it at the task's remainder.
                    let limit = task.batch - processed;
                    match self.pool.ops[task.op].begin_limited(ctx, limit) {
                        // Queue drained or spout throttled: task over (the
                        // scheduler will rotate to other work).
                        Begin::Empty | Begin::Throttled => {
                            self.end_task(ctx, task, processed);
                        }
                        Begin::Item(item) => {
                            let cost = item.cost;
                            self.state = WorkerState::Working {
                                task,
                                processed,
                                item,
                            };
                            return Action::Compute(cost);
                        }
                        Begin::Batch(batch) => {
                            let cost = batch.cost;
                            self.state = WorkerState::BatchWorking {
                                task,
                                processed,
                                batch,
                            };
                            return Action::Compute(cost);
                        }
                    }
                }
                WorkerState::Working {
                    task,
                    processed,
                    item,
                } => {
                    let block_after = item.block_after;
                    match self.pool.ops[task.op].finish(ctx, item) {
                        FinishOutcome::Done => {
                            let processed = processed + 1;
                            if let Some(d) = block_after {
                                self.state = WorkerState::Blocking { task, processed };
                                return Action::Sleep(d);
                            }
                            self.state = WorkerState::Claimed { task, processed };
                        }
                        FinishOutcome::Stalled { wait, item } => {
                            self.state = WorkerState::Stalled {
                                task,
                                processed,
                                item,
                            };
                            return Action::Block(wait);
                        }
                    }
                }
                WorkerState::Stalled {
                    task,
                    processed,
                    item,
                } => {
                    let block_after = item.block_after;
                    match self.pool.ops[task.op].resume(ctx, item) {
                        FinishOutcome::Done => {
                            let processed = processed + 1;
                            if let Some(d) = block_after {
                                self.state = WorkerState::Blocking { task, processed };
                                return Action::Sleep(d);
                            }
                            self.state = WorkerState::Claimed { task, processed };
                        }
                        FinishOutcome::Stalled { wait, item } => {
                            self.state = WorkerState::Stalled {
                                task,
                                processed,
                                item,
                            };
                            return Action::Block(wait);
                        }
                    }
                }
                WorkerState::Blocking { task, processed } => {
                    self.state = WorkerState::Claimed { task, processed };
                }
                WorkerState::BatchWorking {
                    task,
                    processed,
                    batch,
                } => match self.pool.ops[task.op].finish_batch(ctx, batch) {
                    BatchOutcome::Delivered(batch) => {
                        let processed = processed + 1;
                        if let Some(d) = batch.block_after {
                            self.state = WorkerState::BatchBlocking {
                                task,
                                processed,
                                batch,
                            };
                            return Action::Sleep(d);
                        }
                        if let Some(a) = self.advance_batch(task, processed, batch) {
                            return a;
                        }
                    }
                    BatchOutcome::Stalled { wait, batch } => {
                        self.state = WorkerState::BatchStalled {
                            task,
                            processed,
                            batch,
                        };
                        return Action::Block(wait);
                    }
                },
                WorkerState::BatchStalled {
                    task,
                    processed,
                    batch,
                } => match self.pool.ops[task.op].resume_batch(ctx, batch) {
                    BatchOutcome::Delivered(batch) => {
                        let processed = processed + 1;
                        if let Some(d) = batch.block_after {
                            self.state = WorkerState::BatchBlocking {
                                task,
                                processed,
                                batch,
                            };
                            return Action::Sleep(d);
                        }
                        if let Some(a) = self.advance_batch(task, processed, batch) {
                            return a;
                        }
                    }
                    BatchOutcome::Stalled { wait, batch } => {
                        self.state = WorkerState::BatchStalled {
                            task,
                            processed,
                            batch,
                        };
                        return Action::Block(wait);
                    }
                },
                WorkerState::BatchBlocking {
                    task,
                    processed,
                    batch,
                } => {
                    if let Some(a) = self.advance_batch(task, processed, batch) {
                        return a;
                    }
                }
            }
        }
    }
}

/// A trivial pool scheduler processing operators round-robin; useful as a
/// test double and as the simplest possible UL-SS.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    next: usize,
    batch: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler with the given batch size.
    pub fn new(batch: usize) -> Self {
        RoundRobinScheduler {
            next: 0,
            batch: batch.max(1),
        }
    }
}

impl PoolScheduler for RoundRobinScheduler {
    fn next_task(&mut self, view: &PoolView<'_>, _worker: usize) -> Option<PoolTask> {
        let n = view.ops.len();
        for i in 0..n {
            let op = (self.next + i) % n;
            if !view.in_flight[op]
                && !view.ops[op].in_queue().is_empty()
                && !view.ops[op].throttled()
            {
                self.next = (op + 1) % n;
                return Some(PoolTask {
                    op,
                    batch: self.batch,
                });
            }
        }
        None
    }

    fn task_done(&mut self, _op: usize, _processed: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CostModel, PassThrough};
    use crate::opcell::{OpCell, OpCellSpec, OutEdge, Stage};
    use crate::queue::Queue;
    use crate::tuple::Tuple;
    use simos::{Kernel, SimTime};

    fn make_cell(_kernel: &mut Kernel, node: simos::NodeId, id: usize, q: Queue) -> OpCellRef {
        OpCell::new(
            OpCellSpec {
                id,
                name: format!("op#{id}"),
                query: "q".into(),
                node,
                is_ingress: true,
                in_queue: q,
                sink: None,
                blocking: None,
                backlog_penalty: None,
                net_delay: SimDuration::ZERO,
                seed: id as u64,
                batch_max: 1,
            },
            vec![Stage {
                logical: id,
                name: format!("op{id}"),
                logic: Box::new(PassThrough),
                cost: CostModel::micros(50),
            }],
        )
    }

    #[test]
    fn pool_processes_all_queues() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 2);
        let pool_wait = kernel.new_wait_channel();
        let mut queues = Vec::new();
        let mut cells = Vec::new();
        let out = Queue::new(&mut kernel, "out", node, None);
        for i in 0..3 {
            let q = Queue::new(&mut kernel, &format!("q{i}"), node, None);
            q.set_consumer_wait(pool_wait);
            let cell = make_cell(&mut kernel, node, i, q.clone());
            cell.set_out_edges(vec![OutEdge::new(
                0,
                crate::graph::Partitioning::Forward,
                vec![out.clone()],
            )]);
            queues.push(q);
            cells.push(cell);
        }
        let pool = Rc::new(PoolShared {
            ops: cells.clone(),
            in_flight: RefCell::new(vec![false; 3]),
            wait: pool_wait,
            scheduler: RefCell::new(Box::new(RoundRobinScheduler::new(4))),
            pick_cost: SimDuration::from_micros(2),
            op_switch_cost: SimDuration::from_micros(10),
        });
        for w in 0..2 {
            kernel
                .spawn(node, &format!("worker{w}"), WorkerBody::new(Rc::clone(&pool), w))
                .build();
        }
        for (i, q) in queues.iter().enumerate() {
            for k in 0..10 {
                q.push(Tuple::new(SimTime::ZERO, (i * 100 + k) as u64, vec![]));
            }
        }
        kernel.wake(pool_wait);
        kernel.run_for(SimDuration::from_millis(50));
        assert_eq!(out.len(), 30, "all tuples processed by the pool");
        for c in &cells {
            assert_eq!(c.tuples_in(), 10);
        }
        // Workers idle now; a late push must wake them.
        queues[1].push(Tuple::new(kernel.now(), 999, vec![]));
        kernel.wake(pool_wait);
        kernel.run_for(SimDuration::from_millis(5));
        assert_eq!(out.len(), 31);
    }

    #[test]
    fn no_two_workers_share_an_operator() {
        // With one op and two workers, the in_flight flag must serialize.
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 2);
        let pool_wait = kernel.new_wait_channel();
        let q = Queue::new(&mut kernel, "q", node, None);
        q.set_consumer_wait(pool_wait);
        let cell = make_cell(&mut kernel, node, 0, q.clone());
        let pool = Rc::new(PoolShared {
            ops: vec![cell.clone()],
            in_flight: RefCell::new(vec![false]),
            wait: pool_wait,
            scheduler: RefCell::new(Box::new(RoundRobinScheduler::new(2))),
            pick_cost: SimDuration::ZERO,
            op_switch_cost: SimDuration::ZERO,
        });
        for w in 0..2 {
            kernel
                .spawn(node, &format!("worker{w}"), WorkerBody::new(Rc::clone(&pool), w))
                .build();
        }
        for k in 0..20 {
            q.push(Tuple::new(SimTime::ZERO, k, vec![]));
        }
        kernel.wake(pool_wait);
        kernel.run_for(SimDuration::from_millis(20));
        assert_eq!(cell.tuples_in(), 20);
    }
}
