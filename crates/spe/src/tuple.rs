//! Stream tuples.
//!
//! A tuple carries two timestamps used by the paper's performance metrics
//! (§3.2): `event_time`, when the Data Source produced it (end-to-end
//! latency), and `ingress_time`, when an Ingress operator ingested it
//! (processing latency). Derived tuples inherit the *maximum* contributing
//! timestamps, so aggregate outputs report the latency of their newest
//! input, matching the paper's definition.

use std::sync::Arc;

use simos::SimTime;

/// A field value. Streams are schemaful in real SPEs; a small dynamic value
/// type keeps the substrate engine monomorphic while letting each workload
/// define its own record layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 64-bit float.
    F(f64),
    /// A 64-bit signed integer.
    I(i64),
    /// An interned string (cheap to clone).
    S(Arc<str>),
}

impl Value {
    /// Returns the float value, converting integers.
    ///
    /// # Panics
    ///
    /// Panics if the value is a string.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F(v) => *v,
            Value::I(v) => *v as f64,
            Value::S(s) => panic!("expected numeric value, found string {s:?}"),
        }
    }

    /// Returns the integer value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I(v) => *v,
            other => panic!("expected integer value, found {other:?}"),
        }
    }

    /// Returns the string value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a string.
    pub fn as_str(&self) -> &str {
        match self {
            Value::S(s) => s,
            other => panic!("expected string value, found {other:?}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::S(Arc::from(v))
    }
}

/// A stream tuple: timestamps, a routing key and a payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// When the Data Source produced the tuple.
    pub event_time: SimTime,
    /// When an Ingress operator ingested it (stamped by the runtime).
    pub ingress_time: SimTime,
    /// Key used by key-partitioned (group-by) routing.
    pub key: u64,
    /// Field values.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a fresh source tuple with the given event time.
    pub fn new(event_time: SimTime, key: u64, values: Vec<Value>) -> Self {
        Tuple {
            event_time,
            ingress_time: event_time,
            key,
            values,
        }
    }

    /// Creates an output tuple derived from `self`, inheriting timestamps.
    pub fn derive(&self, key: u64, values: Vec<Value>) -> Tuple {
        Tuple {
            event_time: self.event_time,
            ingress_time: self.ingress_time,
            key,
            values,
        }
    }

    /// Creates a tuple derived from several inputs (e.g. a window close):
    /// timestamps are the maximum over the contributors, per §3.2.
    ///
    /// # Panics
    ///
    /// Panics if `contributors` is empty.
    pub fn derive_from_many<'a>(
        contributors: impl IntoIterator<Item = &'a Tuple>,
        key: u64,
        values: Vec<Value>,
    ) -> Tuple {
        let mut event_time = None;
        let mut ingress_time = None;
        for t in contributors {
            event_time = Some(event_time.map_or(t.event_time, |e: SimTime| e.max(t.event_time)));
            ingress_time =
                Some(ingress_time.map_or(t.ingress_time, |i: SimTime| i.max(t.ingress_time)));
        }
        Tuple {
            event_time: event_time.expect("derive_from_many: no contributors"),
            ingress_time: ingress_time.expect("derive_from_many: no contributors"),
            key,
            values,
        }
    }

    /// Field accessor shorthand.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn field(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn derive_inherits_timestamps() {
        let mut t = Tuple::new(at(5), 1, vec![Value::F(1.0)]);
        t.ingress_time = at(7);
        let d = t.derive(2, vec![]);
        assert_eq!(d.event_time, at(5));
        assert_eq!(d.ingress_time, at(7));
        assert_eq!(d.key, 2);
    }

    #[test]
    fn derive_from_many_takes_max_timestamps() {
        let a = Tuple::new(at(5), 1, vec![]);
        let mut b = Tuple::new(at(9), 1, vec![]);
        b.ingress_time = at(11);
        let w = Tuple::derive_from_many([&a, &b], 3, vec![Value::I(2)]);
        assert_eq!(w.event_time, at(9));
        assert_eq!(w.ingress_time, at(11));
    }

    #[test]
    #[should_panic]
    fn derive_from_none_panics() {
        let _ = Tuple::derive_from_many(std::iter::empty(), 0, vec![]);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(2.5).as_f64(), 2.5);
        assert_eq!(Value::from(3i64).as_i64(), 3);
        assert_eq!(Value::from(3i64).as_f64(), 3.0);
        assert_eq!(Value::from("x").as_str(), "x");
    }

    #[test]
    #[should_panic]
    fn string_as_f64_panics() {
        let _ = Value::from("x").as_f64();
    }
}
