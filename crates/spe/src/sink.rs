//! Egress (sink) statistics collection.
//!
//! The runtime records, at every egress operator, the paper's two latency
//! metrics (§3.2): *processing latency* (egress output time − ingress time)
//! and *end-to-end latency* (egress output time − data source event time).

use simos::SimTime;

use crate::stats::LogHistogram;

/// Latency statistics of one logical egress operator (aggregated over its
/// physical replicas).
#[derive(Debug, Default)]
pub struct SinkCollector {
    name: String,
    latency: LogHistogram,
    e2e: LogHistogram,
    count: u64,
}

impl SinkCollector {
    /// Creates a collector for the named egress operator.
    pub fn new(name: &str) -> Self {
        SinkCollector {
            name: name.to_owned(),
            ..SinkCollector::default()
        }
    }

    /// The egress operator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one egress tuple with the given timestamps.
    pub fn record(&mut self, now: SimTime, event_time: SimTime, ingress_time: SimTime) {
        self.latency
            .record(now.duration_since(ingress_time.min(now)).as_secs_f64());
        self.e2e
            .record(now.duration_since(event_time.min(now)).as_secs_f64());
        self.count += 1;
    }

    /// Egress tuples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Processing-latency distribution (seconds).
    pub fn latency(&self) -> &LogHistogram {
        &self.latency
    }

    /// End-to-end latency distribution (seconds).
    pub fn e2e(&self) -> &LogHistogram {
        &self.e2e
    }

    /// Clears all samples (used to discard warm-up).
    pub fn reset(&mut self) {
        self.latency.reset();
        self.e2e.reset();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn records_both_latencies() {
        let mut s = SinkCollector::new("sink");
        s.record(at(100), at(10), at(60));
        assert_eq!(s.count(), 1);
        assert!((s.e2e().mean().unwrap() - 0.090).abs() < 1e-9);
        assert!((s.latency().mean().unwrap() - 0.040).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut s = SinkCollector::new("sink");
        s.record(at(100), at(10), at(60));
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.latency().mean(), None);
    }
}
