//! Logical → physical DAG conversion: operator **fission** (replication)
//! and **fusion** (chaining), the deployment-time optimizations of §2.
//!
//! Fusion is conservative, matching Flink's chaining rules: an edge is
//! chained only when it is a port-0 `Forward` edge, the producer's sole
//! output, the consumer's sole input, and both ends have equal parallelism.
//! With chaining disabled (the paper's Flink configuration in §6.3) every
//! logical operator becomes `parallelism` standalone physical operators.

use crate::graph::{LogicalGraph, LogicalOpId, Partitioning, Role};

/// Index of a physical operator within its physical graph.
pub type PhysOpId = usize;

/// A physical edge: tuples emitted on `port` by the tail of a chain are
/// routed to one of the target replicas according to `partitioning`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysEdgeSpec {
    /// Output port of the producing chain's tail operator.
    pub port: u16,
    /// Routing across the consumer's replicas.
    pub partitioning: Partitioning,
    /// Consumer replicas, ordered by replica index.
    pub targets: Vec<PhysOpId>,
}

/// A physical operator: one replica of a (possibly fused) chain of logical
/// operators, executed by one thread in thread-per-operator engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysOpSpec {
    /// Physical operator id.
    pub id: PhysOpId,
    /// Display name, e.g. `"parse+filter#1"`.
    pub name: String,
    /// The fused logical operators, upstream first.
    pub chain: Vec<LogicalOpId>,
    /// Replica index within the chain's fission group.
    pub replica: usize,
    /// Outgoing edges from the chain tail.
    pub out_edges: Vec<PhysEdgeSpec>,
    /// Whether the head of the chain is an Ingress operator.
    pub is_ingress: bool,
    /// The logical Egress operator at the chain tail, if any.
    pub egress: Option<LogicalOpId>,
}

/// The physical DAG plus the logical↔physical mapping that Lachesis'
/// transformation rules need (paper §5.1, Algorithm 2).
#[derive(Debug)]
pub struct PhysicalGraph {
    /// Physical operators.
    pub ops: Vec<PhysOpSpec>,
    /// For each logical operator, its physical replicas.
    pub logical_to_physical: Vec<Vec<PhysOpId>>,
}

impl PhysicalGraph {
    /// Builds the physical DAG for `graph`.
    pub fn build(graph: &LogicalGraph, chaining: bool) -> PhysicalGraph {
        let n = graph.ops.len();

        // 1. Decide chain edges.
        let mut chained_into: Vec<Option<LogicalOpId>> = vec![None; n]; // consumer -> producer
        let mut chains_to: Vec<Option<LogicalOpId>> = vec![None; n]; // producer -> consumer
        if chaining {
            for e in &graph.edges {
                let from = &graph.ops[e.from];
                let to = &graph.ops[e.to];
                let chainable = e.port == 0
                    && e.partitioning == Partitioning::Forward
                    && from.parallelism == to.parallelism
                    && graph.out_edges(e.from).count() == 1
                    && graph.in_edges(e.to).count() == 1
                    && to.role != Role::Ingress;
                if chainable {
                    chained_into[e.to] = Some(e.from);
                    chains_to[e.from] = Some(e.to);
                }
            }
        }

        // 2. Materialize chains (heads are ops nobody chains into).
        let mut chains: Vec<Vec<LogicalOpId>> = Vec::new();
        let mut chain_of: Vec<usize> = vec![usize::MAX; n];
        #[allow(clippy::needless_range_loop)] // head is also the chain seed
        for head in 0..n {
            if chained_into[head].is_some() {
                continue;
            }
            let mut chain = vec![head];
            let mut cur = head;
            while let Some(next) = chains_to[cur] {
                chain.push(next);
                cur = next;
            }
            for &op in &chain {
                chain_of[op] = chains.len();
            }
            chains.push(chain);
        }

        // 3. Replicate each chain (fission) and assign physical ids.
        let mut ops: Vec<PhysOpSpec> = Vec::new();
        let mut replicas_of_chain: Vec<Vec<PhysOpId>> = Vec::with_capacity(chains.len());
        for chain in &chains {
            let parallelism = graph.ops[chain[0]].parallelism;
            let base_name = chain
                .iter()
                .map(|&l| graph.ops[l].name.as_str())
                .collect::<Vec<_>>()
                .join("+");
            let mut ids = Vec::with_capacity(parallelism);
            for r in 0..parallelism {
                let id = ops.len();
                ids.push(id);
                let tail = *chain.last().expect("chains are non-empty");
                ops.push(PhysOpSpec {
                    id,
                    name: format!("{base_name}#{r}"),
                    chain: chain.clone(),
                    replica: r,
                    out_edges: Vec::new(),
                    is_ingress: graph.ops[chain[0]].role == Role::Ingress,
                    egress: (graph.ops[tail].role == Role::Egress).then_some(tail),
                });
            }
            replicas_of_chain.push(ids);
        }

        // 4. Wire non-chained edges from chain tails.
        for e in &graph.edges {
            if chained_into[e.to] == Some(e.from) {
                continue; // internal to a chain
            }
            let from_chain = chain_of[e.from];
            debug_assert_eq!(
                *chains[from_chain].last().unwrap(),
                e.from,
                "external edge must leave from a chain tail"
            );
            let to_chain = chain_of[e.to];
            let targets = replicas_of_chain[to_chain].clone();
            // Forward routing needs equal parallelism; degrade gracefully
            // to shuffle otherwise (how real SPEs rebalance).
            let same_par = replicas_of_chain[from_chain].len() == targets.len();
            let partitioning = match e.partitioning {
                Partitioning::Forward if !same_par => Partitioning::Shuffle,
                p => p,
            };
            for &p in &replicas_of_chain[from_chain] {
                ops[p].out_edges.push(PhysEdgeSpec {
                    port: e.port,
                    partitioning,
                    targets: targets.clone(),
                });
            }
        }

        // 5. Logical → physical mapping.
        let logical_to_physical = (0..n)
            .map(|l| replicas_of_chain[chain_of[l]].clone())
            .collect();

        PhysicalGraph {
            ops,
            logical_to_physical,
        }
    }

    /// Physical operators implementing a logical operator.
    pub fn physical_of(&self, logical: LogicalOpId) -> &[PhysOpId] {
        &self.logical_to_physical[logical]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LogicalGraph;
    use crate::operator::{Consume, CostModel, PassThrough};

    fn pipeline(parallelism: &[usize]) -> LogicalGraph {
        let mut b = LogicalGraph::builder("p");
        let mut prev = None;
        for (i, &p) in parallelism.iter().enumerate() {
            let role = if i == 0 {
                Role::Ingress
            } else if i == parallelism.len() - 1 {
                Role::Egress
            } else {
                Role::Transform
            };
            let id = b.op(&format!("op{i}"), role, CostModel::micros(1), p, || {
                Box::new(PassThrough)
            });
            if let Some(prev) = prev {
                b.edge(prev, id, Partitioning::Forward);
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn no_chaining_one_phys_per_replica() {
        let g = pipeline(&[1, 2, 1]);
        let pg = PhysicalGraph::build(&g, false);
        assert_eq!(pg.ops.len(), 4);
        assert_eq!(pg.physical_of(1).len(), 2);
        // op0 (1 replica) -> op1 (2 replicas): forward degraded to shuffle.
        assert_eq!(pg.ops[0].out_edges[0].partitioning, Partitioning::Shuffle);
        assert_eq!(pg.ops[0].out_edges[0].targets.len(), 2);
        assert!(pg.ops[0].is_ingress);
        assert_eq!(pg.ops[3].egress, Some(2));
    }

    #[test]
    fn chaining_fuses_linear_pipeline() {
        let g = pipeline(&[1, 1, 1]);
        let pg = PhysicalGraph::build(&g, true);
        assert_eq!(pg.ops.len(), 1, "whole pipeline fuses into one op");
        assert_eq!(pg.ops[0].chain, vec![0, 1, 2]);
        assert_eq!(pg.ops[0].name, "op0+op1+op2#0");
        assert!(pg.ops[0].is_ingress);
        assert_eq!(pg.ops[0].egress, Some(2));
        assert_eq!(pg.physical_of(1), &[0]);
    }

    #[test]
    fn chaining_breaks_on_parallelism_change() {
        let g = pipeline(&[1, 2, 2]);
        let pg = PhysicalGraph::build(&g, true);
        // op0 alone; op1+op2 fused, 2 replicas.
        assert_eq!(pg.ops.len(), 3);
        assert_eq!(pg.ops[1].chain, vec![1, 2]);
        assert_eq!(pg.ops[1].replica, 0);
        assert_eq!(pg.ops[2].replica, 1);
    }

    #[test]
    fn chaining_breaks_on_fanout() {
        let mut b = LogicalGraph::builder("fan");
        let src = b.op("src", Role::Ingress, CostModel::micros(1), 1, || {
            Box::new(PassThrough)
        });
        let l = b.op("l", Role::Egress, CostModel::micros(1), 1, || {
            Box::new(Consume)
        });
        let r = b.op("r", Role::Egress, CostModel::micros(1), 1, || {
            Box::new(Consume)
        });
        b.edge(src, l, Partitioning::Forward);
        b.edge(src, r, Partitioning::Forward);
        let g = b.build().unwrap();
        let pg = PhysicalGraph::build(&g, true);
        assert_eq!(pg.ops.len(), 3, "fan-out edges never chain");
        assert_eq!(pg.ops[0].out_edges.len(), 2);
    }

    #[test]
    fn keyhash_routing_preserved() {
        let mut b = LogicalGraph::builder("kh");
        let src = b.op("src", Role::Ingress, CostModel::micros(1), 1, || {
            Box::new(PassThrough)
        });
        let agg = b.op("agg", Role::Egress, CostModel::micros(1), 4, || {
            Box::new(Consume)
        });
        b.edge(src, agg, Partitioning::KeyHash);
        let g = b.build().unwrap();
        let pg = PhysicalGraph::build(&g, true);
        assert_eq!(pg.ops[0].out_edges[0].partitioning, Partitioning::KeyHash);
        assert_eq!(pg.ops[0].out_edges[0].targets.len(), 4);
    }
}
