//! Inter-operator tuple queues.
//!
//! Every physical operator has one input queue. Storm-like and Liebre-like
//! engines use **unbounded** queues (imbalance accumulates, latency grows
//! without limit — the behaviour Figs. 5–10 exploit); the Flink-like engine
//! uses **bounded** queues with producer blocking, which yields the
//! credit-based backpressure of Figs. 11–12.
//!
//! A queue lives on the consumer's node. Remote producers reserve a slot
//! synchronously and deliver the tuple after a network delay, mimicking
//! credit-based flow control across nodes.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use simos::{DeferCallId, Kernel, NodeId, SimDuration, SimTime, WaitId};

use crate::tuple::Tuple;

/// What a bounded queue does when a push arrives while it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Reject the push: the producer blocks and retries (credit-based
    /// backpressure). Unbounded queues never reject, so this is a no-op
    /// for them.
    #[default]
    Block,
    /// Admit the push by shedding the oldest waiting tuple. Producers
    /// never block on a shedding queue; drops are counted in
    /// [`shed`](Queue::shed). Only whole tuples are dropped — a tuple
    /// that was popped is never retracted, so downstream window/join
    /// state never sees a partial or duplicated input.
    Shed,
}

#[derive(Debug)]
struct QueueInner {
    deque: VecDeque<Tuple>,
    capacity: Option<usize>,
    discipline: QueueDiscipline,
    /// Slots reserved by in-flight remote pushes.
    reserved: usize,
    /// Event times of tuples drained by [`Queue::pop_chunk`] whose pops
    /// have not been committed yet. Externally the queue still "contains"
    /// these tuples — `len`, `head_age`, `popped` and the shared backlog
    /// counter all treat them as queued until [`Queue::commit_pop`] runs at
    /// the tuple's processing boundary, so batched execution is
    /// indistinguishable from scalar pops to every observer.
    ghosts: VecDeque<SimTime>,
    pushed: u64,
    popped: u64,
    /// Tuples dropped from the head by shed-mode overload protection.
    shed: u64,
    peak: usize,
    consumer_wait: WaitId,
    producer_wait: WaitId,
    /// Shared backlog counter this queue contributes its length to (spout
    /// flow control tracks the query's total internal backlog in O(1)).
    backlog: Option<Rc<Cell<u64>>>,
    /// Tuples in flight from remote producers, in send order. Each
    /// [`Queue::net_enqueue`] pairs with one firing of the queue's
    /// registered delivery handler ([`Queue::net_call`]), which completes
    /// the oldest in-flight tuple's reserved push — the handler is
    /// allocated once per queue instead of boxing a closure per tuple.
    net_buf: VecDeque<Tuple>,
    /// Network delay of the first remote edge that delivered into this
    /// queue. The delivery handler completes in-flight tuples strictly in
    /// send order, which is only equivalent to per-tuple delays if every
    /// edge into the queue shares one delay — asserted on each
    /// [`Queue::net_enqueue`].
    net_delay: Option<SimDuration>,
}

impl QueueInner {
    /// Tuples an outside observer sees queued: the deque plus any
    /// chunk-drained tuples whose pops are not yet committed.
    fn visible_len(&self) -> usize {
        self.deque.len() + self.ghosts.len()
    }
}

impl QueueInner {
    /// Makes room for one incoming tuple on a shedding queue by dropping
    /// the oldest waiting tuples. The incoming tuple is always admitted —
    /// shedding is strictly drop-from-head. A shedding queue bounds its
    /// *backlog* at the capacity; in-flight reservations are not counted
    /// (they always succeed and shed again on delivery if needed).
    fn shed_for_push(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.deque.len() >= cap.max(1) {
            self.deque.pop_front();
            self.shed += 1;
            if let Some(c) = &self.backlog {
                c.set(c.get() - 1);
            }
        }
    }

    /// Completes one reserved remote push (shared by [`Queue::push_reserved`]
    /// and the per-queue network-delivery handler). Returns whether the
    /// queue was empty before (consumer should be woken).
    fn complete_reserved(&mut self, tuple: Tuple) -> bool {
        self.reserved -= 1;
        if self.discipline == QueueDiscipline::Shed {
            self.shed_for_push();
        }
        let was_empty = self.visible_len() == 0;
        self.deque.push_back(tuple);
        self.pushed += 1;
        let len = self.visible_len();
        if len > self.peak {
            self.peak = len;
        }
        if let Some(c) = &self.backlog {
            c.set(c.get() + 1);
        }
        was_empty
    }
}

/// A shared handle to an operator input queue.
#[derive(Debug, Clone)]
pub struct Queue {
    inner: Rc<RefCell<QueueInner>>,
    name: Rc<str>,
    node: NodeId,
    /// Per-queue network-delivery handler (see [`Queue::net_call`]).
    net_call: DeferCallId,
}

/// Result of a push attempt on a bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The tuple was enqueued; `true` if the queue was empty before (the
    /// consumer may be blocked and should be woken).
    Pushed(bool),
    /// The queue is full; the producer must block on
    /// [`producer_wait`](Queue::producer_wait) and retry.
    Full,
}

impl Queue {
    /// Creates a queue on `node`. `capacity: None` means unbounded.
    ///
    /// Allocates the queue's wake channels from `kernel`.
    pub fn new(kernel: &mut Kernel, name: &str, node: NodeId, capacity: Option<usize>) -> Self {
        let inner = Rc::new(RefCell::new(QueueInner {
            deque: VecDeque::new(),
            capacity,
            discipline: QueueDiscipline::Block,
            reserved: 0,
            ghosts: VecDeque::new(),
            pushed: 0,
            popped: 0,
            shed: 0,
            peak: 0,
            consumer_wait: kernel.new_wait_channel(),
            producer_wait: kernel.new_wait_channel(),
            backlog: None,
            net_buf: VecDeque::new(),
            net_delay: None,
        }));
        // Delivery handler, registered once: completes the oldest in-flight
        // remote tuple exactly as the per-tuple closure used to, without
        // boxing one per delivery.
        let h = Rc::clone(&inner);
        let net_call = kernel.register_defer_call(move |k| {
            let (wake, channel) = {
                let mut q = h.borrow_mut();
                let tuple = q.net_buf.pop_front().expect("net delivery without tuple");
                debug_assert!(q.reserved > 0, "net delivery without reserve");
                (q.complete_reserved(tuple), q.consumer_wait)
            };
            if wake {
                k.wake(channel);
            }
        });
        Queue {
            inner,
            name: Rc::from(name),
            node,
            net_call,
        }
    }

    /// The queue's name (for metric paths).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node the queue (and its consumer) lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Channel the consumer blocks on when the queue is empty.
    pub fn consumer_wait(&self) -> WaitId {
        self.inner.borrow().consumer_wait
    }

    /// Channel producers block on when the queue is full.
    pub fn producer_wait(&self) -> WaitId {
        self.inner.borrow().producer_wait
    }

    /// Overrides the consumer wake channel (worker-pool engines share one
    /// channel across all operator queues). Visible through every clone of
    /// this queue handle.
    pub fn set_consumer_wait(&self, channel: WaitId) {
        self.inner.borrow_mut().consumer_wait = channel;
    }

    /// Contributes this queue's length to a shared backlog counter from now
    /// on. The counter starts accounting at the queue's current length.
    pub fn track_backlog(&self, counter: Rc<Cell<u64>>) {
        let mut q = self.inner.borrow_mut();
        counter.set(counter.get() + q.visible_len() as u64);
        q.backlog = Some(counter);
    }

    /// The queue's full-queue behaviour.
    pub fn discipline(&self) -> QueueDiscipline {
        self.inner.borrow().discipline
    }

    /// Changes the full-queue behaviour at runtime (graceful-degradation
    /// flips from backpressure to shedding). After flipping to
    /// [`QueueDiscipline::Shed`] the caller must wake
    /// [`producer_wait`](Queue::producer_wait): producers blocked on a
    /// full queue would otherwise never retry.
    pub fn set_discipline(&self, discipline: QueueDiscipline) {
        self.inner.borrow_mut().discipline = discipline;
    }

    /// Total tuples dropped by shed-mode overload protection.
    pub fn shed(&self) -> u64 {
        self.inner.borrow().shed
    }

    /// Whether a push would currently succeed. Always true for unbounded
    /// and shedding queues; single-threaded simulation means the answer
    /// cannot change between this check and the push it guards.
    pub fn has_room(&self) -> bool {
        let q = self.inner.borrow();
        q.discipline == QueueDiscipline::Shed
            || q.capacity.is_none_or(|cap| q.visible_len() + q.reserved < cap)
    }

    /// Attempts to enqueue a tuple.
    pub fn push(&self, tuple: Tuple) -> PushOutcome {
        let mut q = self.inner.borrow_mut();
        match q.discipline {
            QueueDiscipline::Block => {
                if let Some(cap) = q.capacity {
                    if q.visible_len() + q.reserved >= cap {
                        return PushOutcome::Full;
                    }
                }
            }
            QueueDiscipline::Shed => q.shed_for_push(),
        }
        let was_empty = q.visible_len() == 0;
        q.deque.push_back(tuple);
        q.pushed += 1;
        let len = q.visible_len();
        if len > q.peak {
            q.peak = len;
        }
        if let Some(c) = &q.backlog {
            c.set(c.get() + 1);
        }
        PushOutcome::Pushed(was_empty)
    }

    /// Enqueues a run of tuples with one queue lock, preserving per-tuple
    /// semantics: the consumer-wake signal is exactly the scalar loop's
    /// (only the first push of a run can find the queue empty — nothing
    /// pops in between), and `peak`/backlog accounting count every tuple.
    ///
    /// Only unbounded, non-shedding queues accept chunks — bounded queues
    /// need a per-tuple admission decision, so callers push to those
    /// tuple-at-a-time. Returns whether the queue was empty before and at
    /// least one tuple was pushed (the consumer may need waking).
    ///
    /// # Panics
    ///
    /// Panics if the queue is bounded or shedding.
    pub fn push_chunk(&self, tuples: impl IntoIterator<Item = Tuple>) -> bool {
        let mut q = self.inner.borrow_mut();
        assert!(
            q.capacity.is_none() && q.discipline == QueueDiscipline::Block,
            "push_chunk requires an unbounded non-shedding queue ({})",
            self.name
        );
        let was_empty = q.visible_len() == 0;
        let before = q.deque.len();
        q.deque.extend(tuples);
        let n = q.deque.len() - before;
        q.pushed += n as u64;
        let len = q.visible_len();
        if len > q.peak {
            q.peak = len;
        }
        if let Some(c) = &q.backlog {
            c.set(c.get() + n as u64);
        }
        was_empty && n > 0
    }

    /// Reserves a slot for an in-flight remote push.
    ///
    /// Returns false if the queue is full (the remote producer must
    /// block). Shedding queues always accept the reservation — the
    /// arriving tuple sheds the head on delivery if needed.
    pub fn reserve(&self) -> bool {
        let mut q = self.inner.borrow_mut();
        if q.discipline == QueueDiscipline::Block {
            if let Some(cap) = q.capacity {
                if q.visible_len() + q.reserved >= cap {
                    return false;
                }
            }
        }
        q.reserved += 1;
        true
    }

    /// Completes a reserved remote push; returns whether the queue was
    /// empty before (consumer should be woken).
    ///
    /// # Panics
    ///
    /// Panics if no slot was reserved.
    pub fn push_reserved(&self, tuple: Tuple) -> bool {
        let mut q = self.inner.borrow_mut();
        assert!(q.reserved > 0, "push_reserved without reserve on {}", self.name);
        q.complete_reserved(tuple)
    }

    /// Hands a tuple to the simulated network for delayed delivery: the
    /// caller must have [`reserve`](Queue::reserve)d a slot, and must
    /// schedule one firing of [`net_call`](Queue::net_call) after `delay`
    /// ([`SimCtx::defer_call`](simos::SimCtx::defer_call)).
    /// In-flight tuples deliver in send order — the network preserves
    /// FIFO per destination queue, like the one-TCP-stream-per-channel
    /// transport of the real engines. Send-order delivery is only correct
    /// when every remote edge into this queue uses the same delay (a
    /// shorter-delay firing would otherwise complete an earlier
    /// longer-delay tuple before its delay elapsed), so mixed delays are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if `delay` differs from a previous `net_enqueue`'s delay.
    pub fn net_enqueue(&self, tuple: Tuple, delay: SimDuration) {
        let mut q = self.inner.borrow_mut();
        match q.net_delay {
            None => q.net_delay = Some(delay),
            Some(d) => assert_eq!(
                d, delay,
                "mixed net delays into queue {}: FIFO delivery needs one delay per queue",
                self.name
            ),
        }
        q.net_buf.push_back(tuple);
    }

    /// The queue's registered network-delivery handler; each firing
    /// completes the oldest in-flight [`net_enqueue`](Queue::net_enqueue)d
    /// tuple's push and wakes the consumer if the queue was empty.
    pub fn net_call(&self) -> DeferCallId {
        self.net_call
    }

    /// Whether the queue has no capacity bound.
    pub fn is_unbounded(&self) -> bool {
        self.inner.borrow().capacity.is_none()
    }

    /// Extends the one-delay-per-destination-queue invariant of
    /// [`net_enqueue`](Queue::net_enqueue) to deliveries that arrive from
    /// *outside* this kernel (the cluster fabric): records the network
    /// delay feeding this queue on first use and rejects any different
    /// delay afterwards. Intra-kernel `net_enqueue` edges and cluster links
    /// share the same record, so a queue fed by both with different delays
    /// is rejected too — FIFO per destination holds across the whole
    /// modeled network.
    ///
    /// # Panics
    ///
    /// Panics if `delay` differs from the delay already feeding this queue.
    pub fn assert_net_delay(&self, delay: SimDuration) {
        let mut q = self.inner.borrow_mut();
        match q.net_delay {
            None => q.net_delay = Some(delay),
            Some(d) => assert_eq!(
                d, delay,
                "mixed net delays into queue {}: FIFO delivery needs one delay per queue",
                self.name
            ),
        }
    }

    /// Delivers a tuple that traveled over the cluster's modeled network:
    /// an immediate push (the caller already waited out the link latency on
    /// the simulated clock) plus a consumer wake if the queue was empty —
    /// exactly what a local producer's push does.
    ///
    /// Restricted to unbounded non-shedding queues, like
    /// [`push_chunk`](Queue::push_chunk): bounded/shedding admission needs
    /// a credit or drop decision at the *sender*, which the fabric does not
    /// model (the paper's cross-device sources feed unbounded ingress
    /// queues).
    ///
    /// # Panics
    ///
    /// Panics if the queue is bounded or shedding.
    pub fn deliver_remote(&self, kernel: &mut Kernel, tuple: Tuple) {
        {
            let q = self.inner.borrow();
            assert!(
                q.capacity.is_none() && q.discipline == QueueDiscipline::Block,
                "deliver_remote requires an unbounded non-shedding queue ({})",
                self.name
            );
        }
        match self.push(tuple) {
            PushOutcome::Pushed(true) => kernel.wake(self.consumer_wait()),
            PushOutcome::Pushed(false) => {}
            PushOutcome::Full => unreachable!("unbounded queue rejected a push"),
        }
    }

    /// Dequeues the oldest tuple; `was_full` tells the consumer to wake
    /// blocked producers.
    pub fn pop(&self) -> Option<(Tuple, bool)> {
        let mut q = self.inner.borrow_mut();
        // The single consumer never mixes scalar pops into an open chunk.
        debug_assert!(q.ghosts.is_empty(), "scalar pop with uncommitted chunk");
        // Shedding queues never block producers, so there is nobody to wake.
        let was_full = q.discipline == QueueDiscipline::Block
            && q
                .capacity
                .is_some_and(|cap| q.deque.len() + q.reserved >= cap);
        let t = q.deque.pop_front()?;
        q.popped += 1;
        if let Some(c) = &q.backlog {
            c.set(c.get() - 1);
        }
        Some((t, was_full))
    }

    /// Dequeues the oldest tuple, also reporting the queue length *before*
    /// the pop — one lock where the scalar hot path previously took two
    /// (`len()` then `pop()`). Semantically `(self.len(), self.pop())`.
    pub fn pop_observed(&self) -> Option<(Tuple, bool, usize)> {
        let mut q = self.inner.borrow_mut();
        debug_assert!(q.ghosts.is_empty(), "scalar pop with uncommitted chunk");
        let len_before = q.deque.len();
        let was_full = q.discipline == QueueDiscipline::Block
            && q
                .capacity
                .is_some_and(|cap| len_before + q.reserved >= cap);
        let t = q.deque.pop_front()?;
        q.popped += 1;
        if let Some(c) = &q.backlog {
            c.set(c.get() - 1);
        }
        Some((t, was_full, len_before))
    }

    /// Drains up to `max` tuples into `chunk` under a single lock without
    /// committing their pops: each drained tuple becomes a *ghost* that
    /// still counts toward `len`/`head_age`/peak/backlog until the caller
    /// reaches its processing boundary and calls [`commit_pop`]. This keeps
    /// batched execution observationally identical to scalar pops — a 1 Hz
    /// metrics reporter or backlog-driven throttle sampling mid-batch sees
    /// the same queue state it would have under tuple-at-a-time runs.
    ///
    /// Only valid on unbounded non-shedding queues (bounded/shedding queues
    /// need per-pop producer wakes or can drop ghosts, so their consumers
    /// stay scalar). Returns the number of tuples drained.
    ///
    /// [`commit_pop`]: Queue::commit_pop
    pub fn pop_chunk(&self, max: usize, chunk: &mut Vec<Tuple>) -> usize {
        let mut q = self.inner.borrow_mut();
        debug_assert!(
            q.capacity.is_none() && q.discipline == QueueDiscipline::Block,
            "pop_chunk requires an unbounded non-shedding queue ({})",
            self.name
        );
        let n = max.min(q.deque.len());
        for _ in 0..n {
            let t = q.deque.pop_front().expect("counted above");
            q.ghosts.push_back(t.event_time);
            chunk.push(t);
        }
        n
    }

    /// Commits the pop of the oldest uncommitted chunk tuple: the point in
    /// a batch where the scalar path would have called [`pop`](Queue::pop).
    ///
    /// # Panics
    ///
    /// Panics if there is no uncommitted chunk tuple.
    pub fn commit_pop(&self) {
        let mut q = self.inner.borrow_mut();
        q.ghosts.pop_front().expect("commit_pop without pop_chunk");
        q.popped += 1;
        if let Some(c) = &q.backlog {
            c.set(c.get() - 1);
        }
    }

    /// Chunk tuples drained but not yet committed.
    pub fn uncommitted(&self) -> usize {
        self.inner.borrow().ghosts.len()
    }

    /// Whether the batch path may drain this queue right now: unbounded,
    /// non-shedding, and holding at least two tuples (a one-tuple "chunk"
    /// would just be a slower scalar pop). One borrow answers all three.
    pub fn chunk_ready(&self) -> bool {
        let q = self.inner.borrow();
        q.capacity.is_none() && q.discipline == QueueDiscipline::Block && q.deque.len() > 1
    }

    /// Current number of waiting tuples (including chunk-drained tuples
    /// whose pops are not yet committed).
    pub fn len(&self) -> usize {
        self.inner.borrow().visible_len()
    }

    /// Whether the queue is currently empty (no waiting tuples and no
    /// uncommitted chunk tuples).
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().visible_len() == 0
    }

    /// Age of the head tuple (now − event time), i.e. how long the oldest
    /// waiting input has been in the system — the FCFS policy's metric.
    /// The oldest uncommitted chunk tuple, if any, is the visible head.
    pub fn head_age(&self, now: SimTime) -> Option<f64> {
        let q = self.inner.borrow();
        q.ghosts
            .front()
            .copied()
            .or_else(|| q.deque.front().map(|t| t.event_time))
            .map(|et| now.duration_since(et.min(now)).as_secs_f64())
    }

    /// Total tuples ever pushed.
    pub fn pushed(&self) -> u64 {
        self.inner.borrow().pushed
    }

    /// Total tuples ever popped.
    pub fn popped(&self) -> u64 {
        self.inner.borrow().popped
    }

    /// Largest length ever observed.
    pub fn peak(&self) -> usize {
        self.inner.borrow().peak
    }

    /// Resets counters (not contents); used to discard warm-up.
    pub fn reset_stats(&self) {
        let mut q = self.inner.borrow_mut();
        q.pushed = 0;
        q.popped = 0;
        q.shed = 0;
        q.peak = q.visible_len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimDuration;

    fn tuple(ms: u64) -> Tuple {
        Tuple::new(SimTime::ZERO + SimDuration::from_millis(ms), 0, vec![])
    }

    fn make(capacity: Option<usize>) -> Queue {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        Queue::new(&mut k, "q", n, capacity)
    }

    #[test]
    fn fifo_order_and_counters() {
        let q = make(None);
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(q.pushed(), 2);
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let q = make(Some(2));
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert_eq!(q.push(tuple(3)), PushOutcome::Full);
        let (_, was_full) = q.pop().unwrap();
        assert!(was_full, "pop from a full queue reports it");
        assert_eq!(q.push(tuple(3)), PushOutcome::Pushed(false));
    }

    #[test]
    fn reservations_count_toward_capacity() {
        let q = make(Some(2));
        assert!(q.reserve());
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Full);
        assert!(!q.reserve());
        assert!(!q.push_reserved(tuple(3)), "queue was not empty");
        assert_eq!(q.len(), 2);
        assert_eq!(q.push(tuple(4)), PushOutcome::Full);
    }

    #[test]
    fn head_age_uses_event_time() {
        let q = make(None);
        q.push(tuple(100));
        let now = SimTime::ZERO + SimDuration::from_millis(350);
        assert!((q.head_age(now).unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(make(None).head_age(now), None);
    }

    #[test]
    fn shed_discipline_drops_from_head() {
        let q = make(Some(2));
        q.set_discipline(QueueDiscipline::Shed);
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert!(q.has_room(), "shedding queues always admit");
        // Third push sheds tuple(1): the consumer sees 2 then 3.
        assert_eq!(q.push(tuple(3)), PushOutcome::Pushed(false));
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed(), 1);
        let (t, was_full) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(2));
        assert!(!was_full, "shed queues have no blocked producers");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(3));
        // Accounting: len == pushed - popped - shed.
        assert_eq!(q.pushed(), 3);
        assert_eq!(q.popped(), 2);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn shed_discipline_remote_reservations() {
        let q = make(Some(2));
        q.set_discipline(QueueDiscipline::Shed);
        assert!(q.reserve(), "shedding queues always grant credits");
        assert!(q.reserve());
        assert!(q.reserve());
        assert!(q.push_reserved(tuple(1)), "queue was empty");
        assert!(!q.push_reserved(tuple(2)), "still room: one reservation left");
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed(), 0);
        // Third delivery sheds the head (tuple 1): len + reserved is over
        // capacity until the backlog drains.
        assert!(!q.push_reserved(tuple(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(2));
    }

    #[test]
    fn discipline_flip_unblocks_full_queue() {
        let q = make(Some(1));
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Full);
        q.set_discipline(QueueDiscipline::Shed);
        // Capacity 1: the old head is shed, so the queue is empty at admit
        // time and the consumer must be woken.
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(true));
        assert_eq!(q.shed(), 1);
    }

    #[test]
    fn shed_tracks_shared_backlog() {
        let q = make(Some(2));
        q.set_discipline(QueueDiscipline::Shed);
        let counter = Rc::new(Cell::new(0u64));
        q.track_backlog(Rc::clone(&counter));
        q.push(tuple(1));
        q.push(tuple(2));
        q.push(tuple(3)); // sheds one, admits one: net backlog unchanged
        assert_eq!(counter.get(), 2);
        q.pop();
        assert_eq!(counter.get(), 1);
    }

    #[test]
    fn chunk_pops_are_invisible_until_committed() {
        let q = make(None);
        let counter = Rc::new(Cell::new(0u64));
        q.track_backlog(Rc::clone(&counter));
        q.push(tuple(1));
        q.push(tuple(2));
        q.push(tuple(3));

        let mut chunk = Vec::new();
        assert_eq!(q.pop_chunk(2, &mut chunk), 2);
        assert_eq!(chunk.len(), 2);
        // Drained tuples are still visible to every observer.
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.uncommitted(), 2);
        assert_eq!(q.popped(), 0);
        assert_eq!(counter.get(), 3);
        // Visible head is the oldest *uncommitted* tuple.
        let now = SimTime::ZERO + SimDuration::from_millis(11);
        assert!((q.head_age(now).unwrap() - 0.010).abs() < 1e-9);

        // A push during the batch sees a non-empty queue (no spurious
        // consumer wake) and peak counts the ghosts.
        assert_eq!(q.push(tuple(4)), PushOutcome::Pushed(false));
        assert_eq!(q.peak(), 4);

        q.commit_pop();
        assert_eq!(q.len(), 3);
        assert_eq!(q.popped(), 1);
        assert_eq!(counter.get(), 3);
        assert!((q.head_age(now).unwrap() - 0.009).abs() < 1e-9);
        q.commit_pop();
        assert_eq!(q.uncommitted(), 0);
        assert_eq!(q.len(), 2);
        assert_eq!(counter.get(), 2);
        // Head reverts to the deque once all ghosts are committed.
        assert!((q.head_age(now).unwrap() - 0.008).abs() < 1e-9);
    }

    #[test]
    fn pop_chunk_drains_at_most_queue_len() {
        let q = make(None);
        q.push(tuple(1));
        let mut chunk = Vec::new();
        assert_eq!(q.pop_chunk(64, &mut chunk), 1);
        assert_eq!(chunk.len(), 1);
        assert_eq!(q.pop_chunk(64, &mut chunk), 0);
        q.commit_pop();
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 1);
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn push_chunk_matches_scalar_accounting() {
        let q = make(None);
        q.push(tuple(1));
        assert!(
            !q.push_chunk([tuple(2), tuple(3)]),
            "queue was not empty: no wake needed"
        );
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(1));
        q.pop().unwrap();
        q.pop().unwrap();
        assert!(q.push_chunk([tuple(4)]), "empty queue: consumer wake");
        assert!(!q.push_chunk([]), "pushing nothing wakes nobody");
        assert_eq!(q.pushed(), 4);
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn pop_observed_reports_pre_pop_length() {
        let q = make(Some(2));
        q.push(tuple(1));
        q.push(tuple(2));
        let (t, was_full, len_before) = q.pop_observed().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(1));
        assert!(was_full);
        assert_eq!(len_before, 2);
        let (_, was_full, len_before) = q.pop_observed().unwrap();
        assert!(!was_full);
        assert_eq!(len_before, 1);
        assert!(q.pop_observed().is_none());
    }

    #[test]
    fn net_delay_invariant_spans_local_and_cluster_edges() {
        let q = make(None);
        // A local net edge claims the queue's delay first …
        q.net_enqueue(tuple(1), SimDuration::from_micros(500));
        // … and a cluster link with the same latency is fine.
        q.assert_net_delay(SimDuration::from_micros(500));
    }

    #[test]
    #[should_panic(expected = "mixed net delays")]
    fn net_delay_invariant_rejects_mixed_cluster_latency() {
        let q = make(None);
        q.assert_net_delay(SimDuration::from_micros(500));
        q.assert_net_delay(SimDuration::from_micros(900));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let q = make(None);
        q.push(tuple(1));
        q.push(tuple(2));
        q.pop();
        q.reset_stats();
        assert_eq!(q.pushed(), 0);
        assert_eq!(q.popped(), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak(), 1);
    }
}
