//! Inter-operator tuple queues.
//!
//! Every physical operator has one input queue. Storm-like and Liebre-like
//! engines use **unbounded** queues (imbalance accumulates, latency grows
//! without limit — the behaviour Figs. 5–10 exploit); the Flink-like engine
//! uses **bounded** queues with producer blocking, which yields the
//! credit-based backpressure of Figs. 11–12.
//!
//! A queue lives on the consumer's node. Remote producers reserve a slot
//! synchronously and deliver the tuple after a network delay, mimicking
//! credit-based flow control across nodes.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use simos::{Kernel, NodeId, SimTime, WaitId};

use crate::tuple::Tuple;

/// What a bounded queue does when a push arrives while it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Reject the push: the producer blocks and retries (credit-based
    /// backpressure). Unbounded queues never reject, so this is a no-op
    /// for them.
    #[default]
    Block,
    /// Admit the push by shedding the oldest waiting tuple. Producers
    /// never block on a shedding queue; drops are counted in
    /// [`shed`](Queue::shed). Only whole tuples are dropped — a tuple
    /// that was popped is never retracted, so downstream window/join
    /// state never sees a partial or duplicated input.
    Shed,
}

#[derive(Debug)]
struct QueueInner {
    deque: VecDeque<Tuple>,
    capacity: Option<usize>,
    discipline: QueueDiscipline,
    /// Slots reserved by in-flight remote pushes.
    reserved: usize,
    pushed: u64,
    popped: u64,
    /// Tuples dropped from the head by shed-mode overload protection.
    shed: u64,
    peak: usize,
    consumer_wait: WaitId,
    producer_wait: WaitId,
    /// Shared backlog counter this queue contributes its length to (spout
    /// flow control tracks the query's total internal backlog in O(1)).
    backlog: Option<Rc<Cell<u64>>>,
}

impl QueueInner {
    /// Makes room for one incoming tuple on a shedding queue by dropping
    /// the oldest waiting tuples. The incoming tuple is always admitted —
    /// shedding is strictly drop-from-head. A shedding queue bounds its
    /// *backlog* at the capacity; in-flight reservations are not counted
    /// (they always succeed and shed again on delivery if needed).
    fn shed_for_push(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.deque.len() >= cap.max(1) {
            self.deque.pop_front();
            self.shed += 1;
            if let Some(c) = &self.backlog {
                c.set(c.get() - 1);
            }
        }
    }
}

/// A shared handle to an operator input queue.
#[derive(Debug, Clone)]
pub struct Queue {
    inner: Rc<RefCell<QueueInner>>,
    name: Rc<str>,
    node: NodeId,
}

/// Result of a push attempt on a bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The tuple was enqueued; `true` if the queue was empty before (the
    /// consumer may be blocked and should be woken).
    Pushed(bool),
    /// The queue is full; the producer must block on
    /// [`producer_wait`](Queue::producer_wait) and retry.
    Full,
}

impl Queue {
    /// Creates a queue on `node`. `capacity: None` means unbounded.
    ///
    /// Allocates the queue's wake channels from `kernel`.
    pub fn new(kernel: &mut Kernel, name: &str, node: NodeId, capacity: Option<usize>) -> Self {
        Queue {
            inner: Rc::new(RefCell::new(QueueInner {
                deque: VecDeque::new(),
                capacity,
                discipline: QueueDiscipline::Block,
                reserved: 0,
                pushed: 0,
                popped: 0,
                shed: 0,
                peak: 0,
                consumer_wait: kernel.new_wait_channel(),
                producer_wait: kernel.new_wait_channel(),
                backlog: None,
            })),
            name: Rc::from(name),
            node,
        }
    }

    /// The queue's name (for metric paths).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node the queue (and its consumer) lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Channel the consumer blocks on when the queue is empty.
    pub fn consumer_wait(&self) -> WaitId {
        self.inner.borrow().consumer_wait
    }

    /// Channel producers block on when the queue is full.
    pub fn producer_wait(&self) -> WaitId {
        self.inner.borrow().producer_wait
    }

    /// Overrides the consumer wake channel (worker-pool engines share one
    /// channel across all operator queues). Visible through every clone of
    /// this queue handle.
    pub fn set_consumer_wait(&self, channel: WaitId) {
        self.inner.borrow_mut().consumer_wait = channel;
    }

    /// Contributes this queue's length to a shared backlog counter from now
    /// on. The counter starts accounting at the queue's current length.
    pub fn track_backlog(&self, counter: Rc<Cell<u64>>) {
        let mut q = self.inner.borrow_mut();
        counter.set(counter.get() + q.deque.len() as u64);
        q.backlog = Some(counter);
    }

    /// The queue's full-queue behaviour.
    pub fn discipline(&self) -> QueueDiscipline {
        self.inner.borrow().discipline
    }

    /// Changes the full-queue behaviour at runtime (graceful-degradation
    /// flips from backpressure to shedding). After flipping to
    /// [`QueueDiscipline::Shed`] the caller must wake
    /// [`producer_wait`](Queue::producer_wait): producers blocked on a
    /// full queue would otherwise never retry.
    pub fn set_discipline(&self, discipline: QueueDiscipline) {
        self.inner.borrow_mut().discipline = discipline;
    }

    /// Total tuples dropped by shed-mode overload protection.
    pub fn shed(&self) -> u64 {
        self.inner.borrow().shed
    }

    /// Whether a push would currently succeed. Always true for unbounded
    /// and shedding queues; single-threaded simulation means the answer
    /// cannot change between this check and the push it guards.
    pub fn has_room(&self) -> bool {
        let q = self.inner.borrow();
        q.discipline == QueueDiscipline::Shed
            || q.capacity.is_none_or(|cap| q.deque.len() + q.reserved < cap)
    }

    /// Attempts to enqueue a tuple.
    pub fn push(&self, tuple: Tuple) -> PushOutcome {
        let mut q = self.inner.borrow_mut();
        match q.discipline {
            QueueDiscipline::Block => {
                if let Some(cap) = q.capacity {
                    if q.deque.len() + q.reserved >= cap {
                        return PushOutcome::Full;
                    }
                }
            }
            QueueDiscipline::Shed => q.shed_for_push(),
        }
        let was_empty = q.deque.is_empty();
        q.deque.push_back(tuple);
        q.pushed += 1;
        let len = q.deque.len();
        if len > q.peak {
            q.peak = len;
        }
        if let Some(c) = &q.backlog {
            c.set(c.get() + 1);
        }
        PushOutcome::Pushed(was_empty)
    }

    /// Reserves a slot for an in-flight remote push.
    ///
    /// Returns false if the queue is full (the remote producer must
    /// block). Shedding queues always accept the reservation — the
    /// arriving tuple sheds the head on delivery if needed.
    pub fn reserve(&self) -> bool {
        let mut q = self.inner.borrow_mut();
        if q.discipline == QueueDiscipline::Block {
            if let Some(cap) = q.capacity {
                if q.deque.len() + q.reserved >= cap {
                    return false;
                }
            }
        }
        q.reserved += 1;
        true
    }

    /// Completes a reserved remote push; returns whether the queue was
    /// empty before (consumer should be woken).
    ///
    /// # Panics
    ///
    /// Panics if no slot was reserved.
    pub fn push_reserved(&self, tuple: Tuple) -> bool {
        let mut q = self.inner.borrow_mut();
        assert!(q.reserved > 0, "push_reserved without reserve on {}", self.name);
        q.reserved -= 1;
        if q.discipline == QueueDiscipline::Shed {
            q.shed_for_push();
        }
        let was_empty = q.deque.is_empty();
        q.deque.push_back(tuple);
        q.pushed += 1;
        let len = q.deque.len();
        if len > q.peak {
            q.peak = len;
        }
        if let Some(c) = &q.backlog {
            c.set(c.get() + 1);
        }
        was_empty
    }

    /// Dequeues the oldest tuple; `was_full` tells the consumer to wake
    /// blocked producers.
    pub fn pop(&self) -> Option<(Tuple, bool)> {
        let mut q = self.inner.borrow_mut();
        // Shedding queues never block producers, so there is nobody to wake.
        let was_full = q.discipline == QueueDiscipline::Block
            && q
                .capacity
                .is_some_and(|cap| q.deque.len() + q.reserved >= cap);
        let t = q.deque.pop_front()?;
        q.popped += 1;
        if let Some(c) = &q.backlog {
            c.set(c.get() - 1);
        }
        Some((t, was_full))
    }

    /// Current number of waiting tuples.
    pub fn len(&self) -> usize {
        self.inner.borrow().deque.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().deque.is_empty()
    }

    /// Age of the head tuple (now − event time), i.e. how long the oldest
    /// waiting input has been in the system — the FCFS policy's metric.
    pub fn head_age(&self, now: SimTime) -> Option<f64> {
        let q = self.inner.borrow();
        q.deque
            .front()
            .map(|t| now.duration_since(t.event_time.min(now)).as_secs_f64())
    }

    /// Total tuples ever pushed.
    pub fn pushed(&self) -> u64 {
        self.inner.borrow().pushed
    }

    /// Total tuples ever popped.
    pub fn popped(&self) -> u64 {
        self.inner.borrow().popped
    }

    /// Largest length ever observed.
    pub fn peak(&self) -> usize {
        self.inner.borrow().peak
    }

    /// Resets counters (not contents); used to discard warm-up.
    pub fn reset_stats(&self) {
        let mut q = self.inner.borrow_mut();
        q.pushed = 0;
        q.popped = 0;
        q.shed = 0;
        q.peak = q.deque.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimDuration;

    fn tuple(ms: u64) -> Tuple {
        Tuple::new(SimTime::ZERO + SimDuration::from_millis(ms), 0, vec![])
    }

    fn make(capacity: Option<usize>) -> Queue {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        Queue::new(&mut k, "q", n, capacity)
    }

    #[test]
    fn fifo_order_and_counters() {
        let q = make(None);
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(q.pushed(), 2);
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let q = make(Some(2));
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert_eq!(q.push(tuple(3)), PushOutcome::Full);
        let (_, was_full) = q.pop().unwrap();
        assert!(was_full, "pop from a full queue reports it");
        assert_eq!(q.push(tuple(3)), PushOutcome::Pushed(false));
    }

    #[test]
    fn reservations_count_toward_capacity() {
        let q = make(Some(2));
        assert!(q.reserve());
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Full);
        assert!(!q.reserve());
        assert!(!q.push_reserved(tuple(3)), "queue was not empty");
        assert_eq!(q.len(), 2);
        assert_eq!(q.push(tuple(4)), PushOutcome::Full);
    }

    #[test]
    fn head_age_uses_event_time() {
        let q = make(None);
        q.push(tuple(100));
        let now = SimTime::ZERO + SimDuration::from_millis(350);
        assert!((q.head_age(now).unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(make(None).head_age(now), None);
    }

    #[test]
    fn shed_discipline_drops_from_head() {
        let q = make(Some(2));
        q.set_discipline(QueueDiscipline::Shed);
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert!(q.has_room(), "shedding queues always admit");
        // Third push sheds tuple(1): the consumer sees 2 then 3.
        assert_eq!(q.push(tuple(3)), PushOutcome::Pushed(false));
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed(), 1);
        let (t, was_full) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(2));
        assert!(!was_full, "shed queues have no blocked producers");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(3));
        // Accounting: len == pushed - popped - shed.
        assert_eq!(q.pushed(), 3);
        assert_eq!(q.popped(), 2);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn shed_discipline_remote_reservations() {
        let q = make(Some(2));
        q.set_discipline(QueueDiscipline::Shed);
        assert!(q.reserve(), "shedding queues always grant credits");
        assert!(q.reserve());
        assert!(q.reserve());
        assert!(q.push_reserved(tuple(1)), "queue was empty");
        assert!(!q.push_reserved(tuple(2)), "still room: one reservation left");
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed(), 0);
        // Third delivery sheds the head (tuple 1): len + reserved is over
        // capacity until the backlog drains.
        assert!(!q.push_reserved(tuple(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(2));
    }

    #[test]
    fn discipline_flip_unblocks_full_queue() {
        let q = make(Some(1));
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Full);
        q.set_discipline(QueueDiscipline::Shed);
        // Capacity 1: the old head is shed, so the queue is empty at admit
        // time and the consumer must be woken.
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(true));
        assert_eq!(q.shed(), 1);
    }

    #[test]
    fn shed_tracks_shared_backlog() {
        let q = make(Some(2));
        q.set_discipline(QueueDiscipline::Shed);
        let counter = Rc::new(Cell::new(0u64));
        q.track_backlog(Rc::clone(&counter));
        q.push(tuple(1));
        q.push(tuple(2));
        q.push(tuple(3)); // sheds one, admits one: net backlog unchanged
        assert_eq!(counter.get(), 2);
        q.pop();
        assert_eq!(counter.get(), 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let q = make(None);
        q.push(tuple(1));
        q.push(tuple(2));
        q.pop();
        q.reset_stats();
        assert_eq!(q.pushed(), 0);
        assert_eq!(q.popped(), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak(), 1);
    }
}
