//! Inter-operator tuple queues.
//!
//! Every physical operator has one input queue. Storm-like and Liebre-like
//! engines use **unbounded** queues (imbalance accumulates, latency grows
//! without limit — the behaviour Figs. 5–10 exploit); the Flink-like engine
//! uses **bounded** queues with producer blocking, which yields the
//! credit-based backpressure of Figs. 11–12.
//!
//! A queue lives on the consumer's node. Remote producers reserve a slot
//! synchronously and deliver the tuple after a network delay, mimicking
//! credit-based flow control across nodes.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use simos::{Kernel, NodeId, SimTime, WaitId};

use crate::tuple::Tuple;

#[derive(Debug)]
struct QueueInner {
    deque: VecDeque<Tuple>,
    capacity: Option<usize>,
    /// Slots reserved by in-flight remote pushes.
    reserved: usize,
    pushed: u64,
    popped: u64,
    peak: usize,
    consumer_wait: WaitId,
    producer_wait: WaitId,
    /// Shared backlog counter this queue contributes its length to (spout
    /// flow control tracks the query's total internal backlog in O(1)).
    backlog: Option<Rc<Cell<u64>>>,
}

/// A shared handle to an operator input queue.
#[derive(Debug, Clone)]
pub struct Queue {
    inner: Rc<RefCell<QueueInner>>,
    name: Rc<str>,
    node: NodeId,
}

/// Result of a push attempt on a bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The tuple was enqueued; `true` if the queue was empty before (the
    /// consumer may be blocked and should be woken).
    Pushed(bool),
    /// The queue is full; the producer must block on
    /// [`producer_wait`](Queue::producer_wait) and retry.
    Full,
}

impl Queue {
    /// Creates a queue on `node`. `capacity: None` means unbounded.
    ///
    /// Allocates the queue's wake channels from `kernel`.
    pub fn new(kernel: &mut Kernel, name: &str, node: NodeId, capacity: Option<usize>) -> Self {
        Queue {
            inner: Rc::new(RefCell::new(QueueInner {
                deque: VecDeque::new(),
                capacity,
                reserved: 0,
                pushed: 0,
                popped: 0,
                peak: 0,
                consumer_wait: kernel.new_wait_channel(),
                producer_wait: kernel.new_wait_channel(),
                backlog: None,
            })),
            name: Rc::from(name),
            node,
        }
    }

    /// The queue's name (for metric paths).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node the queue (and its consumer) lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Channel the consumer blocks on when the queue is empty.
    pub fn consumer_wait(&self) -> WaitId {
        self.inner.borrow().consumer_wait
    }

    /// Channel producers block on when the queue is full.
    pub fn producer_wait(&self) -> WaitId {
        self.inner.borrow().producer_wait
    }

    /// Overrides the consumer wake channel (worker-pool engines share one
    /// channel across all operator queues). Visible through every clone of
    /// this queue handle.
    pub fn set_consumer_wait(&self, channel: WaitId) {
        self.inner.borrow_mut().consumer_wait = channel;
    }

    /// Contributes this queue's length to a shared backlog counter from now
    /// on. The counter starts accounting at the queue's current length.
    pub fn track_backlog(&self, counter: Rc<Cell<u64>>) {
        let mut q = self.inner.borrow_mut();
        counter.set(counter.get() + q.deque.len() as u64);
        q.backlog = Some(counter);
    }

    /// Whether a push would currently succeed. Always true for unbounded
    /// queues; single-threaded simulation means the answer cannot change
    /// between this check and the push it guards.
    pub fn has_room(&self) -> bool {
        let q = self.inner.borrow();
        q.capacity.is_none_or(|cap| q.deque.len() + q.reserved < cap)
    }

    /// Attempts to enqueue a tuple.
    pub fn push(&self, tuple: Tuple) -> PushOutcome {
        let mut q = self.inner.borrow_mut();
        if let Some(cap) = q.capacity {
            if q.deque.len() + q.reserved >= cap {
                return PushOutcome::Full;
            }
        }
        let was_empty = q.deque.is_empty();
        q.deque.push_back(tuple);
        q.pushed += 1;
        let len = q.deque.len();
        if len > q.peak {
            q.peak = len;
        }
        if let Some(c) = &q.backlog {
            c.set(c.get() + 1);
        }
        PushOutcome::Pushed(was_empty)
    }

    /// Reserves a slot for an in-flight remote push.
    ///
    /// Returns false if the queue is full (the remote producer must block).
    pub fn reserve(&self) -> bool {
        let mut q = self.inner.borrow_mut();
        if let Some(cap) = q.capacity {
            if q.deque.len() + q.reserved >= cap {
                return false;
            }
        }
        q.reserved += 1;
        true
    }

    /// Completes a reserved remote push; returns whether the queue was
    /// empty before (consumer should be woken).
    ///
    /// # Panics
    ///
    /// Panics if no slot was reserved.
    pub fn push_reserved(&self, tuple: Tuple) -> bool {
        let mut q = self.inner.borrow_mut();
        assert!(q.reserved > 0, "push_reserved without reserve on {}", self.name);
        q.reserved -= 1;
        let was_empty = q.deque.is_empty();
        q.deque.push_back(tuple);
        q.pushed += 1;
        let len = q.deque.len();
        if len > q.peak {
            q.peak = len;
        }
        if let Some(c) = &q.backlog {
            c.set(c.get() + 1);
        }
        was_empty
    }

    /// Dequeues the oldest tuple; `was_full` tells the consumer to wake
    /// blocked producers.
    pub fn pop(&self) -> Option<(Tuple, bool)> {
        let mut q = self.inner.borrow_mut();
        let was_full = q
            .capacity
            .is_some_and(|cap| q.deque.len() + q.reserved >= cap);
        let t = q.deque.pop_front()?;
        q.popped += 1;
        if let Some(c) = &q.backlog {
            c.set(c.get() - 1);
        }
        Some((t, was_full))
    }

    /// Current number of waiting tuples.
    pub fn len(&self) -> usize {
        self.inner.borrow().deque.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().deque.is_empty()
    }

    /// Age of the head tuple (now − event time), i.e. how long the oldest
    /// waiting input has been in the system — the FCFS policy's metric.
    pub fn head_age(&self, now: SimTime) -> Option<f64> {
        let q = self.inner.borrow();
        q.deque
            .front()
            .map(|t| now.duration_since(t.event_time.min(now)).as_secs_f64())
    }

    /// Total tuples ever pushed.
    pub fn pushed(&self) -> u64 {
        self.inner.borrow().pushed
    }

    /// Total tuples ever popped.
    pub fn popped(&self) -> u64 {
        self.inner.borrow().popped
    }

    /// Largest length ever observed.
    pub fn peak(&self) -> usize {
        self.inner.borrow().peak
    }

    /// Resets counters (not contents); used to discard warm-up.
    pub fn reset_stats(&self) {
        let mut q = self.inner.borrow_mut();
        q.pushed = 0;
        q.popped = 0;
        q.peak = q.deque.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimDuration;

    fn tuple(ms: u64) -> Tuple {
        Tuple::new(SimTime::ZERO + SimDuration::from_millis(ms), 0, vec![])
    }

    fn make(capacity: Option<usize>) -> Queue {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        Queue::new(&mut k, "q", n, capacity)
    }

    #[test]
    fn fifo_order_and_counters() {
        let q = make(None);
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.event_time, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(q.pushed(), 2);
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let q = make(Some(2));
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Pushed(false));
        assert_eq!(q.push(tuple(3)), PushOutcome::Full);
        let (_, was_full) = q.pop().unwrap();
        assert!(was_full, "pop from a full queue reports it");
        assert_eq!(q.push(tuple(3)), PushOutcome::Pushed(false));
    }

    #[test]
    fn reservations_count_toward_capacity() {
        let q = make(Some(2));
        assert!(q.reserve());
        assert_eq!(q.push(tuple(1)), PushOutcome::Pushed(true));
        assert_eq!(q.push(tuple(2)), PushOutcome::Full);
        assert!(!q.reserve());
        assert!(!q.push_reserved(tuple(3)), "queue was not empty");
        assert_eq!(q.len(), 2);
        assert_eq!(q.push(tuple(4)), PushOutcome::Full);
    }

    #[test]
    fn head_age_uses_event_time() {
        let q = make(None);
        q.push(tuple(100));
        let now = SimTime::ZERO + SimDuration::from_millis(350);
        assert!((q.head_age(now).unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(make(None).head_age(now), None);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let q = make(None);
        q.push(tuple(1));
        q.push(tuple(2));
        q.pop();
        q.reset_stats();
        assert_eq!(q.pushed(), 0);
        assert_eq!(q.popped(), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak(), 1);
    }
}
