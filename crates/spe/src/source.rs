//! Data sources: rate-controlled generators external to the query.
//!
//! The paper's Data Sources are Kafka producers on a *different device* than
//! the query (§6.1), so they are not scheduled by the node under test. Here
//! a source is a periodic kernel callback that pushes tuples into the
//! ingress operators' (unbounded) input queues. When a query saturates, the
//! ingress queue grows without bound and end-to-end latency explodes —
//! exactly the saturation signature described in §6.1.

use std::cell::RefCell;
use std::rc::Rc;

use simos::{Kernel, SimDuration, SimTime};

use crate::queue::{PushOutcome, Queue};
use crate::tuple::Tuple;

/// Shared, observable state of a running data source.
#[derive(Debug)]
pub struct SourceState {
    name: String,
    emitted: u64,
    throttled: u64,
    rate_tps: f64,
}

impl SourceState {
    /// The source's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total tuples emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total tuple emissions deferred because a bounded ingress queue was
    /// full (backpressure propagated to the external source). Deferred
    /// tuples are not lost: they are produced once the queue drains.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    /// The configured ingress rate.
    pub fn rate_tps(&self) -> f64 {
        self.rate_tps
    }

    /// Changes the ingress rate from the next tick on (tenant churn, flash
    /// crowds, suspension via rate 0).
    pub fn set_rate(&mut self, rate_tps: f64) {
        self.rate_tps = rate_tps.max(0.0);
    }

    /// Resets the counters (used to discard warm-up).
    pub fn reset(&mut self) {
        self.emitted = 0;
        self.throttled = 0;
    }
}

/// Installs a source as a periodic kernel callback.
///
/// Tuples are produced at `rate_tps`, with event times spread uniformly
/// inside each tick, and round-robined across `targets` (the ingress
/// replicas' queues).
pub fn install_source(
    kernel: &mut Kernel,
    name: &str,
    rate_tps: f64,
    mut generator: Box<dyn FnMut(u64, SimTime) -> Tuple>,
    targets: Vec<Queue>,
    tick: SimDuration,
) -> Rc<RefCell<SourceState>> {
    assert!(!targets.is_empty(), "source {name} has no target queues");
    assert!(!tick.is_zero(), "source tick must be > 0");
    let state = Rc::new(RefCell::new(SourceState {
        name: name.to_owned(),
        emitted: 0,
        throttled: 0,
        rate_tps,
    }));
    let state_cb = Rc::clone(&state);
    let mut acc = 0.0f64;
    let mut seq = 0u64;
    let mut rr = 0usize;
    kernel.schedule_periodic(tick, tick, move |k| {
        let now = k.now();
        // The rate is re-read every tick so churn harnesses can change it
        // (flash crowds, tenant departure) through the shared state.
        acc += state_cb.borrow().rate_tps() * tick.as_secs_f64();
        let n = acc.floor() as u64;
        if n == 0 {
            acc -= n as f64;
            return;
        }
        let spacing = tick.as_nanos() / n;
        let mut sent = 0u64;
        for i in 0..n {
            let target = &targets[rr % targets.len()];
            // Bounded ingress queue full: backpressure to the source. The
            // un-emitted remainder stays in `acc` and is produced (with
            // fresh event times) once the queue drains — the external
            // source slows down rather than dropping data.
            if !target.has_room() {
                break;
            }
            // Event times are spread across the *previous* tick interval:
            // these tuples "arrived" while we slept.
            let event_time = SimTime::from_nanos(
                (now - tick).as_nanos() + i * spacing,
            );
            let tuple = generator(seq, event_time);
            seq += 1;
            rr += 1;
            sent += 1;
            match target.push(tuple) {
                PushOutcome::Pushed(was_empty) => {
                    if was_empty {
                        k.wake(target.consumer_wait());
                    }
                }
                // has_room() was checked above and nothing runs between
                // the check and the push in a single-threaded simulation.
                PushOutcome::Full => unreachable!("admission checked above"),
            }
        }
        acc -= sent as f64;
        let mut s = state_cb.borrow_mut();
        s.emitted += sent;
        s.throttled += n - sent;
    });
    state
}

/// The hand-off callback of a relay source: receives each generated tuple
/// together with the kernel, and is expected to push it toward the remote
/// destination (e.g. into a cluster fabric outbox).
pub type RelayEmit = Box<dyn FnMut(&mut Kernel, Tuple)>;

/// Installs a **relay** source: rate-controlled like [`install_source`],
/// but instead of pushing into local queues it hands each tuple to `emit` —
/// typically a closure that stamps the tuple into a cluster outbox for a
/// query deployed on a *different* rack node (the paper's Kafka producers
/// live on a different device than the query; the cluster layer models the
/// network hop they cross).
///
/// There is no backpressure path: remote ingress queues are unbounded (see
/// [`Queue::deliver_remote`](crate::Queue::deliver_remote)), so `throttled`
/// stays 0 and the emitted count is exactly rate × time.
pub fn install_relay_source(
    kernel: &mut Kernel,
    name: &str,
    rate_tps: f64,
    mut generator: Box<dyn FnMut(u64, SimTime) -> Tuple>,
    mut emit: RelayEmit,
    tick: SimDuration,
) -> Rc<RefCell<SourceState>> {
    assert!(!tick.is_zero(), "source tick must be > 0");
    let state = Rc::new(RefCell::new(SourceState {
        name: name.to_owned(),
        emitted: 0,
        throttled: 0,
        rate_tps,
    }));
    let state_cb = Rc::clone(&state);
    let mut acc = 0.0f64;
    let mut seq = 0u64;
    kernel.schedule_periodic(tick, tick, move |k| {
        let now = k.now();
        acc += state_cb.borrow().rate_tps() * tick.as_secs_f64();
        let n = acc.floor() as u64;
        acc -= n as f64;
        if n == 0 {
            return;
        }
        let spacing = tick.as_nanos() / n;
        for i in 0..n {
            let event_time = SimTime::from_nanos((now - tick).as_nanos() + i * spacing);
            let tuple = generator(seq, event_time);
            seq += 1;
            emit(k, tuple);
        }
        state_cb.borrow_mut().emitted += n;
    });
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_emits_at_configured_rate() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "ingress", node, None);
        let state = install_source(
            &mut kernel,
            "gen",
            1000.0,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q.clone()],
            SimDuration::from_millis(1),
        );
        kernel.run_for(SimDuration::from_secs(1));
        let emitted = state.borrow().emitted();
        assert!((995..=1005).contains(&emitted), "emitted {emitted}");
        assert_eq!(q.len() as u64, emitted, "nobody consumed");
    }

    #[test]
    fn fractional_rates_accumulate() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "ingress", node, None);
        let state = install_source(
            &mut kernel,
            "gen",
            2.5,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q],
            SimDuration::from_millis(100),
        );
        kernel.run_for(SimDuration::from_secs(4));
        assert_eq!(state.borrow().emitted(), 10);
    }

    #[test]
    fn bounded_ingress_throttles_source() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "ingress", node, Some(10));
        let state = install_source(
            &mut kernel,
            "gen",
            1000.0,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q.clone()],
            SimDuration::from_millis(1),
        );
        kernel.run_for(SimDuration::from_secs(1));
        // Nobody consumes: the queue caps at 10, the source defers the rest
        // instead of overflowing, and nothing is dropped.
        assert_eq!(q.len(), 10);
        assert_eq!(state.borrow().emitted(), 10);
        assert!(state.borrow().throttled() > 0);
    }

    #[test]
    fn set_rate_takes_effect() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "ingress", node, None);
        let state = install_source(
            &mut kernel,
            "gen",
            100.0,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q.clone()],
            SimDuration::from_millis(10),
        );
        kernel.run_for(SimDuration::from_secs(1));
        assert_eq!(state.borrow().emitted(), 100);
        state.borrow_mut().set_rate(0.0);
        kernel.run_for(SimDuration::from_secs(1));
        assert_eq!(state.borrow().emitted(), 100, "suspended source emits nothing");
        state.borrow_mut().set_rate(300.0);
        kernel.run_for(SimDuration::from_secs(1));
        let total = state.borrow().emitted();
        assert!((395..=405).contains(&total), "flash crowd rate applied: {total}");
    }

    #[test]
    fn relay_source_emits_into_closure() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "remote_ingress", node, None);
        let outbox = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&outbox);
        let state = install_relay_source(
            &mut kernel,
            "relay",
            500.0,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            Box::new(move |_, t| sink.borrow_mut().push(t)),
            SimDuration::from_millis(1),
        );
        kernel.run_for(SimDuration::from_secs(1));
        assert_eq!(state.borrow().emitted(), 500);
        assert_eq!(state.borrow().throttled(), 0);
        assert_eq!(outbox.borrow().len(), 500);
        // Cluster-side delivery: push + wake on the consumer's kernel.
        for t in outbox.borrow_mut().drain(..) {
            q.deliver_remote(&mut kernel, t);
        }
        assert_eq!(q.len(), 500);
    }

    #[test]
    #[should_panic(expected = "unbounded non-shedding")]
    fn deliver_remote_rejects_bounded_queues() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "bounded", node, Some(4));
        q.deliver_remote(&mut kernel, Tuple::new(SimTime::ZERO, 0, vec![]));
    }

    #[test]
    fn round_robin_across_replica_queues() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q0 = Queue::new(&mut kernel, "i0", node, None);
        let q1 = Queue::new(&mut kernel, "i1", node, None);
        install_source(
            &mut kernel,
            "gen",
            100.0,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q0.clone(), q1.clone()],
            SimDuration::from_millis(10),
        );
        kernel.run_for(SimDuration::from_secs(1));
        assert_eq!(q0.len(), 50);
        assert_eq!(q1.len(), 50);
    }
}
