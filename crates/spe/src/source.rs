//! Data sources: rate-controlled generators external to the query.
//!
//! The paper's Data Sources are Kafka producers on a *different device* than
//! the query (§6.1), so they are not scheduled by the node under test. Here
//! a source is a periodic kernel callback that pushes tuples into the
//! ingress operators' (unbounded) input queues. When a query saturates, the
//! ingress queue grows without bound and end-to-end latency explodes —
//! exactly the saturation signature described in §6.1.

use std::cell::RefCell;
use std::rc::Rc;

use simos::{Kernel, SimDuration, SimTime};

use crate::queue::{PushOutcome, Queue};
use crate::tuple::Tuple;

/// Shared, observable state of a running data source.
#[derive(Debug)]
pub struct SourceState {
    name: String,
    emitted: u64,
    rate_tps: f64,
}

impl SourceState {
    /// The source's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total tuples emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The configured ingress rate.
    pub fn rate_tps(&self) -> f64 {
        self.rate_tps
    }

    /// Resets the emission counter (used to discard warm-up).
    pub fn reset(&mut self) {
        self.emitted = 0;
    }
}

/// Installs a source as a periodic kernel callback.
///
/// Tuples are produced at `rate_tps`, with event times spread uniformly
/// inside each tick, and round-robined across `targets` (the ingress
/// replicas' queues).
pub fn install_source(
    kernel: &mut Kernel,
    name: &str,
    rate_tps: f64,
    mut generator: Box<dyn FnMut(u64, SimTime) -> Tuple>,
    targets: Vec<Queue>,
    tick: SimDuration,
) -> Rc<RefCell<SourceState>> {
    assert!(!targets.is_empty(), "source {name} has no target queues");
    assert!(!tick.is_zero(), "source tick must be > 0");
    let state = Rc::new(RefCell::new(SourceState {
        name: name.to_owned(),
        emitted: 0,
        rate_tps,
    }));
    let state_cb = Rc::clone(&state);
    let mut acc = 0.0f64;
    let mut seq = 0u64;
    let mut rr = 0usize;
    kernel.schedule_periodic(tick, tick, move |k| {
        let now = k.now();
        acc += rate_tps * tick.as_secs_f64();
        let n = acc.floor() as u64;
        acc -= n as f64;
        if n == 0 {
            return;
        }
        let spacing = tick.as_nanos() / n;
        for i in 0..n {
            // Event times are spread across the *previous* tick interval:
            // these tuples "arrived" while we slept.
            let event_time = SimTime::from_nanos(
                (now - tick).as_nanos() + i * spacing,
            );
            let tuple = generator(seq, event_time);
            seq += 1;
            let target = &targets[rr % targets.len()];
            rr += 1;
            match target.push(tuple) {
                PushOutcome::Pushed(was_empty) => {
                    if was_empty {
                        k.wake(target.consumer_wait());
                    }
                }
                PushOutcome::Full => {
                    unreachable!("ingress queues are unbounded")
                }
            }
        }
        state_cb.borrow_mut().emitted += n;
    });
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_emits_at_configured_rate() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "ingress", node, None);
        let state = install_source(
            &mut kernel,
            "gen",
            1000.0,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q.clone()],
            SimDuration::from_millis(1),
        );
        kernel.run_for(SimDuration::from_secs(1));
        let emitted = state.borrow().emitted();
        assert!((995..=1005).contains(&emitted), "emitted {emitted}");
        assert_eq!(q.len() as u64, emitted, "nobody consumed");
    }

    #[test]
    fn fractional_rates_accumulate() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q = Queue::new(&mut kernel, "ingress", node, None);
        let state = install_source(
            &mut kernel,
            "gen",
            2.5,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q],
            SimDuration::from_millis(100),
        );
        kernel.run_for(SimDuration::from_secs(4));
        assert_eq!(state.borrow().emitted(), 10);
    }

    #[test]
    fn round_robin_across_replica_queues() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let q0 = Queue::new(&mut kernel, "i0", node, None);
        let q1 = Queue::new(&mut kernel, "i1", node, None);
        install_source(
            &mut kernel,
            "gen",
            100.0,
            Box::new(|seq, now| Tuple::new(now, seq, vec![])),
            vec![q0.clone(), q1.clone()],
            SimDuration::from_millis(10),
        );
        kernel.run_for(SimDuration::from_secs(1));
        assert_eq!(q0.len(), 50);
        assert_eq!(q1.len(), 50);
    }
}
