//! The **VoipStream (VS)** query (15 operators) from DSPBench: analyzes
//! call detail records to detect telemarketing users with a cascade of
//! Bloom-filter-backed rate estimators fused by a scorer (paper §6.1,
//! Figs. 10/12).
//!
//! The query makes intensive use of group-by (key-hash) distributions and
//! is the workload where Lachesis' gain over the default OS scheduling is
//! largest in the paper (+75% throughput, Fig. 10).

use std::collections::HashMap;

use spe::{
    Consume, CostModel, Emitter, LogicalGraph, OperatorLogic, Partitioning, Role, Tuple, Value,
};

use crate::bloom::BloomFilter;
use crate::data::CdrGenerator;

/// Operator names, in topological order.
pub const VS_OPS: [&str; 15] = [
    "source",
    "parser",
    "variation_detector",
    "ecr",
    "rcr",
    "encr",
    "ct24",
    "ecr24",
    "acd",
    "global_acd",
    "fofir",
    "url_module",
    "acd_module",
    "scorer",
    "sink",
];

/// Deduplicates CDRs and annotates whether the callee is new for this
/// caller (the `new_callee` flag the ENCR module needs).
#[derive(Debug)]
struct VariationDetector {
    seen_pairs: BloomFilter,
}

impl VariationDetector {
    fn new() -> Self {
        VariationDetector {
            seen_pairs: BloomFilter::new(1 << 16, 4),
        }
    }
}

impl OperatorLogic for VariationDetector {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let caller = input.values[0].as_i64() as u64;
        let callee = input.values[1].as_i64() as u64;
        let pair = caller << 24 | (callee & 0xFFFFFF);
        let new_callee = !self.seen_pairs.check_and_insert(pair);
        let mut values = input.values.clone();
        values.push(Value::I(new_callee as i64));
        out.emit(input.derive(caller, values));
    }
}

/// A per-key exponentially-decayed rate estimator (the ECR/RCR/ENCR/CT24
/// family of DSPBench modules, each parameterized differently).
#[derive(Debug)]
struct RateEstimator {
    rates: HashMap<u64, f64>,
    decay: f64,
    /// Which tuples count: 0 = all, 1 = only answered, 2 = only new-callee.
    filter_mode: u8,
    /// Key field: 0 = caller, 1 = callee.
    key_field: usize,
}

impl RateEstimator {
    fn new(decay: f64, filter_mode: u8, key_field: usize) -> Self {
        RateEstimator {
            rates: HashMap::new(),
            decay,
            filter_mode,
            key_field,
        }
    }
}

impl OperatorLogic for RateEstimator {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let counts = match self.filter_mode {
            1 => input.values[3].as_i64() != 0,
            2 => input.values[4].as_i64() != 0,
            _ => true,
        };
        let key = input.values[self.key_field].as_i64() as u64;
        let r = self.rates.entry(key).or_insert(0.0);
        *r = *r * self.decay + if counts { 1.0 } else { 0.0 };
        out.emit(input.derive(key, vec![Value::I(key as i64), Value::F(*r)]));
    }
}

/// Average call duration per caller.
#[derive(Debug, Default)]
struct AvgCallDuration {
    state: HashMap<u64, (f64, u64)>,
    global: (f64, u64),
    emit_global: bool,
}

impl OperatorLogic for AvgCallDuration {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let caller = input.values[0].as_i64() as u64;
        let dur = input.values[2].as_f64();
        self.global.0 += dur;
        self.global.1 += 1;
        let e = self.state.entry(caller).or_insert((0.0, 0));
        e.0 += dur;
        e.1 += 1;
        let value = if self.emit_global {
            self.global.0 / self.global.1 as f64
        } else {
            e.0 / e.1 as f64
        };
        out.emit(input.derive(caller, vec![Value::I(caller as i64), Value::F(value)]));
    }
}

/// Combines two upstream scores per caller (FoFiR / URL / ACD modules).
#[derive(Debug, Default)]
struct Combiner {
    pending: HashMap<u64, f64>,
}

impl OperatorLogic for Combiner {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let key = input.values[0].as_i64() as u64;
        let score = input.values[1].as_f64();
        match self.pending.remove(&key) {
            Some(other) => {
                let combined = (score * other.max(1e-9)).sqrt();
                out.emit(input.derive(key, vec![Value::I(key as i64), Value::F(combined)]));
            }
            None => {
                self.pending.insert(key, score);
                if self.pending.len() > 100_000 {
                    self.pending.clear();
                }
            }
        }
    }
}

/// Final weighted score; emits one verdict per input pair.
#[derive(Debug, Default)]
struct Scorer {
    partial: HashMap<u64, (f64, u32)>,
}

impl OperatorLogic for Scorer {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let key = input.values[0].as_i64() as u64;
        let score = input.values[1].as_f64();
        let e = self.partial.entry(key).or_insert((0.0, 0));
        e.0 += score;
        e.1 += 1;
        if e.1 >= 3 {
            let total = e.0;
            self.partial.remove(&key);
            out.emit(input.derive(key, vec![Value::I(key as i64), Value::F(total)]));
        }
    }
}

/// Builds the VS logical graph with the given ingress rate.
pub fn vs(rate_tps: f64, seed: u64) -> LogicalGraph {
    let mut b = LogicalGraph::builder("vs");
    let source = b.op("source", Role::Ingress, CostModel::micros(25), 1, || {
        Box::new(spe::PassThrough)
    });
    let parser = b.op("parser", Role::Transform, CostModel::micros(110), 1, || {
        Box::new(spe::PassThrough)
    });
    let variation = b.op(
        "variation_detector",
        Role::Transform,
        CostModel::micros(130),
        1,
        || Box::new(VariationDetector::new()),
    );
    let ecr = b.op("ecr", Role::Transform, CostModel::micros(70), 1, || {
        Box::new(RateEstimator::new(0.99, 0, 0))
    });
    let rcr = b.op("rcr", Role::Transform, CostModel::micros(70), 1, || {
        Box::new(RateEstimator::new(0.99, 0, 1))
    });
    let encr = b.op("encr", Role::Transform, CostModel::micros(80), 1, || {
        Box::new(RateEstimator::new(0.995, 2, 0))
    });
    let ct24 = b.op("ct24", Role::Transform, CostModel::micros(60), 1, || {
        Box::new(RateEstimator::new(0.999, 0, 0))
    });
    let ecr24 = b.op("ecr24", Role::Transform, CostModel::micros(65), 1, || {
        Box::new(RateEstimator::new(0.999, 1, 0))
    });
    let acd = b.op("acd", Role::Transform, CostModel::micros(75), 1, || {
        Box::new(AvgCallDuration::default())
    });
    let global_acd = b.op(
        "global_acd",
        Role::Transform,
        CostModel::micros(50),
        1,
        || {
            Box::new(AvgCallDuration {
                emit_global: true,
                ..AvgCallDuration::default()
            })
        },
    );
    let fofir = b.op("fofir", Role::Transform, CostModel::micros(85), 1, || {
        Box::new(Combiner::default())
    });
    let url = b.op("url_module", Role::Transform, CostModel::micros(80), 1, || {
        Box::new(Combiner::default())
    });
    let acd_mod = b.op(
        "acd_module",
        Role::Transform,
        CostModel::micros(80),
        1,
        || Box::new(Combiner::default()),
    );
    let scorer = b.op("scorer", Role::Transform, CostModel::micros(95), 1, || {
        Box::new(Scorer::default())
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(30), 1, || {
        Box::new(Consume)
    });

    b.edge(source, parser, Partitioning::Forward);
    b.edge(parser, variation, Partitioning::KeyHash);
    for mid in [ecr, rcr, encr, ct24, ecr24, acd, global_acd] {
        b.edge(variation, mid, Partitioning::KeyHash);
    }
    b.edge(ecr, fofir, Partitioning::KeyHash);
    b.edge(rcr, fofir, Partitioning::KeyHash);
    b.edge(encr, url, Partitioning::KeyHash);
    b.edge(ecr24, url, Partitioning::KeyHash);
    b.edge(acd, acd_mod, Partitioning::KeyHash);
    b.edge(global_acd, acd_mod, Partitioning::KeyHash);
    b.edge(fofir, scorer, Partitioning::KeyHash);
    b.edge(url, scorer, Partitioning::KeyHash);
    b.edge(acd_mod, scorer, Partitioning::KeyHash);
    b.edge(scorer, sink, Partitioning::Forward);

    let mut generator = CdrGenerator::new(seed, 10_000, 50);
    b.source("cdr_feed", source, rate_tps, move |seq, now| {
        generator.generate(seq, now)
    });
    b.build().expect("VS graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Kernel, SimDuration};
    use spe::{deploy, EngineConfig, Placement};

    #[test]
    fn graph_shape_matches_paper() {
        let g = vs(100.0, 1);
        assert_eq!(g.ops.len(), 15, "VS has 15 operators");
        for (i, name) in VS_OPS.iter().enumerate() {
            assert_eq!(g.ops[i].name, *name);
        }
    }

    #[test]
    fn pipeline_produces_verdicts() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let q = deploy(
            &mut kernel,
            vs(1000.0, 5),
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(10));
        assert!(q.ingress_total() > 9_500);
        // The scorer waits for 3 module scores per caller; verdict volume
        // is well below ingress volume but clearly non-zero.
        let verdicts = q.egress_total();
        assert!(verdicts > 1_000, "verdicts {verdicts}");
    }

    #[test]
    fn combiner_pairs_scores() {
        let mut c = Combiner::default();
        let mut e = Emitter::new(simos::SimTime::ZERO);
        let a = Tuple::new(simos::SimTime::ZERO, 1, vec![Value::I(1), Value::F(4.0)]);
        c.process(&a, &mut e);
        assert_eq!(e.emitted(), 0, "waits for the partner stream");
        let b = Tuple::new(simos::SimTime::ZERO, 1, vec![Value::I(1), Value::F(9.0)]);
        c.process(&b, &mut e);
        let outs = e.into_outputs();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1.values[1].as_f64(), 6.0, "geometric mean");
    }

    #[test]
    fn telemarketers_score_higher_call_rates() {
        let mut est = RateEstimator::new(0.99, 0, 0);
        let mut tm_rate = 0.0;
        let mut normal_rate = 0.0;
        // Telemarketer (caller 1) appears 9x as often as caller 999.
        for i in 0..200 {
            let caller = if i % 10 == 0 { 999u64 } else { 1 };
            let t = Tuple::new(
                simos::SimTime::ZERO,
                caller,
                vec![
                    Value::I(caller as i64),
                    Value::I(5),
                    Value::F(10.0),
                    Value::I(1),
                    Value::I(0),
                ],
            );
            let mut e = Emitter::new(simos::SimTime::ZERO);
            est.process(&t, &mut e);
            let out = e.into_outputs();
            let rate = out[0].1.values[1].as_f64();
            if caller == 1 {
                tm_rate = rate;
            } else {
                normal_rate = rate;
            }
        }
        assert!(tm_rate > normal_rate, "{tm_rate} vs {normal_rate}");
    }
}
