//! The RIoTBench **STATS** query (10 operators): parses sensor streams
//! into individual observations and runs three statistical analytics in
//! parallel branches (paper §6.1/§6.2).
//!
//! Key properties reproduced from the paper: selectivity ≈ 15 egress
//! tuples per ingress tuple (the parser fans one record out into five
//! observations, three branches each) and a single expensive bottleneck —
//! the Kalman filter — that pins one core and causes the queue-size
//! outlier of Fig. 8.

use std::collections::HashMap;

use spe::{
    Consume, CostModel, Emitter, LogicalGraph, OperatorLogic, Partitioning, Role, Tuple, Value,
};

use crate::bloom::BloomFilter;
use crate::data::SensorGenerator;

/// Operator names, in topological order.
pub const STATS_OPS: [&str; 10] = [
    "source",
    "senml_parse",
    "bloom_filter",
    "average",
    "kalman_filter",
    "sliding_linreg",
    "distinct_count",
    "group_viz",
    "multiplexer",
    "sink",
];

/// Explodes one sensor record into five per-field observations:
/// `(sensor, field_idx, value)`.
#[derive(Debug, Default)]
struct ObservationParse;

impl OperatorLogic for ObservationParse {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let base = [
            input.values[1].as_f64(),
            input.values[2].as_f64(),
            input.values[3].as_f64(),
        ];
        // Five observations: temp, humidity, light, plus two synthetic
        // derived channels (RIoTBench parses five SenML fields).
        let obs = [
            base[0],
            base[1],
            base[2],
            base[0] * 1.8 + 32.0,
            base[1] / 100.0,
        ];
        for (i, v) in obs.into_iter().enumerate() {
            out.emit(input.derive(
                input.key * 8 + i as u64,
                vec![Value::I(i as i64), Value::F(v)],
            ));
        }
    }
}

/// Running per-key average.
#[derive(Debug, Default)]
struct Average {
    state: HashMap<u64, (f64, u64)>,
}

impl OperatorLogic for Average {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let v = input.values[1].as_f64();
        let v = if v.is_nan() { 0.0 } else { v };
        let e = self.state.entry(input.key).or_insert((0.0, 0));
        e.0 += v;
        e.1 += 1;
        out.emit(input.derive(input.key, vec![Value::F(e.0 / e.1 as f64)]));
    }
}

/// A 1-D Kalman filter per key — the deliberately expensive analytic.
#[derive(Debug, Default)]
struct Kalman {
    state: HashMap<u64, (f64, f64)>, // (estimate, error covariance)
}

impl OperatorLogic for Kalman {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let z = input.values[1].as_f64();
        let z = if z.is_nan() { 0.0 } else { z };
        let (x, p) = self.state.entry(input.key).or_insert((z, 1.0));
        let q = 1e-4;
        let r = 0.5;
        let p_pred = *p + q;
        let k = p_pred / (p_pred + r);
        *x += k * (z - *x);
        *p = (1.0 - k) * p_pred;
        out.emit(input.derive(input.key, vec![Value::F(*x)]));
    }
}

/// Sliding-window linear regression over the last `N` Kalman estimates.
#[derive(Debug, Default)]
struct SlidingLinReg {
    windows: HashMap<u64, Vec<f64>>,
}

impl OperatorLogic for SlidingLinReg {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let w = self.windows.entry(input.key).or_default();
        w.push(input.values[0].as_f64());
        if w.len() > 16 {
            w.remove(0);
        }
        let n = w.len() as f64;
        let sx = (0..w.len()).map(|i| i as f64).sum::<f64>();
        let sy: f64 = w.iter().sum();
        let sxy: f64 = w.iter().enumerate().map(|(i, y)| i as f64 * y).sum();
        let sxx: f64 = (0..w.len()).map(|i| (i * i) as f64).sum();
        let denom = n * sxx - sx * sx;
        let slope = if denom.abs() < 1e-12 {
            0.0
        } else {
            (n * sxy - sx * sy) / denom
        };
        out.emit(input.derive(input.key, vec![Value::F(slope)]));
    }
}

/// Approximate distinct counting with a Bloom filter.
#[derive(Debug)]
struct DistinctCount {
    filter: BloomFilter,
    count: u64,
}

impl DistinctCount {
    fn new() -> Self {
        DistinctCount {
            filter: BloomFilter::new(1 << 14, 3),
            count: 0,
        }
    }
}

impl OperatorLogic for DistinctCount {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let v = input.values[1].as_f64();
        let quantized = if v.is_nan() { u64::MAX } else { (v * 100.0) as u64 };
        if !self.filter.check_and_insert(input.key << 24 | (quantized & 0xFFFFFF)) {
            self.count += 1;
        }
        out.emit(input.derive(input.key, vec![Value::I(self.count as i64)]));
    }
}

/// Builds the STATS logical graph with the given ingress rate.
pub fn stats(rate_tps: f64, seed: u64) -> LogicalGraph {
    let mut b = LogicalGraph::builder("stats");
    let source = b.op("source", Role::Ingress, CostModel::micros(40), 1, || {
        Box::new(spe::PassThrough)
    });
    let parse = b.op(
        "senml_parse",
        Role::Transform,
        CostModel::PerOutput {
            base: simos::SimDuration::from_micros(150),
            per_output: simos::SimDuration::from_micros(40),
        },
        1,
        || Box::new(ObservationParse),
    );
    let bloom = b.op(
        "bloom_filter",
        Role::Transform,
        CostModel::micros(70),
        1,
        || {
            // RIoTBench pre-filters invalid observations.
            Box::new(spe::Filter(|t: &Tuple| !t.values[1].as_f64().is_nan()))
        },
    );
    let average = b.op("average", Role::Transform, CostModel::micros(90), 1, || {
        Box::new(Average::default())
    });
    let kalman = b.op(
        "kalman_filter",
        Role::Transform,
        CostModel::micros(550),
        1,
        || Box::new(Kalman::default()),
    );
    let linreg = b.op(
        "sliding_linreg",
        Role::Transform,
        CostModel::micros(120),
        1,
        || Box::new(SlidingLinReg::default()),
    );
    let distinct = b.op(
        "distinct_count",
        Role::Transform,
        CostModel::micros(100),
        1,
        || Box::new(DistinctCount::new()),
    );
    let viz = b.op("group_viz", Role::Transform, CostModel::micros(60), 1, || {
        Box::new(spe::PassThrough)
    });
    let mux = b.op(
        "multiplexer",
        Role::Transform,
        CostModel::micros(25),
        1,
        || Box::new(spe::PassThrough),
    );
    let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
        Box::new(Consume)
    });

    b.edge(source, parse, Partitioning::Forward);
    b.edge(parse, bloom, Partitioning::Forward);
    // Three analytic branches.
    b.edge(bloom, average, Partitioning::KeyHash);
    b.edge(bloom, kalman, Partitioning::KeyHash);
    b.edge(bloom, distinct, Partitioning::KeyHash);
    b.edge(kalman, linreg, Partitioning::Forward);
    // Merge into the visualization group.
    b.edge(average, viz, Partitioning::Forward);
    b.edge(linreg, viz, Partitioning::Forward);
    b.edge(distinct, viz, Partitioning::Forward);
    b.edge(viz, mux, Partitioning::Forward);
    b.edge(mux, sink, Partitioning::Forward);

    let mut generator = SensorGenerator::new(seed, 500);
    b.source("sensors", source, rate_tps, move |seq, now| {
        generator.generate(seq, now)
    });
    b.build().expect("STATS graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Kernel, SimDuration};
    use spe::{deploy, EngineConfig, Placement};

    #[test]
    fn graph_shape_matches_paper() {
        let g = stats(100.0, 1);
        assert_eq!(g.ops.len(), 10, "STATS has 10 operators");
        for (i, name) in STATS_OPS.iter().enumerate() {
            assert_eq!(g.ops[i].name, *name);
        }
    }

    #[test]
    fn selectivity_is_about_fifteen() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let q = deploy(
            &mut kernel,
            stats(100.0, 3),
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(10));
        let ratio = q.egress_total() as f64 / q.ingress_total() as f64;
        assert!(
            (13.0..=15.5).contains(&ratio),
            "egress/ingress = {ratio} (want ~15)"
        );
    }

    #[test]
    fn kalman_is_the_bottleneck_under_load() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let q = deploy(
            &mut kernel,
            stats(420.0, 3),
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(10));
        let sizes = q.queue_sizes();
        let kalman_idx = 4;
        let max_idx = (0..sizes.len()).max_by_key(|&i| sizes[i]).unwrap();
        assert_eq!(
            max_idx, kalman_idx,
            "kalman should dominate queues: {sizes:?}"
        );
        assert!(sizes[kalman_idx] > 1_000, "outlier queue: {sizes:?}");
    }

    #[test]
    fn kalman_converges_toward_signal() {
        let mut k = Kalman::default();
        let mut last = 0.0;
        for _ in 0..50 {
            let mut e = Emitter::new(simos::SimTime::ZERO);
            let t = Tuple::new(simos::SimTime::ZERO, 1, vec![Value::I(0), Value::F(25.0)]);
            k.process(&t, &mut e);
            last = e.into_outputs()[0].1.values[0].as_f64();
        }
        assert!((last - 25.0).abs() < 0.5, "estimate {last}");
    }

    #[test]
    fn linreg_detects_trend() {
        let mut lr = SlidingLinReg::default();
        let mut last = 0.0;
        for i in 0..20 {
            let mut e = Emitter::new(simos::SimTime::ZERO);
            let t = Tuple::new(simos::SimTime::ZERO, 1, vec![Value::F(i as f64 * 2.0)]);
            lr.process(&t, &mut e);
            last = e.into_outputs()[0].1.values[0].as_f64();
        }
        assert!((last - 2.0).abs() < 1e-6, "slope {last}");
    }
}
