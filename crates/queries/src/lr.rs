//! The **Linear Road (LR)** query (9 operators): the established streaming
//! benchmark simulating a variable-tolling system for motor-vehicle
//! expressways (paper §6.1, Figs. 1/2/9/11/17).
//!
//! The DAG follows the paper's Fig. 2: after parsing/dispatch, branch 1
//! computes variable tolls from congestion statistics (average speed and
//! number of vehicles per segment) plus accident alerts; branch 2 computes
//! a fixed toll per report.

use std::collections::HashMap;

use spe::{
    Consume, CostModel, Emitter, LogicalGraph, OperatorLogic, Partitioning, Role, Tuple, Value,
};

use crate::data::LinearRoadGenerator;

/// Operator names, in topological order.
pub const LR_OPS: [&str; 9] = [
    "source",
    "dispatcher",
    "seg_stats",
    "congestion",
    "var_toll",
    "acc_detect",
    "toll_sink",
    "fixed_toll",
    "fixed_sink",
];

/// Routes position reports to both branches; drops non-position records.
#[derive(Debug, Default)]
struct Dispatcher;

impl OperatorLogic for Dispatcher {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        if input.values[6].as_i64() != 0 {
            return; // account-balance queries leave the toll pipeline
        }
        // Branch 1 (variable toll) on port 0, branch 2 (fixed toll) on 1,
        // accident detection on port 2.
        let seg_key =
            (input.values[2].as_i64() as u64) << 32 | input.values[4].as_i64() as u64;
        out.emit_to(0, input.derive(seg_key, input.values.clone()));
        out.emit_to(1, input.derive(input.key, input.values.clone()));
        out.emit_to(2, input.derive(input.key, input.values.clone()));
    }
}

/// Per-segment rolling statistics: average speed and vehicle count.
#[derive(Debug, Default)]
struct SegStats {
    state: HashMap<u64, (f64, u64)>,
}

impl OperatorLogic for SegStats {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let speed = input.values[1].as_f64();
        let e = self.state.entry(input.key).or_insert((0.0, 0));
        // Exponential moving average keeps state bounded.
        e.0 = if e.1 == 0 { speed } else { 0.95 * e.0 + 0.05 * speed };
        e.1 += 1;
        out.emit(input.derive(
            input.key,
            vec![Value::F(e.0), Value::I(e.1.min(1_000) as i64)],
        ));
    }
}

/// Flags congested segments (low average speed).
#[derive(Debug, Default)]
struct Congestion;

impl OperatorLogic for Congestion {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let avg_speed = input.values[0].as_f64();
        let nov = input.values[1].as_i64();
        let congested = avg_speed < 40.0 && nov > 5;
        out.emit(input.derive(
            input.key,
            vec![
                Value::F(avg_speed),
                Value::I(nov),
                Value::I(congested as i64),
            ],
        ));
    }
}

/// LRB toll formula: `2 * (nov - 50)^2` pence when congested, else base.
#[derive(Debug, Default)]
struct VarToll;

impl OperatorLogic for VarToll {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let congested = input.values[2].as_i64() != 0;
        let nov = input.values[1].as_i64() as f64;
        let toll = if congested {
            2.0 * (nov - 50.0).max(0.0).powi(2)
        } else {
            1.0
        };
        out.emit(input.derive(input.key, vec![Value::F(toll)]));
    }
}

/// Detects stopped vehicles (accident precursors); low selectivity.
#[derive(Debug, Default)]
struct AccidentDetect {
    stopped: HashMap<u64, u32>,
}

impl OperatorLogic for AccidentDetect {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let vid = input.values[0].as_i64() as u64;
        if input.values[1].as_f64() < 1.0 {
            let n = self.stopped.entry(vid).or_insert(0);
            *n += 1;
            if *n >= 2 {
                out.emit(input.derive(vid, vec![Value::I(1)]));
            }
        } else {
            self.stopped.remove(&vid);
        }
    }
}

/// Builds the LR logical graph with the given ingress rate and operator
/// parallelism (scale-out experiments raise parallelism to 2 and 4, §6.5).
pub fn lr_with_parallelism(rate_tps: f64, seed: u64, parallelism: usize) -> LogicalGraph {
    let p = parallelism.max(1);
    let mut b = LogicalGraph::builder("lr");
    let source = b.op("source", Role::Ingress, CostModel::micros(30), p, || {
        Box::new(spe::PassThrough)
    });
    let dispatcher = b.op(
        "dispatcher",
        Role::Transform,
        CostModel::micros(100),
        p,
        || Box::new(Dispatcher),
    );
    let seg_stats = b.op("seg_stats", Role::Transform, CostModel::micros(140), p, || {
        Box::new(SegStats::default())
    });
    let congestion = b.op(
        "congestion",
        Role::Transform,
        CostModel::micros(90),
        p,
        || Box::new(Congestion),
    );
    let var_toll = b.op("var_toll", Role::Transform, CostModel::micros(70), p, || {
        Box::new(VarToll)
    });
    let acc_detect = b.op(
        "acc_detect",
        Role::Transform,
        CostModel::micros(60),
        p,
        || Box::new(AccidentDetect::default()),
    );
    let toll_sink = b.op("toll_sink", Role::Egress, CostModel::micros(40), p, || {
        Box::new(Consume)
    });
    let fixed_toll = b.op(
        "fixed_toll",
        Role::Transform,
        CostModel::micros(60),
        p,
        || {
            Box::new(spe::Map(|t: &Tuple| {
                t.derive(t.key, vec![Value::F(1.0)])
            }))
        },
    );
    let fixed_sink = b.op("fixed_sink", Role::Egress, CostModel::micros(30), p, || {
        Box::new(Consume)
    });

    b.edge(source, dispatcher, Partitioning::Shuffle);
    b.edge_on_port(dispatcher, 0, seg_stats, Partitioning::KeyHash);
    b.edge(seg_stats, congestion, Partitioning::Forward);
    b.edge(congestion, var_toll, Partitioning::Forward);
    b.edge(var_toll, toll_sink, Partitioning::Shuffle);
    b.edge_on_port(dispatcher, 2, acc_detect, Partitioning::KeyHash);
    b.edge(acc_detect, toll_sink, Partitioning::Shuffle);
    b.edge_on_port(dispatcher, 1, fixed_toll, Partitioning::Shuffle);
    b.edge(fixed_toll, fixed_sink, Partitioning::Forward);

    let mut generator = LinearRoadGenerator::new(seed, 5_000, 2);
    b.source("lr_feed", source, rate_tps, move |seq, now| {
        generator.generate(seq, now)
    });
    b.build().expect("LR graph is valid")
}

/// Builds the single-node LR query (parallelism 1).
pub fn lr(rate_tps: f64, seed: u64) -> LogicalGraph {
    lr_with_parallelism(rate_tps, seed, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Kernel, SimDuration};
    use spe::{deploy, EngineConfig, Placement};

    #[test]
    fn graph_shape_matches_paper() {
        let g = lr(100.0, 1);
        assert_eq!(g.ops.len(), 9, "LR has 9 operators");
        for (i, name) in LR_OPS.iter().enumerate() {
            assert_eq!(g.ops[i].name, *name);
        }
    }

    #[test]
    fn both_branches_deliver_tolls() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let q = deploy(
            &mut kernel,
            lr(1000.0, 11),
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(10));
        let sinks = q.sinks();
        assert_eq!(sinks.len(), 2);
        for (l, s) in sinks {
            assert!(
                s.borrow().count() > 5_000,
                "sink {l} got {}",
                s.borrow().count()
            );
        }
        // Two branches: roughly 2 egress tuples per position report.
        let ratio = q.egress_total() as f64 / q.ingress_total() as f64;
        assert!((1.8..=2.1).contains(&ratio), "selectivity {ratio}");
    }

    #[test]
    fn parallel_deployment_replicates_ops() {
        let g = lr_with_parallelism(100.0, 1, 4);
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let q = deploy(
            &mut kernel,
            g,
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        assert_eq!(q.op_count(), 36, "9 logical ops x 4 replicas");
    }

    #[test]
    fn congestion_flags_slow_busy_segments() {
        let mut c = Congestion;
        let mut e = Emitter::new(simos::SimTime::ZERO);
        let t = Tuple::new(
            simos::SimTime::ZERO,
            1,
            vec![Value::F(25.0), Value::I(30)],
        );
        c.process(&t, &mut e);
        assert_eq!(e.into_outputs()[0].1.values[2].as_i64(), 1);
    }

    #[test]
    fn var_toll_grows_with_congestion() {
        let mut v = VarToll;
        let mut e = Emitter::new(simos::SimTime::ZERO);
        let congested = Tuple::new(
            simos::SimTime::ZERO,
            1,
            vec![Value::F(20.0), Value::I(60), Value::I(1)],
        );
        v.process(&congested, &mut e);
        let toll = e.into_outputs()[0].1.values[0].as_f64();
        assert_eq!(toll, 200.0, "2*(60-50)^2");
    }
}
