//! The RIoTBench **ETL** query (10 operators): parses IoT sensor streams,
//! filters outliers, deduplicates, interpolates missing values, joins
//! static metadata, annotates and publishes (paper §6.1, used for the
//! EdgeWise comparison of §6.2).
//!
//! Simulated per-tuple CPU costs are calibrated so a 4-core Odroid-class
//! node saturates in the 1.3–1.7 k tuples/s region like the paper's Fig. 5.

use std::collections::HashMap;

use spe::{
    Consume, CostModel, Emitter, LogicalGraph, OperatorLogic, Partitioning, Role, Tuple, Value,
};

use crate::bloom::BloomFilter;
use crate::data::SensorGenerator;

/// Operator names, in pipeline order.
pub const ETL_OPS: [&str; 10] = [
    "source", "senml_parse", "range_filter", "bloom_dedup", "interpolate", "join", "annotate",
    "csv_to_senml", "mqtt_publish", "sink",
];

/// Replaces missing (NaN) temperature readings with the sensor's running
/// average.
#[derive(Debug, Default)]
struct Interpolate {
    averages: HashMap<u64, (f64, u64)>,
}

impl OperatorLogic for Interpolate {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let temp = input.values[1].as_f64();
        let entry = self.averages.entry(input.key).or_insert((20.0, 0));
        let value = if temp.is_nan() {
            entry.0
        } else {
            entry.0 = (entry.0 * entry.1 as f64 + temp) / (entry.1 + 1) as f64;
            entry.1 += 1;
            temp
        };
        let mut values = input.values.clone();
        values[1] = Value::F(value);
        out.emit(input.derive(input.key, values));
    }
}

/// Drops duplicate observations (sensor, quantized reading) via a Bloom
/// filter, RIoTBench-style.
#[derive(Debug)]
struct BloomDedup {
    filter: BloomFilter,
    window: u64,
}

impl BloomDedup {
    fn new() -> Self {
        BloomDedup {
            filter: BloomFilter::new(1 << 14, 3),
            window: 0,
        }
    }
}

impl OperatorLogic for BloomDedup {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        self.window += 1;
        if self.window.is_multiple_of(10_000) {
            self.filter.clear(); // tumbling dedup window
        }
        let temp = input.values[1].as_f64();
        let quantized = if temp.is_nan() {
            u64::MAX
        } else {
            (temp * 10.0) as u64
        };
        let item = input.key << 20 | (quantized & 0xFFFFF);
        if !self.filter.check_and_insert(item) || temp.is_nan() {
            out.emit(input.clone());
        }
    }
}

/// Builds the ETL logical graph with the given ingress rate.
pub fn etl(rate_tps: f64, seed: u64) -> LogicalGraph {
    let mut b = LogicalGraph::builder("etl");
    let source = b.op("source", Role::Ingress, CostModel::micros(60), 1, || {
        Box::new(spe::PassThrough)
    });
    let parse = b.op(
        "senml_parse",
        Role::Transform,
        CostModel::micros(400),
        1,
        || Box::new(spe::PassThrough),
    );
    let range = b.op(
        "range_filter",
        Role::Transform,
        CostModel::micros(120),
        1,
        || {
            Box::new(spe::Filter(|t: &Tuple| {
                let temp = t.values[1].as_f64();
                temp.is_nan() || (0.0..=100.0).contains(&temp)
            }))
        },
    );
    let bloom = b.op(
        "bloom_dedup",
        Role::Transform,
        CostModel::micros(180),
        1,
        || Box::new(BloomDedup::new()),
    );
    let interpolate = b.op(
        "interpolate",
        Role::Transform,
        CostModel::micros(450),
        1,
        || Box::new(Interpolate::default()),
    );
    let join = b.op("join", Role::Transform, CostModel::micros(300), 1, || {
        // Joins static sensor metadata (simulated: append a zone id).
        Box::new(spe::Map(|t: &Tuple| {
            let mut values = t.values.clone();
            values.push(Value::I((t.key % 16) as i64));
            t.derive(t.key, values)
        }))
    });
    let annotate = b.op(
        "annotate",
        Role::Transform,
        CostModel::micros(520),
        1,
        || Box::new(spe::PassThrough),
    );
    let csv = b.op(
        "csv_to_senml",
        Role::Transform,
        CostModel::micros(320),
        1,
        || Box::new(spe::PassThrough),
    );
    let mqtt = b.op(
        "mqtt_publish",
        Role::Transform,
        CostModel::micros(150),
        1,
        || Box::new(spe::PassThrough),
    );
    let sink = b.op("sink", Role::Egress, CostModel::micros(60), 1, || {
        Box::new(Consume)
    });

    for (from, to) in [
        (source, parse),
        (parse, range),
        (range, bloom),
        (bloom, interpolate),
        (interpolate, join),
        (join, annotate),
        (annotate, csv),
        (csv, mqtt),
        (mqtt, sink),
    ] {
        b.edge(from, to, Partitioning::Forward);
    }

    let mut generator = SensorGenerator::new(seed, 500);
    b.source("sensors", source, rate_tps, move |seq, now| {
        generator.generate(seq, now)
    });
    b.build().expect("ETL graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Kernel, SimDuration};
    use spe::{deploy, EngineConfig, Placement};

    #[test]
    fn graph_shape_matches_paper() {
        let g = etl(100.0, 1);
        assert_eq!(g.ops.len(), 10, "ETL has 10 operators");
        assert_eq!(g.edges.len(), 9);
        for (i, name) in ETL_OPS.iter().enumerate() {
            assert_eq!(g.ops[i].name, *name);
        }
    }

    #[test]
    fn etl_runs_and_mostly_passes_tuples() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let q = deploy(
            &mut kernel,
            etl(300.0, 7),
            EngineConfig::storm(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(10));
        let ingested = q.ingress_total();
        let egressed = q.egress_total();
        assert!(ingested > 2_800, "ingested {ingested}");
        // Range filter drops ~2%, dedup drops a little.
        let ratio = egressed as f64 / ingested as f64;
        assert!((0.90..=1.0).contains(&ratio), "selectivity {ratio}");
    }

    #[test]
    fn interpolate_fills_missing_values() {
        let mut logic = Interpolate::default();
        let mut e = Emitter::new(simos::SimTime::ZERO);
        let warm = Tuple::new(simos::SimTime::ZERO, 1, vec![
            Value::I(1),
            Value::F(30.0),
            Value::F(50.0),
            Value::F(10.0),
            Value::I(0),
        ]);
        logic.process(&warm, &mut e);
        let missing = Tuple::new(simos::SimTime::ZERO, 1, vec![
            Value::I(1),
            Value::F(f64::NAN),
            Value::F(50.0),
            Value::F(10.0),
            Value::I(1),
        ]);
        logic.process(&missing, &mut e);
        let outs = e.into_outputs();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[1].1.values[1].as_f64(), 30.0, "filled with average");
    }
}
