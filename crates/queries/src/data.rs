//! Synthetic data generators replacing the paper's input traces.
//!
//! The paper replays RIoTBench sensor traces (ETL/STATS), Linear Road
//! vehicle traces (LR) and DSPBench call-detail records (VS). Only the
//! *statistical structure* of those inputs matters for scheduling — field
//! counts, key skew, out-of-range/missing-value rates — so seeded
//! generators with the same structure stand in for the traces (see
//! DESIGN.md, substitution table).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simos::SimTime;
use spe::{Tuple, Value};

/// Generates RIoTBench-style IoT sensor observations.
///
/// Fields: `[sensor_id, temperature, humidity, light, missing_flag]`.
/// ~2% of values are out of range (to be dropped by the RangeFilter) and
/// ~3% are missing (to be recovered by Interpolation).
#[derive(Debug)]
pub struct SensorGenerator {
    rng: SmallRng,
    sensors: u64,
}

impl SensorGenerator {
    /// Creates a generator over `sensors` distinct sensor ids.
    pub fn new(seed: u64, sensors: u64) -> Self {
        SensorGenerator {
            rng: SmallRng::seed_from_u64(seed),
            sensors: sensors.max(1),
        }
    }

    /// Produces the `seq`-th observation.
    pub fn generate(&mut self, seq: u64, now: SimTime) -> Tuple {
        let sensor = self.rng.gen_range(0..self.sensors);
        let out_of_range = self.rng.gen_bool(0.02);
        let missing = self.rng.gen_bool(0.03);
        let temp = if out_of_range {
            self.rng.gen_range(500.0..1000.0)
        } else {
            self.rng.gen_range(10.0..35.0)
        };
        let humidity = self.rng.gen_range(20.0..95.0);
        let light = self.rng.gen_range(0.0..1000.0);
        let _ = seq;
        Tuple::new(
            now,
            sensor,
            vec![
                Value::I(sensor as i64),
                Value::F(if missing { f64::NAN } else { temp }),
                Value::F(humidity),
                Value::F(light),
                Value::I(missing as i64),
            ],
        )
    }
}

/// Generates Linear Road position reports.
///
/// Fields: `[vehicle_id, speed, xway, lane, segment, direction, kind]`
/// where `kind` 0 = position report (~99%), 1 = account balance query.
/// A fraction of vehicles are stopped (speed 0), the accident precursor.
#[derive(Debug)]
pub struct LinearRoadGenerator {
    rng: SmallRng,
    vehicles: u64,
    xways: i64,
}

impl LinearRoadGenerator {
    /// Creates a generator over `vehicles` cars on `xways` expressways.
    pub fn new(seed: u64, vehicles: u64, xways: i64) -> Self {
        LinearRoadGenerator {
            rng: SmallRng::seed_from_u64(seed),
            vehicles: vehicles.max(1),
            xways: xways.max(1),
        }
    }

    /// Produces the `seq`-th report.
    pub fn generate(&mut self, _seq: u64, now: SimTime) -> Tuple {
        let vid = self.rng.gen_range(0..self.vehicles);
        let stopped = self.rng.gen_bool(0.01);
        let speed = if stopped {
            0.0
        } else {
            self.rng.gen_range(20.0..100.0)
        };
        let xway = self.rng.gen_range(0..self.xways);
        let lane = self.rng.gen_range(0..5i64);
        let segment = self.rng.gen_range(0..100i64);
        let direction = self.rng.gen_range(0..2i64);
        let kind = if self.rng.gen_bool(0.01) { 1i64 } else { 0 };
        Tuple::new(
            now,
            vid,
            vec![
                Value::I(vid as i64),
                Value::F(speed),
                Value::I(xway),
                Value::I(lane),
                Value::I(segment),
                Value::I(direction),
                Value::I(kind),
            ],
        )
    }
}

/// Generates VoipStream call detail records (CDRs).
///
/// Fields: `[caller, callee, duration_secs, answered]`. A small set of
/// telemarketing callers place many short calls to distinct callees — the
/// pattern the VS query's Bloom-filter cascade detects.
#[derive(Debug)]
pub struct CdrGenerator {
    rng: SmallRng,
    users: u64,
    telemarketers: u64,
}

impl CdrGenerator {
    /// Creates a generator with `users` subscribers of which
    /// `telemarketers` behave abusively.
    pub fn new(seed: u64, users: u64, telemarketers: u64) -> Self {
        CdrGenerator {
            rng: SmallRng::seed_from_u64(seed),
            users: users.max(2),
            telemarketers: telemarketers.min(users / 2).max(1),
        }
    }

    /// Produces the `seq`-th CDR.
    pub fn generate(&mut self, _seq: u64, now: SimTime) -> Tuple {
        let is_tm = self.rng.gen_bool(0.1);
        let caller = if is_tm {
            self.rng.gen_range(0..self.telemarketers)
        } else {
            self.rng.gen_range(self.telemarketers..self.users)
        };
        let callee = self.rng.gen_range(0..self.users);
        let duration = if is_tm {
            self.rng.gen_range(1.0..30.0)
        } else {
            self.rng.gen_range(10.0..600.0)
        };
        let answered = self.rng.gen_bool(if is_tm { 0.4 } else { 0.9 });
        Tuple::new(
            now,
            caller,
            vec![
                Value::I(caller as i64),
                Value::I(callee as i64),
                Value::F(duration),
                Value::I(answered as i64),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_generator_is_deterministic() {
        let mut a = SensorGenerator::new(7, 100);
        let mut b = SensorGenerator::new(7, 100);
        for i in 0..50 {
            // Compare the rendering: missing values are NaN, and NaN != NaN
            // would fail tuple equality even for identical streams.
            assert_eq!(
                format!("{:?}", a.generate(i, SimTime::ZERO)),
                format!("{:?}", b.generate(i, SimTime::ZERO))
            );
        }
    }

    #[test]
    fn sensor_fields_have_expected_shape() {
        let mut g = SensorGenerator::new(1, 10);
        let t = g.generate(0, SimTime::ZERO);
        assert_eq!(t.values.len(), 5);
        assert!(t.key < 10);
    }

    #[test]
    fn lr_reports_mostly_position_kind() {
        let mut g = LinearRoadGenerator::new(3, 1000, 2);
        let mut pos = 0;
        for i in 0..1000 {
            let t = g.generate(i, SimTime::ZERO);
            if t.values[6].as_i64() == 0 {
                pos += 1;
            }
            assert!(t.values[2].as_i64() < 2);
        }
        assert!(pos > 950, "{pos} position reports");
    }

    #[test]
    fn cdr_telemarketers_call_short() {
        let mut g = CdrGenerator::new(5, 1000, 10);
        let mut tm_dur = 0.0;
        let mut tm_n = 0;
        for i in 0..2000 {
            let t = g.generate(i, SimTime::ZERO);
            if t.values[0].as_i64() < 10 {
                tm_dur += t.values[2].as_f64();
                tm_n += 1;
            }
        }
        assert!(tm_n > 100, "telemarketer calls present: {tm_n}");
        assert!((tm_dur / tm_n as f64) < 60.0, "short calls");
    }
}
