//! The **SYN** workload: a set of synthetic queries, each a pipeline of 5
//! operators with uniformly random cost and selectivity, exactly as in the
//! Haren evaluation the paper reuses (§6.1, Figs. 14–16).
//!
//! All pipelines live in one [`LogicalGraph`] so a single engine instance
//! (and a single user-level scheduler) executes all of them — the paper's
//! multi-query Liebre deployment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simos::SimDuration;
use spe::{
    Consume, CostModel, Emitter, LogicalGraph, OperatorLogic, Partitioning, Role, Tuple,
};

/// Configuration of the SYN workload generator.
#[derive(Debug, Clone, Copy)]
pub struct SynConfig {
    /// Number of pipelines (the paper uses 20).
    pub queries: usize,
    /// Operators per pipeline including ingress and egress (paper: 5).
    pub ops_per_query: usize,
    /// Uniform range of mid-operator costs, microseconds.
    pub cost_range_us: (u64, u64),
    /// Uniform range of mid-operator selectivities.
    pub selectivity_range: (f64, f64),
    /// Seed for the random costs/selectivities and tuple generators.
    pub seed: u64,
}

impl Default for SynConfig {
    fn default() -> Self {
        SynConfig {
            queries: 20,
            ops_per_query: 5,
            cost_range_us: (200, 1000),
            selectivity_range: (0.5, 1.5),
            seed: 42,
        }
    }
}

/// A stateless operator with fractional selectivity: emits
/// `floor(s)` copies always plus one more with probability `frac(s)`.
#[derive(Debug)]
struct SyntheticOp {
    selectivity: f64,
    rng: SmallRng,
}

impl SyntheticOp {
    fn new(selectivity: f64, seed: u64) -> Self {
        SyntheticOp {
            selectivity: selectivity.max(0.0),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OperatorLogic for SyntheticOp {
    fn process(&mut self, input: &Tuple, out: &mut Emitter) {
        let whole = self.selectivity.floor() as usize;
        let frac = self.selectivity - whole as f64;
        let n = whole + usize::from(self.rng.gen_bool(frac.clamp(0.0, 1.0)));
        for _ in 0..n {
            out.emit(input.clone());
        }
    }
}

/// Builds the SYN workload: `cfg.queries` pipelines sharing `total_rate`
/// tuples/s evenly across their sources.
pub fn syn(total_rate: f64, cfg: SynConfig) -> LogicalGraph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let per_query_rate = total_rate / cfg.queries.max(1) as f64;
    let mut b = LogicalGraph::builder("syn");
    for q in 0..cfg.queries {
        let mut prev = None;
        for o in 0..cfg.ops_per_query {
            let first = o == 0;
            let last = o == cfg.ops_per_query - 1;
            let role = if first {
                Role::Ingress
            } else if last {
                Role::Egress
            } else {
                Role::Transform
            };
            let cost = if first || last {
                CostModel::Fixed(SimDuration::from_micros(30))
            } else {
                CostModel::Fixed(SimDuration::from_micros(
                    rng.gen_range(cfg.cost_range_us.0..=cfg.cost_range_us.1),
                ))
            };
            let name = format!("q{q}_op{o}");
            let id = if last {
                b.op(&name, role, cost, 1, || Box::new(Consume))
            } else if first {
                b.op(&name, role, cost, 1, || Box::new(spe::PassThrough))
            } else {
                let sel = rng.gen_range(cfg.selectivity_range.0..=cfg.selectivity_range.1);
                let op_seed = cfg.seed ^ ((q as u64) << 16 | o as u64);
                b.op(&name, role, cost, 1, move || {
                    Box::new(SyntheticOp::new(sel, op_seed))
                })
            };
            if let Some(prev) = prev {
                b.edge(prev, id, Partitioning::Forward);
            }
            if first {
                let mut k = 0u64;
                b.source(&format!("syn_src{q}"), id, per_query_rate, move |seq, now| {
                    k += 1;
                    Tuple::new(now, seq.wrapping_mul(31).wrapping_add(k), vec![])
                });
            }
            prev = Some(id);
        }
    }
    b.build().expect("SYN graph is valid")
}

/// Builds one SYN pipeline as its own query named `syn{index}`, drawing
/// the same kind of random costs/selectivities as the combined graph.
/// Multi-SPE experiments (§6.6) deploy pipelines as separate queries so
/// each gets its own cgroup entitlement.
pub fn syn_single(index: usize, rate: f64, cfg: SynConfig) -> LogicalGraph {
    let single = SynConfig {
        queries: 1,
        seed: cfg.seed ^ ((index as u64 + 1) << 24),
        ..cfg
    };
    let mut g = syn(rate, single);
    g.name = format!("syn{index}");
    g
}

/// Downstream logical-operator indices per operator — the topology handed
/// to Haren (which, being engine-coupled, knows its query graph). Valid as
/// pool indices because SYN deploys with parallelism 1 and no chaining.
pub fn downstream_indices(graph: &LogicalGraph) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); graph.ops.len()];
    for e in &graph.edges {
        out[e.from].push(e.to);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Kernel, SimDuration};
    use spe::{deploy, EngineConfig, Placement};

    #[test]
    fn builds_the_paper_shape() {
        let g = syn(1000.0, SynConfig::default());
        assert_eq!(g.ops.len(), 100, "20 pipelines x 5 ops");
        assert_eq!(g.sources.len(), 20);
        assert_eq!(g.edges.len(), 80);
        let ds = downstream_indices(&g);
        assert_eq!(ds[0], vec![1]);
        assert!(ds[4].is_empty(), "sinks have no downstream");
    }

    #[test]
    fn costs_and_selectivities_are_deterministic() {
        let a = syn(1000.0, SynConfig::default());
        let b = syn(1000.0, SynConfig::default());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.cost, y.cost);
        }
    }

    #[test]
    fn pipelines_flow_end_to_end() {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 4);
        let cfg = SynConfig {
            queries: 4,
            ..SynConfig::default()
        };
        let q = deploy(
            &mut kernel,
            syn(400.0, cfg),
            EngineConfig::liebre(),
            &Placement::single(node),
            None,
        )
        .unwrap();
        kernel.run_for(SimDuration::from_secs(10));
        assert_eq!(q.sinks().len(), 4);
        assert!(q.ingress_total() > 3_800, "{}", q.ingress_total());
        for (_, s) in q.sinks() {
            assert!(s.borrow().count() > 100, "every pipeline delivers");
        }
    }

    #[test]
    fn synthetic_selectivity_matches_expectation() {
        let mut op = SyntheticOp::new(1.5, 7);
        let mut total = 0;
        let t = Tuple::new(simos::SimTime::ZERO, 0, vec![]);
        for _ in 0..2000 {
            let mut e = Emitter::new(simos::SimTime::ZERO);
            op.process(&t, &mut e);
            total += e.emitted();
        }
        let avg = total as f64 / 2000.0;
        assert!((avg - 1.5).abs() < 0.08, "selectivity {avg}");
    }
}
