//! # queries — the Lachesis evaluation workloads
//!
//! The five queries of the paper's evaluation (§6.1), built from scratch on
//! the [`spe`] substrate with synthetic, seeded data generators standing in
//! for the original traces:
//!
//! * [`etl`] — RIoTBench ETL, 10 operators (EdgeWise comparison, Figs. 5/6);
//! * [`stats`] — RIoTBench STATS, 10 operators, ~15× selectivity and a
//!   Kalman-filter bottleneck (Figs. 7/8);
//! * [`lr`] — Linear Road, 9 operators, two toll branches (Figs. 9/11/17);
//! * [`vs`] — VoipStream, 15 operators with Bloom-filter modules
//!   (Figs. 10/12);
//! * [`syn`] — 20 synthetic 5-operator pipelines with random cost and
//!   selectivity (Haren comparison, Figs. 14–16).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bloom;
mod data;
mod etl;
mod lr;
mod stats_q;
mod syn;
mod vs;

pub use bloom::BloomFilter;
pub use data::{CdrGenerator, LinearRoadGenerator, SensorGenerator};
pub use etl::{etl, ETL_OPS};
pub use lr::{lr, lr_with_parallelism, LR_OPS};
pub use stats_q::{stats, STATS_OPS};
pub use syn::{downstream_indices, syn, syn_single, SynConfig};
pub use vs::{vs, VS_OPS};
