//! A real Bloom filter, used by the ETL deduplication stage and the
//! VoipStream detection cascade (the paper's VS query "makes intensive use
//! of group-by distributions" and Bloom filters, §6.1).

/// A fixed-size Bloom filter over `u64` items with `k` hash functions.
///
/// # Examples
///
/// ```
/// use queries::BloomFilter;
///
/// let mut b = BloomFilter::new(1 << 12, 3);
/// assert!(!b.contains(42));
/// b.insert(42);
/// assert!(b.contains(42));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits (rounded up to a power of two)
    /// and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `hashes` is zero.
    pub fn new(bits: usize, hashes: u32) -> Self {
        assert!(bits > 0 && hashes > 0, "bloom filter needs bits and hashes");
        let bits = bits.next_power_of_two().max(64);
        BloomFilter {
            bits: vec![0; bits / 64],
            mask: bits as u64 - 1,
            hashes,
            inserted: 0,
        }
    }

    fn hash(item: u64, i: u32) -> u64 {
        // Double hashing with two independent mixes (splitmix64 finalizers).
        let mut h1 = item.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h1 = (h1 ^ (h1 >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h1 = (h1 ^ (h1 >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h1 ^= h1 >> 31;
        let mut h2 = item.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).wrapping_add(1);
        h2 = (h2 ^ (h2 >> 29)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h2 ^= h2 >> 32;
        h1.wrapping_add((i as u64).wrapping_mul(h2 | 1))
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: u64) {
        for i in 0..self.hashes {
            let bit = Self::hash(item, i) & self.mask;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Whether the item is (probably) present. False positives possible,
    /// false negatives not.
    pub fn contains(&self, item: u64) -> bool {
        (0..self.hashes).all(|i| {
            let bit = Self::hash(item, i) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Inserts and reports whether the item was (probably) already there.
    pub fn check_and_insert(&mut self, item: u64) -> bool {
        let present = self.contains(item);
        self.insert(item);
        present
    }

    /// Number of insert operations performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::new(1 << 14, 4);
        for i in 0..1000 {
            b.insert(i * 31);
        }
        for i in 0..1000 {
            assert!(b.contains(i * 31));
        }
    }

    #[test]
    fn false_positive_rate_is_low_when_sized_right() {
        let mut b = BloomFilter::new(1 << 16, 4);
        for i in 0..2000u64 {
            b.insert(i);
        }
        let fp = (10_000..20_000u64).filter(|&i| b.contains(i)).count();
        assert!(fp < 100, "false positives: {fp}/10000");
    }

    #[test]
    fn check_and_insert_detects_duplicates() {
        let mut b = BloomFilter::new(1 << 12, 3);
        assert!(!b.check_and_insert(99));
        assert!(b.check_and_insert(99));
    }

    #[test]
    fn clear_resets() {
        let mut b = BloomFilter::new(1 << 10, 2);
        b.insert(5);
        b.clear();
        assert!(!b.contains(5));
        assert_eq!(b.inserted(), 0);
    }
}
