//! Property tests of the workload builders: every seed yields a valid
//! graph with the paper's structure, and the generators stay in range.

use proptest::prelude::*;
use simos::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All five workload builders validate for any seed and rate.
    #[test]
    fn builders_always_validate(seed in 0u64..1_000, rate in 1.0f64..10_000.0) {
        prop_assert_eq!(queries::etl(rate, seed).ops.len(), 10);
        prop_assert_eq!(queries::stats(rate, seed).ops.len(), 10);
        prop_assert_eq!(queries::lr(rate, seed).ops.len(), 9);
        prop_assert_eq!(queries::vs(rate, seed).ops.len(), 15);
        let syn = queries::syn(rate, queries::SynConfig { seed, ..Default::default() });
        prop_assert_eq!(syn.ops.len(), 100);
    }

    /// LR parallel deployments replicate every operator.
    #[test]
    fn lr_parallelism_scales_ops(p in 1usize..6) {
        let g = queries::lr_with_parallelism(100.0, 1, p);
        for op in &g.ops {
            prop_assert_eq!(op.parallelism, p);
        }
    }

    /// Sensor readings stay within the generator's documented envelope.
    #[test]
    fn sensor_values_in_range(seed in 0u64..500) {
        let mut g = queries::SensorGenerator::new(seed, 100);
        for i in 0..200 {
            let t = g.generate(i, SimTime::ZERO);
            let humidity = t.values[2].as_f64();
            let light = t.values[3].as_f64();
            prop_assert!((20.0..95.0).contains(&humidity));
            prop_assert!((0.0..1000.0).contains(&light));
            let temp = t.values[1].as_f64();
            prop_assert!(temp.is_nan() || (10.0..1000.0).contains(&temp));
        }
    }

    /// LR reports reference valid lanes/segments/directions.
    #[test]
    fn lr_reports_in_range(seed in 0u64..500) {
        let mut g = queries::LinearRoadGenerator::new(seed, 100, 3);
        for i in 0..200 {
            let t = g.generate(i, SimTime::ZERO);
            prop_assert!((0..3).contains(&t.values[2].as_i64()), "xway");
            prop_assert!((0..5).contains(&t.values[3].as_i64()), "lane");
            prop_assert!((0..100).contains(&t.values[4].as_i64()), "segment");
            prop_assert!((0..2).contains(&t.values[5].as_i64()), "direction");
            prop_assert!((0.0..=100.0).contains(&t.values[1].as_f64()), "speed");
        }
    }

    /// CDRs reference subscribers inside the population.
    #[test]
    fn cdrs_in_population(seed in 0u64..500) {
        let mut g = queries::CdrGenerator::new(seed, 500, 10);
        for i in 0..200 {
            let t = g.generate(i, SimTime::ZERO);
            prop_assert!((0..500).contains(&t.values[0].as_i64()), "caller");
            prop_assert!((0..500).contains(&t.values[1].as_i64()), "callee");
            prop_assert!(t.values[2].as_f64() > 0.0, "duration");
        }
    }

    /// SYN costs honour the configured range and pipelines are uniform.
    #[test]
    fn syn_costs_in_configured_range(
        seed in 0u64..200,
        lo in 50u64..300,
        span in 1u64..700,
    ) {
        let cfg = queries::SynConfig {
            cost_range_us: (lo, lo + span),
            seed,
            ..Default::default()
        };
        let g = queries::syn(1_000.0, cfg);
        for (i, op) in g.ops.iter().enumerate() {
            let stage = i % cfg.ops_per_query;
            let spe::CostModel::Fixed(c) = op.cost else {
                return Err(TestCaseError::fail("SYN uses fixed costs"));
            };
            let us = c.as_nanos() / 1_000;
            if stage == 0 || stage == cfg.ops_per_query - 1 {
                prop_assert_eq!(us, 30, "source/sink cost");
            } else {
                prop_assert!((lo..=lo + span).contains(&us), "mid cost {us}");
            }
        }
    }
}

/// `syn_single` pipelines are disjointly named and structurally identical
/// to one combined-pipeline slice.
#[test]
fn syn_single_pipelines_are_named_queries() {
    let cfg = queries::SynConfig::default();
    let a = queries::syn_single(0, 100.0, cfg);
    let b = queries::syn_single(1, 100.0, cfg);
    assert_eq!(a.name, "syn0");
    assert_eq!(b.name, "syn1");
    assert_eq!(a.ops.len(), cfg.ops_per_query);
    // Different indices draw different random costs.
    let costs = |g: &spe::LogicalGraph| -> Vec<spe::CostModel> {
        g.ops.iter().map(|o| o.cost).collect()
    };
    assert_ne!(costs(&a), costs(&b));
}
