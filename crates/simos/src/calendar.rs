//! The unified event calendar: a min-heap of future events keyed by
//! [`SimTime`] with a deterministic insertion-order tie-break.
//!
//! The kernel stores *everything* time-driven in one calendar — timer
//! firings, per-CPU slice expiries and work completions — so the main loop
//! finds the next interesting instant with one `O(log n)` pop instead of
//! scanning every CPU of every node. Two events at the same instant fire
//! in insertion order, which keeps the whole simulation deterministic.
//!
//! Cancellation is lazy: [`cancel`](EventCalendar::cancel) marks the id and
//! the entry is discarded when it reaches the front, so cancelling is
//! `O(1)` and never disturbs the heap.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle to a scheduled event, returned by
/// [`insert`](EventCalendar::insert) and accepted by
/// [`cancel`](EventCalendar::cancel). Ids are unique per calendar and are
/// never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The id's raw sequence number: the calendar's same-instant tie-break.
    pub fn seq(&self) -> u64 {
        self.0
    }
}

/// Heap entry: ordered by `(at, seq)` only, so payloads need no ordering.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use simos::{EventCalendar, SimTime};
///
/// let mut cal: EventCalendar<&str> = EventCalendar::new();
/// cal.insert(SimTime::from_nanos(20), "later");
/// let first = cal.insert(SimTime::from_nanos(10), "sooner");
/// cal.cancel(first);
/// let (at, _, what) = cal.pop().unwrap();
/// assert_eq!((at, what), (SimTime::from_nanos(20), "later"));
/// ```
pub struct EventCalendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventCalendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventCalendar")
            .field("pending", &self.heap.len())
            .field("cancelled", &self.cancelled.len())
            .finish_non_exhaustive()
    }
}

impl<E> Default for EventCalendar<E> {
    fn default() -> Self {
        EventCalendar::new()
    }
}

// `is_empty` takes `&mut self` (it must discard lazily-cancelled entries
// to give an exact answer), which clippy doesn't recognize as pairing
// with `len`.
#[allow(clippy::len_without_is_empty)]
impl<E> EventCalendar<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventCalendar {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at instant `at` (which may be in the past from
    /// the caller's point of view; the calendar itself has no clock).
    pub fn insert(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        EventId(seq)
    }

    /// Allocates a sequence number from the calendar's tie-break space
    /// without scheduling anything. Lets a sibling queue (e.g. a FIFO of
    /// constant-delay events) order its entries against calendar events
    /// firing at the same instant.
    pub fn reserve_seq(&mut self) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        EventId(seq)
    }

    /// Cancels a pending event. Cancelling an event that already fired (or
    /// was already cancelled) has no effect.
    pub fn cancel(&mut self, id: EventId) {
        if id.0 < self.next_seq {
            self.cancelled.insert(id.0);
        }
    }

    /// Drops cancelled entries sitting at the front of the heap.
    fn skip_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.is_empty() || !self.cancelled.remove(&e.seq) {
                return;
            }
            self.heap.pop();
        }
    }

    /// The earliest pending event, without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| (e.at, &e.payload))
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.skip_cancelled();
        self.heap
            .pop()
            .map(|Reverse(e)| (e.at, EventId(e.seq), e.payload))
    }

    /// Number of entries still in the heap (cancelled-but-not-yet-skipped
    /// entries count, so this is an upper bound on pending events).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending. Takes `&mut self` (unlike the usual
    /// `len`/`is_empty` pairing) because it must discard lazily-cancelled
    /// entries to give an exact answer.
    pub fn is_empty(&mut self) -> bool {
        self.peek().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = EventCalendar::new();
        cal.insert(at(30), 'c');
        cal.insert(at(10), 'a');
        cal.insert(at(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut cal = EventCalendar::new();
        for i in 0..10 {
            cal.insert(at(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut cal = EventCalendar::new();
        let a = cal.insert(at(1), "a");
        cal.insert(at(2), "b");
        let c = cal.insert(at(3), "c");
        cal.cancel(a);
        cal.cancel(c);
        assert_eq!(cal.peek().map(|(t, &p)| (t, p)), Some((at(2), "b")));
        assert_eq!(cal.pop().map(|(_, _, p)| p), Some("b"));
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_inert() {
        let mut cal = EventCalendar::new();
        let a = cal.insert(at(1), 1u8);
        assert!(cal.pop().is_some());
        cal.cancel(a); // already fired: must not poison later entries
        cal.insert(at(2), 2u8);
        assert_eq!(cal.pop().map(|(_, _, p)| p), Some(2u8));
    }
}
