//! Modeled cluster network: link latencies, lookahead, and the deterministic
//! envelope ordering used by the sharded (multi-kernel) simulation.
//!
//! A rack-scale simulation runs N rack nodes across S independent [`Kernel`]
//! instances ("shards") that advance in **lockstep epochs**. The epoch
//! length is the *conservative lookahead*: the minimum latency over all
//! links. Any message sent during epoch `k` (times in `[kE, (k+1)E)`, plus
//! the boundary instant processed by the epoch's final `run_until`) arrives
//! at `send + latency ≥ (k+1)E` — i.e. strictly inside a later epoch — so
//! shards never need to see each other's state mid-epoch and can run on
//! parallel threads between barriers.
//!
//! At each barrier, outgoing [`Envelope`]s from all shards are merged and
//! sorted by [`Envelope::order_key`] — `(recv_time, src node, per-link seq,
//! dst node)` — before being injected into the destination shards. Because
//! the key is built only from *rack-node*-level identifiers (never shard or
//! thread ids), the injected event order is identical for every layout of
//! rack nodes onto shards and every shard-thread count.
//!
//! [`Kernel`]: crate::Kernel

use crate::time::{SimDuration, SimTime};

/// A rack-node index (not a shard index: several rack nodes may be
/// co-simulated by one kernel shard).
pub type RackNodeId = usize;

/// The modeled network: a full latency matrix over rack nodes.
///
/// Latencies are per directed link and must be positive; the minimum over
/// all links bounds the epoch length (lookahead). The matrix is pure data —
/// it carries no reference to any kernel, so it can be shared across shard
/// threads.
#[derive(Debug, Clone)]
pub struct NetTopology {
    nodes: usize,
    /// Row-major `nodes × nodes`; `latency[src * nodes + dst]`.
    latency: Vec<SimDuration>,
}

impl NetTopology {
    /// A topology where every directed link has the same latency.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `latency` is zero.
    pub fn uniform(nodes: usize, latency: SimDuration) -> NetTopology {
        NetTopology::from_matrix(nodes, vec![latency; nodes * nodes])
    }

    /// A topology from a full row-major latency matrix.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, the matrix is not `nodes × nodes`, or any
    /// link latency is zero (zero lookahead would forbid parallelism).
    pub fn from_matrix(nodes: usize, latency: Vec<SimDuration>) -> NetTopology {
        assert!(nodes > 0, "a cluster needs at least one rack node");
        assert_eq!(latency.len(), nodes * nodes, "latency matrix shape");
        assert!(
            latency.iter().all(|l| !l.is_zero()),
            "every link latency must be > 0 (lookahead would collapse)"
        );
        NetTopology { nodes, latency }
    }

    /// Number of rack nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Latency of the directed link `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn latency(&self, src: RackNodeId, dst: RackNodeId) -> SimDuration {
        assert!(src < self.nodes && dst < self.nodes, "rack node in range");
        self.latency[src * self.nodes + dst]
    }

    /// The conservative lookahead: the minimum latency over **all** directed
    /// links, including self-links. Using the full matrix (rather than only
    /// links that cross a shard boundary) keeps the epoch length — and hence
    /// every artifact — independent of how rack nodes are laid out onto
    /// shards.
    pub fn lookahead(&self) -> SimDuration {
        self.latency
            .iter()
            .copied()
            .min()
            .expect("non-empty matrix")
    }
}

/// One message in flight on the modeled network.
///
/// `P` is the payload type; the cluster layer instantiates it with its own
/// plain-data message enum (tuples, metric samples, scheduler commands).
#[derive(Debug, Clone)]
pub struct Envelope<P> {
    /// Simulated time the source node handed the message to the network.
    pub send_time: SimTime,
    /// Arrival time: `send_time + latency(src, dst)`.
    pub recv_time: SimTime,
    /// Sending rack node.
    pub src: RackNodeId,
    /// Destination rack node.
    pub dst: RackNodeId,
    /// Per-`(src, dst)` link sequence number, monotone in send order.
    pub seq: u64,
    /// The message itself.
    pub payload: P,
}

impl<P> Envelope<P> {
    /// The deterministic delivery order: by arrival time, then source node,
    /// then link sequence, then destination. Built exclusively from
    /// rack-node-level data so it is identical for every shard layout.
    pub fn order_key(&self) -> (SimTime, RackNodeId, u64, RackNodeId) {
        (self.recv_time, self.src, self.seq, self.dst)
    }
}

/// Stamps per-link sequence numbers and arrival times onto raw sends.
///
/// Each shard owns one `LinkStamper` per *source* rack node it simulates
/// (sequence numbers are per `(src, dst)` pair, so per-source state never
/// races across shards).
#[derive(Debug)]
pub struct LinkStamper {
    src: RackNodeId,
    /// Next sequence number per destination node.
    next_seq: Vec<u64>,
}

impl LinkStamper {
    /// A stamper for messages originating at `src` in a `nodes`-node rack.
    pub fn new(src: RackNodeId, nodes: usize) -> LinkStamper {
        assert!(src < nodes, "source rack node in range");
        LinkStamper {
            src,
            next_seq: vec![0; nodes],
        }
    }

    /// The source rack node this stamper serves.
    pub fn src(&self) -> RackNodeId {
        self.src
    }

    /// Wraps `payload` in an [`Envelope`] for `dst`, assigning the next
    /// link sequence number and the modeled arrival time.
    pub fn stamp<P>(
        &mut self,
        topo: &NetTopology,
        dst: RackNodeId,
        send_time: SimTime,
        payload: P,
    ) -> Envelope<P> {
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        Envelope {
            send_time,
            recv_time: send_time + topo.latency(self.src, dst),
            src: self.src,
            dst,
            seq,
            payload,
        }
    }
}

/// SplitMix64 finalizer: the stateless hash behind [`NetFaultPlan`]
/// verdicts and per-node seed derivation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a sub-seed from a base seed and a stable salt (e.g. a rack
/// node id). Fault plans seeded this way observe the same fault sequence
/// no matter how rack nodes are packed into shards — the salt is a
/// rack-node-level identifier, never a shard or thread index.
pub fn mix_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ splitmix64(salt))
}

/// What the fault plan says should happen to one stamped envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetVerdict {
    /// Deliver at the modeled link latency.
    Deliver,
    /// Deliver late: add this much on top of the modeled link latency.
    Delay(SimDuration),
    /// Drop the envelope.
    Drop,
}

/// What a matching [`NetRule`] does to an envelope that draws a hit.
#[derive(Debug, Clone, Copy)]
enum NetEffect {
    Delay(SimDuration),
    Drop,
}

/// One windowed network-fault rule.
#[derive(Debug, Clone)]
struct NetRule {
    /// Window over **send** time: `[from, until)`. Send time (not arrival)
    /// keys the window because it is known at stamp time and identical in
    /// every shard layout.
    from: SimTime,
    until: SimTime,
    /// Source node set (empty = any).
    a: Vec<RackNodeId>,
    /// Destination node set (empty = any).
    b: Vec<RackNodeId>,
    /// Also match the reverse direction (`b → a`).
    bidir: bool,
    /// Probability an envelope matching the rule draws the effect.
    p: f64,
    effect: NetEffect,
}

impl NetRule {
    fn matches(&self, src: RackNodeId, dst: RackNodeId, send: SimTime) -> bool {
        if send < self.from || send >= self.until {
            return false;
        }
        let side = |set: &[RackNodeId], n: RackNodeId| set.is_empty() || set.contains(&n);
        side(&self.a, src) && side(&self.b, dst)
            || self.bidir && side(&self.b, src) && side(&self.a, dst)
    }
}

/// A seeded, deterministic plan of network faults: link latency spikes,
/// probabilistic envelope drops, and full bidirectional partitions, each
/// active over a send-time window.
///
/// The plan is **pure data plus a pure function**: the verdict for an
/// envelope is a stateless hash of `(seed, rule index, src, dst, seq,
/// send time)`. Unlike counter-based fault plans, no evaluation-order
/// state exists, so any shard layout — and any re-evaluation of the same
/// envelope, e.g. by a journal validator — computes the identical verdict.
///
/// The cluster layer consults the plan only for **control-plane**
/// envelopes (scheduler commands and metric samples). Data tuples are
/// never delayed or dropped: a destination queue models exactly one
/// network delay, and tuple loss is the SPE's (load shedding) business,
/// not the fabric's.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    seed: u64,
    rules: Vec<NetRule>,
}

impl NetFaultPlan {
    /// An empty plan (every verdict is [`NetVerdict::Deliver`]).
    pub fn new(seed: u64) -> NetFaultPlan {
        NetFaultPlan { seed, rules: Vec::new() }
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds a latency spike: envelopes sent on `src → dst` during
    /// `[from, until)` draw `extra` additional latency with probability `p`.
    pub fn latency_spike(
        mut self,
        from: SimTime,
        until: SimTime,
        src: RackNodeId,
        dst: RackNodeId,
        p: f64,
        extra: SimDuration,
    ) -> NetFaultPlan {
        self.rules.push(NetRule {
            from,
            until,
            a: vec![src],
            b: vec![dst],
            bidir: false,
            p,
            effect: NetEffect::Delay(extra),
        });
        self
    }

    /// Adds a lossy link: envelopes sent on `src → dst` during
    /// `[from, until)` are dropped with probability `p`.
    pub fn drop_link(
        mut self,
        from: SimTime,
        until: SimTime,
        src: RackNodeId,
        dst: RackNodeId,
        p: f64,
    ) -> NetFaultPlan {
        self.rules.push(NetRule {
            from,
            until,
            a: vec![src],
            b: vec![dst],
            bidir: false,
            p,
            effect: NetEffect::Drop,
        });
        self
    }

    /// Adds a full partition: every envelope between the `a` and `b` node
    /// sets (both directions) sent during `[from, until)` is dropped. An
    /// empty set means "every node", so `partition(f, u, vec![0], vec![])`
    /// isolates node 0 from the whole rack.
    pub fn partition(
        mut self,
        from: SimTime,
        until: SimTime,
        a: Vec<RackNodeId>,
        b: Vec<RackNodeId>,
    ) -> NetFaultPlan {
        self.rules.push(NetRule {
            from,
            until,
            a,
            b,
            bidir: true,
            p: 1.0,
            effect: NetEffect::Drop,
        });
        self
    }

    /// True if `[from, until)` contains a window where `src → dst` is
    /// fully partitioned (some drop rule with `p >= 1` matches).
    pub fn is_partitioned(&self, src: RackNodeId, dst: RackNodeId, at: SimTime) -> bool {
        self.rules.iter().any(|r| {
            matches!(r.effect, NetEffect::Drop) && r.p >= 1.0 && r.matches(src, dst, at)
        })
    }

    /// The verdict for one stamped envelope. Pure: depends only on the
    /// plan and the envelope's rack-node-level identity, never on how many
    /// envelopes were evaluated before it or on which shard evaluates it.
    ///
    /// Drops win over delays; delay extras from all firing rules add up.
    pub fn verdict(
        &self,
        src: RackNodeId,
        dst: RackNodeId,
        seq: u64,
        send: SimTime,
    ) -> NetVerdict {
        let mut extra = SimDuration::ZERO;
        let mut delayed = false;
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.matches(src, dst, send) {
                continue;
            }
            let mut h = splitmix64(self.seed ^ (idx as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            for v in [src as u64, dst as u64, seq, send.as_nanos()] {
                h = splitmix64(h ^ v);
            }
            let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
            if draw < rule.p {
                match rule.effect {
                    NetEffect::Drop => return NetVerdict::Drop,
                    NetEffect::Delay(d) => {
                        delayed = true;
                        extra += d;
                    }
                }
            }
        }
        if delayed {
            NetVerdict::Delay(extra)
        } else {
            NetVerdict::Deliver
        }
    }
}

/// Lockstep epoch bookkeeping: epoch `k` covers `(k·E, (k+1)·E]` of
/// simulated time — each epoch's work is one `run_until((k+1)·E)` call.
#[derive(Debug, Clone, Copy)]
pub struct EpochClock {
    len: SimDuration,
    next: u64,
}

impl EpochClock {
    /// A clock with epoch length `len` (normally the topology lookahead).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: SimDuration) -> EpochClock {
        assert!(!len.is_zero(), "epoch length must be > 0");
        EpochClock { len, next: 0 }
    }

    /// Epoch length.
    pub fn len(&self) -> SimDuration {
        self.len
    }

    /// Index of the next epoch to run (starting at 0).
    pub fn next_epoch(&self) -> u64 {
        self.next
    }

    /// End time of the next epoch, i.e. the `run_until` deadline, then
    /// advances the clock. Returns `(epoch index, deadline)`.
    pub fn advance(&mut self) -> (u64, SimTime) {
        let epoch = self.next;
        self.next += 1;
        (epoch, self.deadline_of(self.next))
    }

    /// The barrier time at the *start* of `epoch` (= end of `epoch - 1`).
    pub fn deadline_of(&self, epoch: u64) -> SimTime {
        SimTime::from_nanos(epoch * self.len.as_nanos())
    }

    /// The epoch an instant falls in (boundary instants belong to the
    /// epoch they end: `epoch_of(kE) == k - 1` for `k > 0`).
    pub fn epoch_of(&self, t: SimTime) -> u64 {
        let nanos = t.as_nanos();
        let len = self.len.as_nanos();
        if nanos == 0 {
            0
        } else {
            (nanos - 1) / len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn uniform_lookahead_is_the_latency() {
        let topo = NetTopology::uniform(4, us(500));
        assert_eq!(topo.lookahead(), us(500));
        assert_eq!(topo.latency(0, 3), us(500));
    }

    #[test]
    fn lookahead_is_min_over_all_links() {
        let mut m = vec![us(1000); 9];
        m[3 + 2] = us(250); // link 1 -> 2
        let topo = NetTopology::from_matrix(3, m);
        assert_eq!(topo.lookahead(), us(250));
    }

    #[test]
    #[should_panic(expected = "link latency")]
    fn zero_latency_rejected() {
        NetTopology::uniform(2, SimDuration::ZERO);
    }

    #[test]
    fn stamper_sequences_per_destination() {
        let topo = NetTopology::uniform(3, us(100));
        let mut stamper = LinkStamper::new(1, 3);
        let t = SimTime::from_nanos(5_000);
        let a = stamper.stamp(&topo, 0, t, "a");
        let b = stamper.stamp(&topo, 2, t, "b");
        let c = stamper.stamp(&topo, 0, t, "c");
        assert_eq!((a.seq, b.seq, c.seq), (0, 0, 1));
        assert_eq!(a.recv_time, t + us(100));
        assert_eq!(a.src, 1);
    }

    #[test]
    fn order_key_sorts_by_arrival_then_src_then_seq() {
        let topo = NetTopology::uniform(3, us(100));
        let t = SimTime::from_nanos(1_000);
        let mut s0 = LinkStamper::new(0, 3);
        let mut s1 = LinkStamper::new(1, 3);
        let e1 = s1.stamp(&topo, 2, t, ());
        let e0a = s0.stamp(&topo, 2, t, ());
        let e0b = s0.stamp(&topo, 2, t, ());
        let mut all = [e1.clone(), e0b.clone(), e0a.clone()];
        all.sort_by_key(Envelope::order_key);
        let keys: Vec<_> = all.iter().map(|e| (e.src, e.seq)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0)]);
    }

    #[test]
    fn epoch_clock_boundaries() {
        let mut clock = EpochClock::new(us(500));
        assert_eq!(clock.advance(), (0, SimTime::from_nanos(500_000)));
        assert_eq!(clock.advance(), (1, SimTime::from_nanos(1_000_000)));
        // The boundary instant belongs to the epoch it ends.
        assert_eq!(clock.epoch_of(SimTime::from_nanos(500_000)), 0);
        assert_eq!(clock.epoch_of(SimTime::from_nanos(500_001)), 1);
        assert_eq!(clock.epoch_of(SimTime::ZERO), 0);
    }

    #[test]
    fn net_fault_verdicts_are_pure_and_windowed() {
        let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        let plan = NetFaultPlan::new(7)
            .latency_spike(t(10), t(20), 0, 1, 1.0, SimDuration::from_micros(300))
            .drop_link(t(30), t(40), 1, 0, 0.5);
        // Outside every window: deliver.
        assert_eq!(plan.verdict(0, 1, 0, t(5)), NetVerdict::Deliver);
        assert_eq!(plan.verdict(0, 1, 9, t(25)), NetVerdict::Deliver);
        // Inside the spike window, p=1: always the configured extra.
        assert_eq!(
            plan.verdict(0, 1, 3, t(12)),
            NetVerdict::Delay(SimDuration::from_micros(300))
        );
        // Wrong link: unaffected.
        assert_eq!(plan.verdict(1, 0, 3, t(12)), NetVerdict::Deliver);
        // Re-evaluating the same envelope gives the same verdict (pure),
        // and a p=0.5 drop window hits some but not all of 100 envelopes.
        let mut drops = 0;
        for seq in 0..100 {
            let v = plan.verdict(1, 0, seq, t(35));
            assert_eq!(v, plan.verdict(1, 0, seq, t(35)));
            if v == NetVerdict::Drop {
                drops += 1;
            }
        }
        assert!(drops > 20 && drops < 80, "p=0.5 drew {drops}/100 drops");
    }

    #[test]
    fn partition_drops_both_directions() {
        let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        let plan = NetFaultPlan::new(1).partition(t(10), t(20), vec![0], vec![]);
        for seq in 0..10 {
            assert_eq!(plan.verdict(0, 2, seq, t(15)), NetVerdict::Drop);
            assert_eq!(plan.verdict(2, 0, seq, t(15)), NetVerdict::Drop);
        }
        // Links not touching node 0 are unaffected; the window ends.
        assert_eq!(plan.verdict(1, 2, 0, t(15)), NetVerdict::Deliver);
        assert_eq!(plan.verdict(0, 2, 0, t(20)), NetVerdict::Deliver);
        assert!(plan.is_partitioned(0, 2, t(15)));
        assert!(plan.is_partitioned(2, 0, t(15)));
        assert!(!plan.is_partitioned(1, 2, t(15)));
        assert!(!plan.is_partitioned(0, 2, t(20)));
    }

    #[test]
    fn mixed_seeds_differ_per_node_but_not_per_layout() {
        // mix_seed depends only on (base, node id) — the "layout" is not
        // an input, so there is nothing a shard packing could change.
        assert_ne!(mix_seed(42, 0), mix_seed(42, 1));
        assert_ne!(mix_seed(42, 0), mix_seed(43, 0));
        assert_eq!(mix_seed(42, 3), mix_seed(42, 3));
    }

    #[test]
    fn sent_in_epoch_k_arrives_at_or_after_the_next_barrier() {
        // The lookahead guarantee the whole cluster design rests on: while
        // epoch `k` runs (`run_until((k+1)E)`, clock in `[kE, (k+1)E]`),
        // every send lands at `send + latency ≥ (k+1)E`, so injecting the
        // epoch's outbox at the `(k+1)E` barrier only schedules events at
        // or after the barrier — never in the simulated past.
        let topo = NetTopology::uniform(2, us(500));
        let clock = EpochClock::new(topo.lookahead());
        let mut stamper = LinkStamper::new(0, 2);
        for epoch in 0u64..3 {
            let start = clock.deadline_of(epoch);
            let end = clock.deadline_of(epoch + 1);
            for t in [start, start + us(1), end] {
                let e = stamper.stamp(&topo, 1, t, ());
                assert!(e.recv_time >= end);
            }
        }
    }
}
