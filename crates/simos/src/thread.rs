//! Simulated kernel threads.

use crate::body::ThreadBody;
use crate::ids::{CgroupId, CpuId, NodeId, ThreadId, WaitId};
use crate::nice::Nice;
use crate::time::{SimDuration, SimTime};

/// Lifecycle state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable, waiting in a runqueue.
    Ready,
    /// Currently executing on the given CPU.
    Running(CpuId),
    /// Blocked on a wait channel.
    Blocked(WaitId),
    /// Sleeping until a timer fires.
    Sleeping,
    /// Terminated; will never run again.
    Exited,
}

impl ThreadState {
    /// Whether the thread counts toward the node's runnable load.
    pub fn is_active(self) -> bool {
        matches!(self, ThreadState::Ready | ThreadState::Running(_))
    }
}

/// Internal per-thread state.
pub(crate) struct ThreadData {
    pub id: ThreadId,
    pub name: String,
    pub node: NodeId,
    pub cgroup: CgroupId,
    pub nice: Nice,
    /// SCHED_FIFO-style priority; `Some` lifts the thread out of CFS.
    pub rt_priority: Option<u8>,
    pub state: ThreadState,
    /// Weighted virtual runtime within the enclosing cgroup.
    pub vruntime: u64,
    /// Deterministic tie-break for runqueue ordering.
    pub seq: u64,
    /// The thread's behaviour; `None` transiently while being invoked.
    pub body: Option<Box<dyn ThreadBody>>,
    /// Remaining CPU cost of the current compute action.
    pub remaining: SimDuration,
    /// Total CPU time consumed.
    pub cputime: SimDuration,
    /// Number of times the thread was placed on a CPU.
    pub dispatches: u64,
    /// Last instant the thread was seen on a CPU.
    pub last_ran: SimTime,
}

impl std::fmt::Debug for ThreadData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadData")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("node", &self.node)
            .field("cgroup", &self.cgroup)
            .field("nice", &self.nice)
            .field("state", &self.state)
            .field("vruntime", &self.vruntime)
            .field("remaining", &self.remaining)
            .field("cputime", &self.cputime)
            .finish_non_exhaustive()
    }
}

/// Public, read-only view of a thread's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// The thread's identifier.
    pub id: ThreadId,
    /// Human-readable name.
    pub name: String,
    /// Node the thread runs on.
    pub node: NodeId,
    /// Enclosing cgroup.
    pub cgroup: CgroupId,
    /// Current nice level.
    pub nice: Nice,
    /// Real-time priority, if the thread is in the RT band.
    pub rt_priority: Option<u8>,
    /// Current lifecycle state.
    pub state: ThreadState,
    /// Total CPU time consumed.
    pub cputime: SimDuration,
    /// Number of dispatches onto a CPU.
    pub dispatches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_states() {
        assert!(ThreadState::Ready.is_active());
        assert!(ThreadState::Running(CpuId(0)).is_active());
        assert!(!ThreadState::Blocked(WaitId::from_u64(0)).is_active());
        assert!(!ThreadState::Sleeping.is_active());
        assert!(!ThreadState::Exited.is_active());
    }
}
