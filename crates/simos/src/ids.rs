//! Identifier newtypes for simulated kernel objects.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u64);

        impl $name {
            /// Returns the raw numeric id.
            pub fn as_u64(self) -> u64 {
                self.0
            }

            /// Reconstructs an id from its raw value.
            ///
            /// Intended for deserialization and test fixtures; an id that was
            /// never handed out by a kernel will simply fail lookups.
            pub fn from_u64(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a simulated kernel thread.
    ThreadId,
    "tid:"
);
id_type!(
    /// Identifier of a simulated control group.
    CgroupId,
    "cg:"
);
id_type!(
    /// Identifier of a simulated machine (node) within one simulation.
    NodeId,
    "node:"
);
id_type!(
    /// Identifier of a wait channel threads can block on.
    WaitId,
    "wait:"
);
id_type!(
    /// Identifier of a registered timer callback.
    CallbackId,
    "cb:"
);
id_type!(
    /// Identifier of a persistent deferred-effect callback
    /// ([`Kernel::register_defer_call`](crate::Kernel::register_defer_call)):
    /// a reusable network-delivery handler that
    /// [`SimCtx::defer_call`](crate::SimCtx::defer_call) schedules without
    /// allocating a closure per event.
    DeferCallId,
    "dc:"
);

/// Index of a CPU within one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ThreadId(3).to_string(), "tid:3");
        assert_eq!(CgroupId(1).to_string(), "cg:1");
        assert_eq!(NodeId(0).to_string(), "node:0");
        assert_eq!(WaitId(9).to_string(), "wait:9");
        assert_eq!(CpuId(2).to_string(), "cpu:2");
    }

    #[test]
    fn ids_round_trip_raw() {
        assert_eq!(ThreadId::from_u64(7).as_u64(), 7);
        assert_eq!(CallbackId::from_u64(7).as_u64(), 7);
    }
}
