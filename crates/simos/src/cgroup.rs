//! Simulated control groups (cgroup v1 CPU controller).
//!
//! Cgroups form a tree per node, rooted at the node's root group. Each group
//! carries a `cpu.shares` value: the weight of the group *as a schedulable
//! entity* in its parent's runqueue. Threads inside a group compete by their
//! nice-derived weights without interference from threads outside — exactly
//! the property Lachesis exploits for multi-dimensional schedules (paper §2,
//! §5.3).

use crate::ids::{CgroupId, NodeId};
use crate::runqueue::RunQueue;
use crate::time::{SimDuration, SimTime};

/// Default `cpu.shares` (matches Linux).
pub const DEFAULT_CPU_SHARES: u64 = 1024;
/// Smallest accepted `cpu.shares` (matches Linux's floor of 2).
pub const MIN_CPU_SHARES: u64 = 2;
/// Largest `cpu.shares` accepted by this simulator.
pub const MAX_CPU_SHARES: u64 = 262_144;

/// Internal per-cgroup state.
#[derive(Debug)]
pub(crate) struct CgroupData {
    pub id: CgroupId,
    pub name: String,
    pub node: NodeId,
    pub parent: Option<CgroupId>,
    pub children: Vec<CgroupId>,
    /// Relative CPU weight of this group among its siblings.
    pub shares: u64,
    /// Virtual runtime of this group as an entity in the parent runqueue.
    pub vruntime: u64,
    /// Monotonic floor used to place newly woken entities.
    pub min_vruntime: u64,
    /// Deterministic tie-break for runqueue ordering.
    pub seq: u64,
    /// Ready (not running) child entities.
    pub rq: RunQueue,
    /// Whether this group's entity is currently queued in the parent rq.
    pub queued: bool,
    /// Total CPU time consumed by threads in this subtree.
    pub cputime: SimDuration,
    /// CFS bandwidth control (cpu.cfs_quota_us / cpu.cfs_period_us).
    pub quota: Option<QuotaState>,
    /// Whether the group is currently throttled by its quota.
    pub throttled: bool,
}

/// Runtime state of a cgroup CPU quota.
#[derive(Debug, Clone, Copy)]
pub struct QuotaState {
    /// CPU time allowed per period.
    pub quota: SimDuration,
    /// Enforcement period.
    pub period: SimDuration,
    /// Start of the current accounting window.
    pub window_start: SimTime,
    /// CPU time consumed in the current window.
    pub usage: SimDuration,
}

impl CgroupData {
    pub fn new(
        id: CgroupId,
        name: String,
        node: NodeId,
        parent: Option<CgroupId>,
        shares: u64,
        seq: u64,
    ) -> Self {
        CgroupData {
            id,
            name,
            node,
            parent,
            children: Vec::new(),
            shares,
            vruntime: 0,
            min_vruntime: 0,
            seq,
            rq: RunQueue::new(),
            queued: false,
            cputime: SimDuration::ZERO,
            quota: None,
            throttled: false,
        }
    }
}

/// Public, read-only view of a cgroup's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgroupInfo {
    /// The cgroup's identifier.
    pub id: CgroupId,
    /// Human-readable name (unique within its parent is not enforced).
    pub name: String,
    /// The node whose CPU this group schedules.
    pub node: NodeId,
    /// Parent group, `None` for a node's root group.
    pub parent: Option<CgroupId>,
    /// Direct child groups.
    pub children: Vec<CgroupId>,
    /// Current `cpu.shares`.
    pub shares: u64,
    /// Total CPU time consumed by threads in this subtree.
    pub cputime: SimDuration,
    /// CPU quota as `(quota, period)`, if bandwidth-limited.
    pub quota: Option<(SimDuration, SimDuration)>,
    /// Whether the quota currently throttles the group.
    pub throttled: bool,
}

/// Clamps a requested shares value into the accepted range.
pub fn clamp_shares(shares: u64) -> u64 {
    shares.clamp(MIN_CPU_SHARES, MAX_CPU_SHARES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_clamped_to_linux_range() {
        assert_eq!(clamp_shares(0), MIN_CPU_SHARES);
        assert_eq!(clamp_shares(1024), 1024);
        assert_eq!(clamp_shares(u64::MAX), MAX_CPU_SHARES);
    }
}
