//! Simulated time.
//!
//! The simulator uses a single global clock with nanosecond resolution.
//! [`SimTime`] is an absolute instant since simulation start and
//! [`SimDuration`] a span between instants. Both are thin `u64` newtypes so
//! that instants and spans cannot be confused (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use simos::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use simos::SimDuration;
///
/// assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
/// assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never" for timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the number of nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating instant addition.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0, "duration must be non-negative");
        SimDuration((secs * 1e9).min(u64::MAX as f64) as u64)
    }

    /// Returns the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating span subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating span multiplication by a scalar.
    pub fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_nanos(2).as_nanos(), 2);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1 - t0, SimDuration::from_nanos(50));
        assert_eq!(t1.duration_since(t0).as_nanos(), 50);
    }

    #[test]
    fn duration_from_secs_f64() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn duration_from_negative_secs_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn min_max_saturating() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(20);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
        assert_eq!(a.saturating_mul(2).as_nanos(), 20);
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }
}
