//! Thread bodies: the code a simulated thread "runs".
//!
//! A simulated thread does not execute real instructions; instead its
//! [`ThreadBody`] is asked, every time the previous action finishes, what the
//! thread does next. Side effects (queue pushes, wake-ups) happen inside
//! [`ThreadBody::next_action`], at the simulated instant the previous action
//! completed, via the [`SimCtx`] handle.

use crate::ids::{DeferCallId, WaitId};
use crate::kernel::{DeferOp, Kernel};
use crate::time::{SimDuration, SimTime};

/// What a thread wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Consume `cost` nanoseconds of CPU time (may be preempted and resumed).
    Compute(SimDuration),
    /// Block until some other thread (or callback) wakes the given channel.
    Block(WaitId),
    /// Sleep for a fixed span (timed block, e.g. simulated blocking I/O).
    Sleep(SimDuration),
    /// Give up the CPU but stay runnable.
    Yield,
    /// Terminate the thread.
    Exit,
}

/// Handle passed to a [`ThreadBody`] while it decides its next action.
///
/// Wake requests are buffered and applied by the kernel immediately after the
/// body returns, at the same simulated instant. Deferred closures run after
/// the given delay with full kernel access — bodies use them to model
/// network transfers between nodes.
pub struct SimCtx {
    now: SimTime,
    wakes: Vec<WaitId>,
    deferred: Vec<Deferred>,
}

/// A deferred kernel effect: run the operation after the delay.
pub(crate) type Deferred = (SimDuration, DeferOp);

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx")
            .field("now", &self.now)
            .field("wakes", &self.wakes)
            .field("deferred", &self.deferred.len())
            .finish()
    }
}

impl SimCtx {
    pub(crate) fn new(now: SimTime) -> Self {
        SimCtx {
            now,
            wakes: Vec::new(),
            deferred: Vec::new(),
        }
    }

    /// Builds a context on top of recycled effect buffers (the kernel hands
    /// the same two vectors to every body invocation so the hot path never
    /// allocates for wakes).
    pub(crate) fn from_buffers(now: SimTime, wakes: Vec<WaitId>, deferred: Vec<Deferred>) -> Self {
        debug_assert!(wakes.is_empty() && deferred.is_empty());
        SimCtx {
            now,
            wakes,
            deferred,
        }
    }

    /// Creates a detached context for driving bodies outside a kernel.
    ///
    /// Intended for unit tests of body implementations; buffered wakes and
    /// deferred closures are dropped when the context is.
    pub fn detached(now: SimTime) -> Self {
        SimCtx::new(now)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Wakes every thread blocked on `channel` (at the current instant).
    pub fn wake(&mut self, channel: WaitId) {
        self.wakes.push(channel);
    }

    /// Runs `f` with kernel access after `delay` (e.g. a network transfer).
    pub fn defer(&mut self, delay: SimDuration, f: impl FnOnce(&mut Kernel) + 'static) {
        self.deferred.push((delay, DeferOp::Boxed(Box::new(f))));
    }

    /// Schedules one firing of a persistent handler registered with
    /// [`Kernel::register_defer_call`] after `delay`. Equivalent to
    /// [`defer`](SimCtx::defer) but allocation-free: hot paths that defer
    /// the same effect millions of times (remote tuple deliveries) queue
    /// their payload out-of-band and fire the shared handler per event.
    pub fn defer_call(&mut self, delay: SimDuration, id: DeferCallId) {
        self.deferred.push((delay, DeferOp::Call(id)));
    }

    pub(crate) fn into_effects(self) -> (Vec<WaitId>, Vec<Deferred>) {
        (self.wakes, self.deferred)
    }
}

/// The behaviour of a simulated thread.
///
/// The kernel calls [`next_action`](ThreadBody::next_action) whenever the
/// thread's previous action has fully completed: after a
/// [`Action::Compute`] finishes, after a [`Action::Block`] is woken, after a
/// [`Action::Sleep`] expires, immediately after spawn, and after a
/// [`Action::Yield`] gets the CPU back. Bodies are state machines: perform
/// the side effects of the work that just finished (pop/push queues, wake
/// consumers), then return the next action.
///
/// # Examples
///
/// ```
/// use simos::{Action, SimCtx, SimDuration, ThreadBody};
///
/// /// Burns 1ms of CPU forever.
/// struct Spin;
/// impl ThreadBody for Spin {
///     fn next_action(&mut self, _ctx: &mut SimCtx) -> Action {
///         Action::Compute(SimDuration::from_millis(1))
///     }
/// }
/// ```
pub trait ThreadBody {
    /// Called when the previous action completed; returns the next one.
    fn next_action(&mut self, ctx: &mut SimCtx) -> Action;
}

impl<F> ThreadBody for F
where
    F: FnMut(&mut SimCtx) -> Action,
{
    fn next_action(&mut self, ctx: &mut SimCtx) -> Action {
        self(ctx)
    }
}

/// A body that computes a fixed cost a given number of times, then exits.
///
/// Useful as a deterministic CPU-bound workload in tests and benchmarks.
#[derive(Debug, Clone)]
pub struct FixedWork {
    cost: SimDuration,
    remaining: u64,
}

impl FixedWork {
    /// A body performing `iterations` compute bursts of `cost` each.
    pub fn new(cost: SimDuration, iterations: u64) -> Self {
        FixedWork {
            cost,
            remaining: iterations,
        }
    }

    /// A body that computes `cost` bursts forever.
    pub fn endless(cost: SimDuration) -> Self {
        FixedWork {
            cost,
            remaining: u64::MAX,
        }
    }
}

impl ThreadBody for FixedWork {
    fn next_action(&mut self, _ctx: &mut SimCtx) -> Action {
        if self.remaining == 0 {
            Action::Exit
        } else {
            if self.remaining != u64::MAX {
                self.remaining -= 1;
            }
            Action::Compute(self.cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_work_counts_down_then_exits() {
        let mut body = FixedWork::new(SimDuration::from_micros(10), 2);
        let mut ctx = SimCtx::new(SimTime::ZERO);
        assert_eq!(
            body.next_action(&mut ctx),
            Action::Compute(SimDuration::from_micros(10))
        );
        assert_eq!(
            body.next_action(&mut ctx),
            Action::Compute(SimDuration::from_micros(10))
        );
        assert_eq!(body.next_action(&mut ctx), Action::Exit);
    }

    #[test]
    fn closures_are_bodies() {
        let mut calls = 0;
        {
            let mut body = |_: &mut SimCtx| {
                calls += 1;
                Action::Exit
            };
            let mut ctx = SimCtx::new(SimTime::ZERO);
            let _ = ThreadBody::next_action(&mut body, &mut ctx);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn ctx_buffers_wakes() {
        let mut ctx = SimCtx::new(SimTime::from_nanos(5));
        assert_eq!(ctx.now(), SimTime::from_nanos(5));
        ctx.wake(WaitId::from_u64(1));
        ctx.wake(WaitId::from_u64(2));
        ctx.defer(SimDuration::from_millis(1), |_| {});
        let (wakes, deferred) = ctx.into_effects();
        assert_eq!(wakes, vec![WaitId::from_u64(1), WaitId::from_u64(2)]);
        assert_eq!(deferred.len(), 1);
    }
}
