//! Thread niceness and the CFS weight table.
//!
//! Linux maps each nice level `n ∈ [-20, 19]` to a scheduling weight
//! `w(n) = 1024 / 1.25^n` (the kernel's `sched_prio_to_weight` table). The
//! ratio of CPU time between two always-runnable threads equals the ratio of
//! their weights, so one nice step is a ~10% relative share change and
//! `w(n1)/w(n2) = 1.25^(n2-n1)` in general — the exact relation Lachesis'
//! nice translator inverts (paper §2, §5.3).

use std::fmt;

/// Lowest (most favourable) nice value.
pub const NICE_MIN: i32 = -20;
/// Highest (least favourable) nice value.
pub const NICE_MAX: i32 = 19;
/// Weight of the default nice level 0 (`NICE_0_LOAD` in the kernel).
pub const NICE_0_WEIGHT: u64 = 1024;

/// The kernel's `sched_prio_to_weight` table, index 0 = nice -20.
///
/// Values are the precomputed integer approximations of `1024 / 1.25^n`
/// copied from `kernel/sched/core.c`, so weight ratios match real CFS
/// exactly rather than accumulating floating-point drift.
const PRIO_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// A validated nice value in `[-20, 19]`.
///
/// # Examples
///
/// ```
/// use simos::Nice;
///
/// let n = Nice::new(-5)?;
/// assert_eq!(n.value(), -5);
/// assert!(Nice::new(42).is_err());
/// # Ok::<(), simos::NiceRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nice(i8);

/// Error returned when constructing a [`Nice`] outside `[-20, 19]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiceRangeError(pub i32);

impl fmt::Display for NiceRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nice value {} outside [-20, 19]", self.0)
    }
}

impl std::error::Error for NiceRangeError {}

impl Nice {
    /// The default nice level (0).
    pub const DEFAULT: Nice = Nice(0);
    /// The most favourable nice level (-20).
    pub const MIN: Nice = Nice(NICE_MIN as i8);
    /// The least favourable nice level (19).
    pub const MAX: Nice = Nice(NICE_MAX as i8);

    /// Creates a nice value, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`NiceRangeError`] if `value` is outside `[-20, 19]`.
    pub fn new(value: i32) -> Result<Nice, NiceRangeError> {
        if (NICE_MIN..=NICE_MAX).contains(&value) {
            Ok(Nice(value as i8))
        } else {
            Err(NiceRangeError(value))
        }
    }

    /// Creates a nice value, clamping out-of-range input into `[-20, 19]`.
    pub fn clamped(value: i32) -> Nice {
        Nice(value.clamp(NICE_MIN, NICE_MAX) as i8)
    }

    /// Returns the raw nice level.
    pub fn value(self) -> i32 {
        self.0 as i32
    }

    /// Returns the CFS weight for this nice level.
    pub fn weight(self) -> u64 {
        PRIO_TO_WEIGHT[(self.0 as i32 - NICE_MIN) as usize]
    }
}

impl fmt::Display for Nice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<i32> for Nice {
    type Error = NiceRangeError;
    fn try_from(value: i32) -> Result<Self, Self::Error> {
        Nice::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_zero_weight_is_1024() {
        assert_eq!(Nice::DEFAULT.weight(), NICE_0_WEIGHT);
    }

    #[test]
    fn extreme_weights_match_kernel_table() {
        assert_eq!(Nice::MIN.weight(), 88761);
        assert_eq!(Nice::MAX.weight(), 15);
    }

    #[test]
    fn weight_ratio_is_about_1_25_per_step() {
        for n in NICE_MIN..NICE_MAX {
            let w0 = Nice::new(n).unwrap().weight() as f64;
            let w1 = Nice::new(n + 1).unwrap().weight() as f64;
            let ratio = w0 / w1;
            assert!(
                (ratio - 1.25).abs() < 0.06,
                "ratio at nice {n} was {ratio}"
            );
        }
    }

    #[test]
    fn out_of_range_rejected_and_clamped() {
        assert!(Nice::new(20).is_err());
        assert!(Nice::new(-21).is_err());
        assert_eq!(Nice::clamped(100), Nice::MAX);
        assert_eq!(Nice::clamped(-100), Nice::MIN);
    }

    #[test]
    fn error_displays_value() {
        assert_eq!(
            NiceRangeError(42).to_string(),
            "nice value 42 outside [-20, 19]"
        );
    }
}
