//! # simos — a deterministic simulated Linux-like scheduler
//!
//! `simos` is the operating-system substrate of the Lachesis reproduction.
//! It simulates, with a discrete-event engine and a single virtual clock:
//!
//! * one or more **nodes** (machines) with a configurable CPU count,
//! * **threads** whose behaviour is a [`ThreadBody`] state machine,
//! * a **CFS-like scheduler**: per-cgroup runqueues ordered by virtual
//!   runtime, nice→weight mapping identical to the kernel's table,
//!   load-dependent timeslices, wake-up bonuses and context-switch costs,
//! * a **cgroup hierarchy** whose `cpu.shares` divide CPU time between
//!   sibling groups, nested arbitrarily,
//! * **timers and callbacks** for simulated middleware and data sources.
//!
//! Everything is deterministic: the same program produces the same schedule
//! on every run, which makes the paper's experiments exactly repeatable.
//!
//! ## Example
//!
//! ```
//! use simos::{FixedWork, Kernel, Nice, SimDuration};
//!
//! let mut kernel = Kernel::default();
//! let node = kernel.add_node("odroid", 4);
//! let hog = kernel
//!     .spawn(node, "operator", FixedWork::endless(SimDuration::from_micros(200)))
//!     .nice(Nice::new(-5)?)
//!     .build();
//! kernel.run_for(SimDuration::from_secs(1));
//! assert!(kernel.thread_info(hog)?.cputime > SimDuration::from_millis(900));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod body;
mod calendar;
mod cgroup;
mod ids;
mod kernel;
pub mod net;
mod nice;
mod runqueue;
mod thread;
mod time;
mod trace;

pub use body::{Action, FixedWork, SimCtx, ThreadBody};
pub use calendar::{EventCalendar, EventId};
pub use cgroup::{clamp_shares, CgroupInfo, DEFAULT_CPU_SHARES, MAX_CPU_SHARES, MIN_CPU_SHARES};
pub use ids::{CallbackId, CgroupId, CpuId, DeferCallId, NodeId, ThreadId, WaitId};
pub use kernel::{FaultHook, Kernel, KernelConfig, KernelError, NodeStats, SpawnBuilder};
pub use net::{
    mix_seed, Envelope, EpochClock, LinkStamper, NetFaultPlan, NetTopology, NetVerdict, RackNodeId,
};
pub use nice::{Nice, NiceRangeError, NICE_0_WEIGHT, NICE_MAX, NICE_MIN};
pub use thread::{ThreadInfo, ThreadState};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceEvent, TraceHandle, TraceRecord, TraceTrack};

/// Machine presets matching the paper's evaluation hardware (§6.1).
pub mod machines {
    use crate::{Kernel, KernelConfig, NodeId, SimDuration};

    /// Scheduler parameters tuned for an Odroid-XU4-class edge device.
    /// The context-switch cost models the direct switch plus the cache
    /// re-population that follows it, which dominates on in-order edge
    /// cores running JVM-based SPEs (see DESIGN.md calibration notes).
    pub fn odroid_config() -> KernelConfig {
        KernelConfig {
            ctx_switch_cost: SimDuration::from_micros(60),
            sched_latency: SimDuration::from_millis(6),
            min_granularity: SimDuration::from_micros(750),
            wakeup_bonus: SimDuration::from_millis(3),
            wakeup_granularity: SimDuration::from_millis(1),
        }
    }

    /// Scheduler parameters for a Xeon-class server (faster switches,
    /// larger caches than the edge device).
    pub fn server_config() -> KernelConfig {
        KernelConfig {
            ctx_switch_cost: SimDuration::from_micros(20),
            sched_latency: SimDuration::from_millis(6),
            min_granularity: SimDuration::from_micros(750),
            wakeup_bonus: SimDuration::from_millis(3),
            wakeup_granularity: SimDuration::from_millis(1),
        }
    }

    /// Adds an Odroid-XU4-like node: 4 usable big cores (the paper pins
    /// SPEs to the big cluster).
    pub fn add_odroid(kernel: &mut Kernel, name: &str) -> NodeId {
        kernel.add_node(name, 4)
    }

    /// Adds a Xeon E5-2637 v4-like node: 4 cores / 8 hardware threads.
    pub fn add_server(kernel: &mut Kernel, name: &str) -> NodeId {
        kernel.add_node(name, 8)
    }
}
