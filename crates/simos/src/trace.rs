//! Structured sim-time scheduling traces.
//!
//! The kernel (and, through shared handles, the SPE runtime and the
//! Lachesis middleware) can emit a stream of timestamped [`TraceEvent`]s
//! into a [`TraceBuffer`]. The buffer is installed on a [`Kernel`] with
//! [`Kernel::set_trace_sink`]; every emission site in the hot scheduling
//! paths is guarded by a single `Option` check, so with no sink installed
//! the layer costs one predictable branch per site and allocates nothing.
//!
//! Events carry raw ids ([`ThreadId`], [`CgroupId`], node/CPU indexes) and
//! sim-time instants only — rendering them into Chrome `trace_event` JSON
//! or text summaries is the `bench` crate's job, keeping this crate free
//! of any serialization concerns.
//!
//! [`Kernel`]: crate::Kernel
//! [`Kernel::set_trace_sink`]: crate::Kernel::set_trace_sink

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::ids::{CgroupId, ThreadId, WaitId};
use crate::time::SimTime;

/// Shared handle to a [`TraceBuffer`]; clones refer to the same buffer.
///
/// The kernel holds one (when tracing is on), and upper layers (SPE
/// runtime, middleware) clone it so all layers interleave their events in
/// one totally ordered stream.
pub type TraceHandle = Rc<RefCell<TraceBuffer>>;

/// Which logical track an upper-layer span/instant/counter belongs to.
///
/// Kernel events carry explicit node/CPU/thread ids; upper layers tag
/// their events with a track so exporters can lay them out in lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTrack {
    /// A per-thread lane (operator lifecycle spans).
    Thread(ThreadId),
    /// The middleware lane (scheduling-round spans).
    Middleware,
    /// The supervisor lane (health-transition instants).
    Supervisor,
    /// A per-node lane (utilization / runqueue-depth counters).
    Node(u64),
}

/// One structured scheduling event. Kernel variants mirror the scheduler's
/// decisions one-to-one; the `SpanBegin`/`SpanEnd`/`Instant`/`Counter`
/// variants are generic carriers for the SPE and middleware layers.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A CPU dispatched a thread. `prev` is the thread that last occupied
    /// this CPU (`None` if it was never used); `fresh` is false when the
    /// same thread is re-dispatched without an intervening switch.
    Switch {
        /// Node index.
        node: u64,
        /// CPU index within the node.
        cpu: usize,
        /// Thread previously on this CPU, if any.
        prev: Option<ThreadId>,
        /// Thread now running.
        next: ThreadId,
        /// Whether this dispatch counted as a context switch.
        fresh: bool,
    },
    /// A thread became runnable via a wake-up.
    Wake {
        /// The woken thread.
        tid: ThreadId,
    },
    /// A running thread blocked (`channel = None` for a timed sleep).
    Block {
        /// Node index.
        node: u64,
        /// CPU index the thread vacated.
        cpu: usize,
        /// The blocking thread.
        tid: ThreadId,
        /// Wait channel, or `None` for sleeps.
        channel: Option<WaitId>,
    },
    /// A running thread exited (crash fail-stop or a completed body): it
    /// stops being runnable without a `Block`, and any later `Switch`
    /// naming it as `prev` refers to a dead thread.
    Exit {
        /// Node index.
        node: u64,
        /// CPU index the thread vacated.
        cpu: usize,
        /// The exiting thread.
        tid: ThreadId,
    },
    /// A running thread was preempted by a wake-up or RT arrival.
    Preempt {
        /// Node index.
        node: u64,
        /// CPU index.
        cpu: usize,
        /// The preempted thread.
        tid: ThreadId,
    },
    /// A running thread exhausted its timeslice and was requeued.
    SliceExpire {
        /// Node index.
        node: u64,
        /// CPU index.
        cpu: usize,
        /// The requeued thread.
        tid: ThreadId,
    },
    /// A thread's nice level changed.
    NiceChange {
        /// The reniced thread.
        tid: ThreadId,
        /// New nice level.
        nice: i32,
    },
    /// A cgroup's `cpu.shares` changed.
    SharesChange {
        /// The cgroup.
        cgroup: CgroupId,
        /// New shares value (post-clamp).
        shares: u64,
    },
    /// A thread moved to another cgroup — the closest analogue of a
    /// migration in this simulator (threads never change nodes).
    Migration {
        /// The moved thread.
        tid: ThreadId,
        /// Destination cgroup.
        cgroup: CgroupId,
    },
    /// A CPU went offline (hotplug). Any occupant was preempted back onto
    /// the node's shared runqueue first, so a well-formed trace shows no
    /// `Switch` onto this CPU until the matching [`CpuOnline`].
    ///
    /// [`CpuOnline`]: TraceEvent::CpuOnline
    CpuOffline {
        /// Node index.
        node: u64,
        /// CPU index within the node.
        cpu: usize,
    },
    /// A previously offline CPU rejoined dispatch.
    CpuOnline {
        /// Node index.
        node: u64,
        /// CPU index within the node.
        cpu: usize,
    },
    /// Opens an upper-layer span (e.g. an operator batch).
    SpanBegin {
        /// Lane the span belongs to.
        track: TraceTrack,
        /// Span name (static so emission never allocates strings).
        name: &'static str,
        /// Small numeric arguments attached to the span.
        args: Vec<(&'static str, f64)>,
    },
    /// Closes the most recent open span with the same track and name.
    SpanEnd {
        /// Lane the span belongs to.
        track: TraceTrack,
        /// Span name (must match the opening event).
        name: &'static str,
        /// Small numeric arguments attached at close.
        args: Vec<(&'static str, f64)>,
    },
    /// A point-in-time upper-layer event (e.g. a supervisor transition).
    Instant {
        /// Lane the instant belongs to.
        track: TraceTrack,
        /// Event name.
        name: &'static str,
        /// Small numeric arguments.
        args: Vec<(&'static str, f64)>,
    },
    /// A sampled counter value (e.g. per-node utilization).
    Counter {
        /// Lane the counter belongs to.
        track: TraceTrack,
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Sim-time instant the event occurred.
    pub at: SimTime,
    /// The event itself.
    pub event: TraceEvent,
}

/// An in-memory event sink: either unbounded, or a ring buffer that drops
/// the oldest records once full (so long runs stay bounded).
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    capacity: Option<usize>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates an unbounded buffer (records are kept until drained).
    pub fn unbounded() -> Self {
        TraceBuffer::default()
    }

    /// Creates a ring buffer holding at most `capacity` records; the
    /// oldest record is dropped (and counted) for each push past capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity > 0");
        TraceBuffer {
            records: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Wraps a buffer in the shared-handle type used by the kernel.
    pub fn into_handle(self) -> TraceHandle {
        Rc::new(RefCell::new(self))
    }

    /// Appends a record, evicting the oldest one in ring mode.
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        if let Some(cap) = self.capacity {
            if self.records.len() == cap {
                self.records.pop_front();
                self.dropped += 1;
            }
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted by the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates buffered records oldest-first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Removes and returns all buffered records, oldest-first.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.records.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_mode_drops_oldest() {
        let mut b = TraceBuffer::ring(2);
        for i in 0..5u64 {
            b.push(
                SimTime::from_nanos(i),
                TraceEvent::Wake { tid: ThreadId(i) },
            );
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
        let recs = b.drain();
        assert_eq!(recs[0].at, SimTime::from_nanos(3));
        assert_eq!(recs[1].at, SimTime::from_nanos(4));
        assert!(b.is_empty());
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut b = TraceBuffer::unbounded();
        for i in 0..100u64 {
            b.push(
                SimTime::from_nanos(i),
                TraceEvent::Wake { tid: ThreadId(i) },
            );
        }
        assert_eq!(b.len(), 100);
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.records().count(), 100);
    }
}
