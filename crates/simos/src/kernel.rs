//! The simulated kernel: nodes, CPUs, threads, cgroups, timers and the
//! discrete-event CFS scheduling loop.
//!
//! One [`Kernel`] simulates one or more machines (*nodes*) sharing a single
//! simulated clock. Each node has its own CPUs and its own cgroup tree;
//! scheduling never crosses nodes (matching the paper's scale-out setup of
//! independent devices, §6.5).
//!
//! # Scheduling model
//!
//! Per node, ready entities wait in per-cgroup runqueues ordered by virtual
//! runtime. Idle CPUs repeatedly pick the hierarchically minimum-vruntime
//! thread. A running thread is charged `Δt · 1024 / weight` vruntime at the
//! thread level and `Δt · 1024 / cpu.shares` at every enclosing group level,
//! so CPU time divides by nice weights within groups and by `cpu.shares`
//! across groups — the two mechanisms Lachesis' translators drive. Dispatches
//! of a different thread than the CPU ran before pay a context-switch cost,
//! wake-ups receive a bounded vruntime bonus, and time slices shrink as load
//! grows, all mirroring CFS behaviour that matters for the paper's results.

use std::collections::VecDeque;
use std::fmt;

use crate::body::{Action, SimCtx, ThreadBody};
use crate::calendar::EventCalendar;
use crate::cgroup::{clamp_shares, CgroupData, CgroupInfo, DEFAULT_CPU_SHARES};
use crate::ids::{CallbackId, CgroupId, CpuId, DeferCallId, NodeId, ThreadId, WaitId};
use crate::nice::{Nice, NICE_0_WEIGHT};
use crate::runqueue::Entity;
use crate::thread::{ThreadData, ThreadInfo, ThreadState};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceBuffer, TraceEvent, TraceHandle};

/// Tunable scheduler parameters (defaults approximate Linux CFS).
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// CPU cost charged when a CPU switches to a different thread.
    pub ctx_switch_cost: SimDuration,
    /// Target latency: every ready thread should run within this span.
    pub sched_latency: SimDuration,
    /// Minimum timeslice regardless of load.
    pub min_granularity: SimDuration,
    /// Maximum vruntime credit granted to a waking thread.
    pub wakeup_bonus: SimDuration,
    /// A woken thread preempts a running same-group thread whose vruntime
    /// exceeds the woken thread's by more than this (CFS
    /// `sched_wakeup_granularity`).
    pub wakeup_granularity: SimDuration,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            ctx_switch_cost: SimDuration::from_micros(5),
            sched_latency: SimDuration::from_millis(6),
            min_granularity: SimDuration::from_micros(750),
            wakeup_bonus: SimDuration::from_millis(3),
            wakeup_granularity: SimDuration::from_millis(1),
        }
    }
}

/// Errors returned by kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The thread id is unknown.
    UnknownThread(ThreadId),
    /// The cgroup id is unknown.
    UnknownCgroup(CgroupId),
    /// The node id is unknown.
    UnknownNode(NodeId),
    /// The operation would move a thread across nodes.
    CrossNode {
        /// The thread that was to be moved.
        thread: ThreadId,
        /// The target cgroup, which lives on a different node.
        cgroup: CgroupId,
    },
    /// The target thread has exited.
    ThreadExited(ThreadId),
    /// The CPU index is out of range for the node (hotplug).
    UnknownCpu {
        /// The node the CPU was looked up on.
        node: NodeId,
        /// The out-of-range CPU index.
        cpu: usize,
    },
    /// Taking this CPU offline would leave its node with no online CPU.
    LastOnlineCpu(NodeId),
    /// A fault hook injected a failure into this operation (fault testing;
    /// see [`Kernel::set_fault_hook`]). Models transient syscall / cgroupfs
    /// write errors, so callers should treat it as retryable.
    InjectedFault {
        /// The kernel operation that failed (e.g. `"set_nice"`).
        op: &'static str,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownThread(t) => write!(f, "unknown thread {t}"),
            KernelError::UnknownCgroup(c) => write!(f, "unknown cgroup {c}"),
            KernelError::UnknownNode(n) => write!(f, "unknown node {n}"),
            KernelError::CrossNode { thread, cgroup } => {
                write!(f, "thread {thread} and cgroup {cgroup} are on different nodes")
            }
            KernelError::ThreadExited(t) => write!(f, "thread {t} has exited"),
            KernelError::UnknownCpu { node, cpu } => {
                write!(f, "node {node} has no cpu {cpu}")
            }
            KernelError::LastOnlineCpu(n) => {
                write!(f, "cannot offline the last online cpu of node {n}")
            }
            KernelError::InjectedFault { op } => write!(f, "injected fault in {op}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    Wake(ThreadId),
    Callback(CallbackId),
    /// A deferred internal effect ([`SimCtx::defer`], e.g. a network
    /// delivery). Fires like a one-shot callback but skips the
    /// accounting sync user callbacks get: deferred effects move tuples
    /// and wake threads, they do not observe scheduler statistics.
    Defer(CallbackId),
    Unthrottle(CgroupId),
}

/// A timer-like event due at the current instant, from either the calendar
/// or the defer FIFO, tagged with its tie-break sequence number.
enum DueTimer {
    Kind(TimerKind),
    Defer(DeferOp),
}

/// A deferred internal effect: either a one-shot boxed closure, or one
/// firing of a persistent [`Kernel::register_defer_call`] handler. The
/// `Call` form exists for the hot path — a remote tuple delivery happens
/// millions of times per run, and a per-event `Box` allocation (plus the
/// captured payload move) dwarfs the work the closure actually does.
pub(crate) enum DeferOp {
    Boxed(Box<dyn FnOnce(&mut Kernel)>),
    Call(DeferCallId),
}

/// A queued deferred effect: (due instant, calendar tie-break seq, effect).
type DeferEntry = (SimTime, u64, DeferOp);

/// A persistent deferred-effect handler ([`Kernel::register_defer_call`]).
type DeferCall = Box<dyn FnMut(&mut Kernel)>;

// Per-CPU slice/completion expiries are NOT calendar entries: each CPU
// stores its own `due` instant and the main loop takes the minimum over
// the (at most a few dozen) CPUs directly. Dispatch re-arms a CPU every
// block/wake cycle, so routing those through the heap would double the
// heap traffic with entries that mostly go stale before firing; a field
// write plus a linear scan is cheaper and leaves the calendar holding
// only timers.

/// A callback's code. One-shots are stored unboxed-by-wrapper (`FnOnce`
/// directly) so the per-tuple network-transfer path pays a single
/// allocation, and their slot is recycled after firing.
enum CallbackFn {
    Recurring(Box<dyn FnMut(&mut Kernel)>),
    Once(Box<dyn FnOnce(&mut Kernel)>),
}

struct CallbackEntry {
    f: Option<CallbackFn>,
    period: Option<SimDuration>,
    cancelled: bool,
    /// Incremented each time the slot is recycled; a [`CallbackId`] whose
    /// generation no longer matches refers to an already-finished one-shot
    /// and is ignored.
    gen: u32,
}

/// Packs a callback slot index and its generation into a raw id.
fn callback_id(slot: usize, gen: u32) -> CallbackId {
    CallbackId::from_u64((gen as u64) << 32 | slot as u64)
}

/// Splits a raw callback id into `(slot, generation)`.
fn callback_slot(id: CallbackId) -> (usize, u32) {
    let raw = id.as_u64();
    ((raw & 0xFFFF_FFFF) as usize, (raw >> 32) as u32)
}

#[derive(Debug, Clone, Copy)]
struct Cpu {
    current: Option<ThreadId>,
    slice_end: SimTime,
    last_thread: Option<ThreadId>,
    busy: SimDuration,
    /// Whether the CPU participates in dispatch (CPU hotplug). Offline
    /// CPUs never receive threads and count as neither busy nor idle.
    online: bool,
    /// Instant up to which the running thread has been charged. CPU time
    /// is charged lazily, only when this CPU's own event fires (or an
    /// observer needs consistent state), not on every global advance.
    last_charged: SimTime,
    /// Bumped whenever the CPU is freed or re-armed; a same-instant event
    /// batch records the generation each due CPU was collected under and
    /// skips it if an earlier settle or throttle changed it since.
    gen: u64,
    /// Instant the running thread's compute finishes or its slice expires,
    /// whichever is earlier ([`SimTime::MAX`] when idle / unarmed).
    due: SimTime,
}

#[derive(Debug)]
struct NodeData {
    #[allow(dead_code)]
    id: NodeId,
    name: String,
    cpus: Vec<Cpu>,
    root: CgroupId,
    /// Ready real-time threads: key = (255 - rt_priority, fifo seq, tid),
    /// so `first()` is the highest-priority, longest-waiting RT thread.
    rt_queue: std::collections::BTreeSet<(u8, u64, ThreadId)>,
    /// Ready + running threads on this node.
    nr_active: u64,
    ctx_switches: u64,
    overhead: SimDuration,
    busy: SimDuration,
    idle: SimDuration,
    /// Time during which at least one runnable thread was waiting for a
    /// CPU (the kernel's PSI "some" CPU pressure — §8 future work 4).
    stalled: SimDuration,
    /// Thread-weighted runqueue waiting time: each accounting interval
    /// contributes `Δt · waiting_threads`, so dividing by wall time gives
    /// the average runqueue depth.
    rq_wait: SimDuration,
    /// Instant up to which busy/idle/stalled have been accumulated; the
    /// interval since is accounted lazily before any state change.
    last_accounted: SimTime,
    /// CPUs currently running a thread (kept incrementally so lazy
    /// accounting is O(1) per node).
    occupied: u64,
    /// Whether the node is already on the dispatch worklist.
    dirty: bool,
}

/// Cumulative per-node scheduling statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStats {
    /// Node name.
    pub name: String,
    /// Number of CPUs.
    pub cpus: usize,
    /// Total CPU-busy time summed over CPUs.
    pub busy: SimDuration,
    /// Total CPU-idle time summed over CPUs.
    pub idle: SimDuration,
    /// Number of context switches (dispatches of a different thread).
    pub ctx_switches: u64,
    /// CPU time lost to context-switch overhead.
    pub overhead: SimDuration,
    /// Currently ready + running threads.
    pub nr_active: u64,
    /// Wall time during which at least one runnable thread waited for a
    /// CPU — Linux's pressure stall information, `cpu some` (PSI).
    pub stalled: SimDuration,
    /// Thread-weighted runqueue waiting time (`Σ Δt · waiting_threads`);
    /// see [`NodeStats::avg_runqueue_depth`].
    pub rq_wait: SimDuration,
}

impl NodeStats {
    /// Fraction of total CPU capacity spent busy, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy.as_nanos() + self.idle.as_nanos();
        if total == 0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / total as f64
        }
    }

    /// Fraction of wall time with CPU pressure (PSI `cpu some`): at least
    /// one runnable thread was stalled waiting for a processor. A direct
    /// bottleneck indicator, per the paper's future-work item 4 (§8).
    pub fn cpu_pressure_some(&self) -> f64 {
        let cpus = self.cpus.max(1) as u64;
        let wall = (self.busy.as_nanos() + self.idle.as_nanos()) / cpus;
        if wall == 0 {
            0.0
        } else {
            self.stalled.as_nanos() as f64 / wall as f64
        }
    }

    /// Average number of runnable threads waiting for a CPU over the
    /// node's lifetime (time-weighted runqueue depth).
    pub fn avg_runqueue_depth(&self) -> f64 {
        let cpus = self.cpus.max(1) as u64;
        let wall = (self.busy.as_nanos() + self.idle.as_nanos()) / cpus;
        if wall == 0 {
            0.0
        } else {
            self.rq_wait.as_nanos() as f64 / wall as f64
        }
    }
}

/// The simulated kernel. See the crate docs for the scheduling model.
///
/// # Examples
///
/// ```
/// use simos::{FixedWork, Kernel, SimDuration};
///
/// let mut kernel = Kernel::default();
/// let node = kernel.add_node("n0", 1);
/// let tid = kernel
///     .spawn(node, "worker", FixedWork::new(SimDuration::from_millis(1), 3))
///     .build();
/// kernel.run_for(SimDuration::from_millis(10));
/// // 3ms of work plus the context-switch cost of the first dispatch.
/// let cputime = kernel.thread_info(tid).unwrap().cputime;
/// assert!(cputime >= SimDuration::from_millis(3));
/// assert!(cputime < SimDuration::from_millis(4));
/// ```
pub struct Kernel {
    now: SimTime,
    config: KernelConfig,
    threads: Vec<ThreadData>,
    cgroups: Vec<CgroupData>,
    nodes: Vec<NodeData>,
    /// Blocked threads by wait channel, indexed by the (dense) [`WaitId`].
    /// Buffers are kept and reused so the block/wake cycle every tuple
    /// transfer goes through never allocates.
    waiters: Vec<Vec<ThreadId>>,
    calendar: EventCalendar<TimerKind>,
    callbacks: Vec<CallbackEntry>,
    /// Recycled one-shot callback slots.
    free_callbacks: Vec<usize>,
    /// Persistent deferred-effect handlers ([`Kernel::register_defer_call`]),
    /// indexed by [`DeferCallId`]. `None` while a handler is on the call
    /// stack (taken out to fire, put back after).
    defer_calls: Vec<Option<DeferCall>>,
    next_wait: u64,
    next_seq: u64,
    invoke_guard: Vec<(SimTime, u32)>,
    fault_hook: Option<FaultHook>,
    /// Installed trace sink, if any. Every emission site is guarded by a
    /// single `is_some` check, so tracing costs one branch when disabled.
    tracer: Option<TraceHandle>,
    /// FIFO worklist of node indexes whose runqueues or CPUs changed and
    /// need a dispatch pass.
    dispatch_worklist: VecDeque<usize>,
    /// Scratch buffers for same-instant event batches (reused to avoid
    /// allocating in the hot loop).
    due_cpus: Vec<(usize, usize, u64)>,
    due_timers: Vec<(u64, DueTimer)>,
    /// In-flight deferred effects ([`SimCtx::defer`]), FIFO-ordered.
    /// Defer delays are almost always one constant (the network delay), so
    /// due times are nondecreasing and a plain queue replaces per-event
    /// heap churn; each entry carries a sequence number from the
    /// calendar's tie-break space so same-instant ordering against real
    /// calendar events is preserved. An out-of-order defer (shorter delay
    /// while longer ones are pending) falls back to the calendar.
    defer_fifo: VecDeque<DeferEntry>,
    /// Per-node minimum over the CPUs' `due` instants, maintained at every
    /// `due` mutation. Stored contiguously (not in `NodeData`) so the main
    /// loop's next-event lookup and due-CPU collection read one small array
    /// instead of touching every node's cache lines each iteration.
    node_min_due: Vec<SimTime>,
    /// Thread whose settle (body invocation) is on the call stack right
    /// now. Lazy charging lets a quota throttle fire mid-settle; the
    /// throttle must not enqueue this thread out from under the settle.
    settling: Option<ThreadId>,
    /// CPUs chosen by in-flight [`place_thread`](Kernel::place_thread)
    /// frames whose occupants are still running their bodies (so
    /// `current` is `None` but the CPU is spoken for). A re-entrant
    /// fast-path wake must not grab any of them — wake chains nest
    /// placements (A's body wakes B, B's delivery wakes C), and every
    /// frame on the stack still holds its reservation, so this is a
    /// stack, pushed/popped around each placement.
    reserving: Vec<(usize, usize)>,
    /// Nesting depth of fast-path wake placements on the call stack. Each
    /// level runs a body inside `wake`, so a same-instant wake chain
    /// recurses; past the cap we fall back to the worklist to bound stack
    /// growth.
    fast_wake_depth: u32,
    /// True once any cgroup ever had a CPU quota: wake-time preemption
    /// checks must then commit charges eagerly (a charge may throttle a
    /// group mid-wake). Without quotas they run on speculative vruntimes.
    quota_in_use: bool,
    /// Instant `sync_accounting` last ran; repeat syncs at the same instant
    /// (several callbacks firing together) are no-ops and skipped.
    synced_at: SimTime,
    loop_iters: u64,
    /// Recycled effect buffers handed to each body invocation.
    ctx_wakes: Vec<WaitId>,
    ctx_deferred: Vec<crate::body::Deferred>,
}

/// Decides whether a mutating kernel operation fails at the given instant
/// (`true` = inject [`KernelError::InjectedFault`]).
pub type FaultHook = Box<dyn FnMut(&'static str, SimTime) -> bool>;

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(KernelConfig::default())
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .field("cgroups", &self.cgroups.len())
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

/// Builder returned by [`Kernel::spawn`]; finish with [`build`](SpawnBuilder::build).
pub struct SpawnBuilder<'k> {
    kernel: &'k mut Kernel,
    node: NodeId,
    name: String,
    body: Box<dyn ThreadBody>,
    cgroup: Option<CgroupId>,
    nice: Nice,
}

impl fmt::Debug for SpawnBuilder<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpawnBuilder")
            .field("node", &self.node)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl SpawnBuilder<'_> {
    /// Places the thread in `cgroup` instead of the node's root group.
    pub fn cgroup(mut self, cgroup: CgroupId) -> Self {
        self.cgroup = Some(cgroup);
        self
    }

    /// Starts the thread with the given nice level.
    pub fn nice(mut self, nice: Nice) -> Self {
        self.nice = nice;
        self
    }

    /// Creates the thread in the `Ready` state and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the chosen cgroup belongs to a different node.
    pub fn build(self) -> ThreadId {
        let SpawnBuilder {
            kernel,
            node,
            name,
            body,
            cgroup,
            nice,
        } = self;
        let cgroup = cgroup.unwrap_or(kernel.nodes[node.0 as usize].root);
        assert_eq!(
            kernel.cgroups[cgroup.0 as usize].node, node,
            "spawn: cgroup {cgroup} is not on node {node}"
        );
        let id = ThreadId(kernel.threads.len() as u64);
        let seq = kernel.alloc_seq();
        let start_vr = kernel.cgroups[cgroup.0 as usize].min_vruntime;
        kernel.threads.push(ThreadData {
            id,
            name,
            node,
            cgroup,
            nice,
            rt_priority: None,
            state: ThreadState::Ready,
            vruntime: start_vr,
            seq,
            body: Some(body),
            remaining: SimDuration::ZERO,
            cputime: SimDuration::ZERO,
            dispatches: 0,
            last_ran: kernel.now,
        });
        kernel.invoke_guard.push((SimTime::MAX, 0));
        kernel.nodes[node.0 as usize].nr_active += 1;
        kernel.enqueue_thread(id, false);
        id
    }
}

#[allow(missing_docs)]
impl Kernel {
    /// Creates an empty kernel with the given scheduler configuration.
    pub fn new(config: KernelConfig) -> Self {
        Kernel {
            now: SimTime::ZERO,
            config,
            threads: Vec::new(),
            cgroups: Vec::new(),
            nodes: Vec::new(),
            waiters: Vec::new(),
            calendar: EventCalendar::new(),
            callbacks: Vec::new(),
            free_callbacks: Vec::new(),
            next_wait: 0,
            next_seq: 0,
            invoke_guard: Vec::new(),
            fault_hook: None,
            tracer: None,
            dispatch_worklist: VecDeque::new(),
            defer_calls: Vec::new(),
            due_cpus: Vec::new(),
            due_timers: Vec::new(),
            defer_fifo: VecDeque::new(),
            node_min_due: Vec::new(),
            settling: None,
            reserving: Vec::new(),
            fast_wake_depth: 0,
            quota_in_use: false,
            synced_at: SimTime::MAX,
            loop_iters: 0,
            ctx_wakes: Vec::new(),
            ctx_deferred: Vec::new(),
        }
    }

    /// Installs a fault hook consulted by the mutating scheduler-control
    /// operations (`set_nice`, `set_cpu_shares`, `create_cgroup`,
    /// `move_to_cgroup`, `set_rt_priority`, `set_cpu_quota`). When the hook
    /// returns `true` for `(operation, now)`, the call fails with
    /// [`KernelError::InjectedFault`] without mutating any state. Replaces
    /// any previously installed hook.
    pub fn set_fault_hook(&mut self, hook: impl FnMut(&'static str, SimTime) -> bool + 'static) {
        self.fault_hook = Some(Box::new(hook));
    }

    /// Removes the installed fault hook, if any.
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// Installs a trace sink: from now on every scheduling decision
    /// (dispatches, wake-ups, blocks, preemptions, slice expiries, nice /
    /// shares / cgroup changes) is appended to the buffer as a structured
    /// [`TraceEvent`]. Upper layers (SPE runtime, middleware) clone the
    /// handle via [`trace_sink`](Kernel::trace_sink) so all layers share
    /// one totally ordered stream. Replaces any previous sink.
    pub fn set_trace_sink(&mut self, sink: TraceHandle) {
        self.tracer = Some(sink);
    }

    /// Creates and installs a trace buffer (`capacity = None` for
    /// unbounded, `Some(n)` for a ring keeping the most recent `n`
    /// records) and returns a handle to it.
    pub fn install_tracing(&mut self, capacity: Option<usize>) -> TraceHandle {
        let buffer = match capacity {
            Some(n) => TraceBuffer::ring(n),
            None => TraceBuffer::unbounded(),
        };
        let handle = buffer.into_handle();
        self.tracer = Some(handle.clone());
        handle
    }

    /// Removes the installed trace sink, if any.
    pub fn clear_trace_sink(&mut self) {
        self.tracer = None;
    }

    /// The installed trace sink, if any.
    pub fn trace_sink(&self) -> Option<&TraceHandle> {
        self.tracer.as_ref()
    }

    /// Appends an event to the trace sink, if one is installed. The
    /// closure only runs when tracing is on, so disabled-path cost is the
    /// `is_some` branch.
    #[inline]
    fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.tracer {
            sink.borrow_mut().push(self.now, event());
        }
    }

    /// Consults the fault hook before a mutating control operation.
    fn fault_check(&mut self, op: &'static str) -> Result<(), KernelError> {
        let now = self.now;
        if let Some(hook) = self.fault_hook.as_mut() {
            if hook(op, now) {
                return Err(KernelError::InjectedFault { op });
            }
        }
        Ok(())
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The active scheduler configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Adds a machine with `cpus` processors and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn add_node(&mut self, name: &str, cpus: usize) -> NodeId {
        assert!(cpus > 0, "a node needs at least one CPU");
        let node = NodeId(self.nodes.len() as u64);
        let root = CgroupId(self.cgroups.len() as u64);
        let seq = self.alloc_seq();
        self.cgroups.push(CgroupData::new(
            root,
            format!("{name}/"),
            node,
            None,
            DEFAULT_CPU_SHARES,
            seq,
        ));
        let now = self.now;
        self.node_min_due.push(SimTime::MAX);
        self.nodes.push(NodeData {
            id: node,
            name: name.to_owned(),
            cpus: vec![
                Cpu {
                    current: None,
                    slice_end: SimTime::MAX,
                    last_thread: None,
                    busy: SimDuration::ZERO,
                    online: true,
                    last_charged: now,
                    gen: 0,
                    due: SimTime::MAX,
                };
                cpus
            ],
            root,
            rt_queue: std::collections::BTreeSet::new(),
            nr_active: 0,
            ctx_switches: 0,
            overhead: SimDuration::ZERO,
            busy: SimDuration::ZERO,
            idle: SimDuration::ZERO,
            stalled: SimDuration::ZERO,
            rq_wait: SimDuration::ZERO,
            last_accounted: now,
            occupied: 0,
            dirty: false,
        });
        node
    }

    /// Returns the root cgroup of a node.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] for an id not handed out by
    /// [`add_node`](Kernel::add_node).
    pub fn node_root(&self, node: NodeId) -> Result<CgroupId, KernelError> {
        self.nodes
            .get(node.0 as usize)
            .map(|n| n.root)
            .ok_or(KernelError::UnknownNode(node))
    }

    /// Number of nodes in this simulation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cumulative scheduling statistics for a node.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] for an unknown id.
    pub fn node_stats(&self, node: NodeId) -> Result<NodeStats, KernelError> {
        let n = self
            .nodes
            .get(node.0 as usize)
            .ok_or(KernelError::UnknownNode(node))?;
        Ok(NodeStats {
            name: n.name.clone(),
            cpus: n.cpus.len(),
            busy: n.busy,
            idle: n.idle,
            ctx_switches: n.ctx_switches,
            overhead: n.overhead,
            nr_active: n.nr_active,
            stalled: n.stalled,
            rq_wait: n.rq_wait,
        })
    }

    /// Cumulative per-CPU busy time for a node, indexed by CPU.
    ///
    /// Reflects charges up to the last accounting sweep; inside a user
    /// callback (which runs after the kernel's accounting sync) it is
    /// exact.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] for an unknown id.
    pub fn cpu_busy(&self, node: NodeId) -> Result<Vec<SimDuration>, KernelError> {
        let n = self
            .nodes
            .get(node.0 as usize)
            .ok_or(KernelError::UnknownNode(node))?;
        Ok(n.cpus.iter().map(|c| c.busy).collect())
    }

    /// Number of runnable threads currently waiting for a CPU on a node.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] for an unknown id.
    pub fn runqueue_depth(&self, node: NodeId) -> Result<u64, KernelError> {
        let n = self
            .nodes
            .get(node.0 as usize)
            .ok_or(KernelError::UnknownNode(node))?;
        Ok(n.nr_active.saturating_sub(n.occupied))
    }

    // ------------------------------------------------------------------
    // CPU hotplug
    // ------------------------------------------------------------------

    /// Takes a CPU offline (hotplug), migrating its occupant — if any —
    /// back onto the node's shared runqueue, where it keeps its vruntime
    /// and cgroup membership and any surviving CPU picks it up at the next
    /// dispatch. Emits [`TraceEvent::Preempt`] + [`TraceEvent::Migration`]
    /// for the displaced thread and [`TraceEvent::CpuOffline`] for the CPU.
    ///
    /// Idempotent: offlining an already-offline CPU is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] / [`KernelError::UnknownCpu`]
    /// for bad ids and [`KernelError::LastOnlineCpu`] when the CPU is the
    /// node's last online one (a node must keep at least one processor).
    pub fn offline_cpu(&mut self, node: NodeId, cpu: usize) -> Result<(), KernelError> {
        let node_idx = node.0 as usize;
        let n = self
            .nodes
            .get(node_idx)
            .ok_or(KernelError::UnknownNode(node))?;
        if cpu >= n.cpus.len() {
            return Err(KernelError::UnknownCpu { node, cpu });
        }
        if !n.cpus[cpu].online {
            return Ok(());
        }
        let survivors = n
            .cpus
            .iter()
            .enumerate()
            .filter(|&(i, c)| i != cpu && c.online)
            .count();
        if survivors == 0 {
            return Err(KernelError::LastOnlineCpu(node));
        }
        self.account_node(node_idx);
        // Preempting charges the occupant up to now and re-enqueues it on
        // its cgroup's runqueue — relative vruntime order and group
        // membership survive because runqueues are per-node, not per-CPU.
        let migrated = self.nodes[node_idx].cpus[cpu].current;
        if migrated.is_some() {
            self.preempt_running(node_idx, cpu);
        }
        {
            let c = &mut self.nodes[node_idx].cpus[cpu];
            c.online = false;
            c.last_thread = None;
            c.slice_end = SimTime::MAX;
            c.gen += 1; // invalidates any collected due batch
            c.due = SimTime::MAX;
        }
        self.refresh_min_due(node_idx);
        if let Some(tid) = migrated {
            let cgroup = self.threads[tid.0 as usize].cgroup;
            self.emit(|| TraceEvent::Migration { tid, cgroup });
        }
        self.emit(|| TraceEvent::CpuOffline { node: node.0, cpu });
        self.mark_dirty(node_idx);
        Ok(())
    }

    /// Brings a previously offline CPU back into dispatch. Idempotent;
    /// emits [`TraceEvent::CpuOnline`].
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] / [`KernelError::UnknownCpu`]
    /// for bad ids.
    pub fn online_cpu(&mut self, node: NodeId, cpu: usize) -> Result<(), KernelError> {
        let node_idx = node.0 as usize;
        let n = self
            .nodes
            .get(node_idx)
            .ok_or(KernelError::UnknownNode(node))?;
        if cpu >= n.cpus.len() {
            return Err(KernelError::UnknownCpu { node, cpu });
        }
        if n.cpus[cpu].online {
            return Ok(());
        }
        self.account_node(node_idx);
        let now = self.now;
        {
            let c = &mut self.nodes[node_idx].cpus[cpu];
            debug_assert!(c.current.is_none(), "offline cpu had an occupant");
            c.online = true;
            c.last_charged = now;
            c.gen += 1;
        }
        self.emit(|| TraceEvent::CpuOnline { node: node.0, cpu });
        self.mark_dirty(node_idx);
        Ok(())
    }

    /// Whether a CPU is currently online.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] / [`KernelError::UnknownCpu`]
    /// for bad ids.
    pub fn cpu_online(&self, node: NodeId, cpu: usize) -> Result<bool, KernelError> {
        let n = self
            .nodes
            .get(node.0 as usize)
            .ok_or(KernelError::UnknownNode(node))?;
        n.cpus
            .get(cpu)
            .map(|c| c.online)
            .ok_or(KernelError::UnknownCpu { node, cpu })
    }

    /// Number of online CPUs on a node.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownNode`] for an unknown id.
    pub fn online_cpus(&self, node: NodeId) -> Result<usize, KernelError> {
        let n = self
            .nodes
            .get(node.0 as usize)
            .ok_or(KernelError::UnknownNode(node))?;
        Ok(n.cpus.iter().filter(|c| c.online).count())
    }

    /// Schedules a CPU-offline event on the calendar, `delay` from now
    /// (the deterministic way to script hotplug into an experiment).
    /// Failures at fire time (bad ids, last online CPU) are ignored — the
    /// fault simply does not happen, mirroring a hotplug request the
    /// kernel refused.
    pub fn schedule_cpu_offline(&mut self, delay: SimDuration, node: NodeId, cpu: usize) {
        self.schedule_once(delay, move |k| {
            let _ = k.offline_cpu(node, cpu);
        });
    }

    /// Schedules a CPU-online event on the calendar, `delay` from now.
    /// Failures at fire time are ignored, like
    /// [`schedule_cpu_offline`](Kernel::schedule_cpu_offline).
    pub fn schedule_cpu_online(&mut self, delay: SimDuration, node: NodeId, cpu: usize) {
        self.schedule_once(delay, move |k| {
            let _ = k.online_cpu(node, cpu);
        });
    }

    // ------------------------------------------------------------------
    // Cgroups
    // ------------------------------------------------------------------

    /// Creates a child cgroup of `parent` with the given `cpu.shares`.
    ///
    /// Shares are clamped into `[MIN_CPU_SHARES, MAX_CPU_SHARES]`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownCgroup`] if `parent` is unknown.
    pub fn create_cgroup(
        &mut self,
        parent: CgroupId,
        name: &str,
        shares: u64,
    ) -> Result<CgroupId, KernelError> {
        self.fault_check("create_cgroup")?;
        let (node, full_name, start_vr) = {
            let parent_data = self
                .cgroups
                .get(parent.0 as usize)
                .ok_or(KernelError::UnknownCgroup(parent))?;
            (
                parent_data.node,
                format!("{}{}/", parent_data.name, name),
                parent_data.min_vruntime,
            )
        };
        let id = CgroupId(self.cgroups.len() as u64);
        let seq = self.alloc_seq();
        let mut data = CgroupData::new(id, full_name, node, Some(parent), clamp_shares(shares), seq);
        data.vruntime = start_vr;
        self.cgroups.push(data);
        self.cgroups[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// Updates a cgroup's `cpu.shares` (clamped into the accepted range).
    ///
    /// Takes effect from the current instant onward.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownCgroup`] for an unknown id.
    pub fn set_cpu_shares(&mut self, cgroup: CgroupId, shares: u64) -> Result<(), KernelError> {
        self.fault_check("set_cpu_shares")?;
        let cg = self
            .cgroups
            .get_mut(cgroup.0 as usize)
            .ok_or(KernelError::UnknownCgroup(cgroup))?;
        let clamped = clamp_shares(shares);
        cg.shares = clamped;
        self.emit(|| TraceEvent::SharesChange {
            cgroup,
            shares: clamped,
        });
        Ok(())
    }

    /// Read-only view of a cgroup.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownCgroup`] for an unknown id.
    pub fn cgroup_info(&self, cgroup: CgroupId) -> Result<CgroupInfo, KernelError> {
        let cg = self
            .cgroups
            .get(cgroup.0 as usize)
            .ok_or(KernelError::UnknownCgroup(cgroup))?;
        Ok(CgroupInfo {
            id: cg.id,
            name: cg.name.clone(),
            node: cg.node,
            parent: cg.parent,
            children: cg.children.clone(),
            shares: cg.shares,
            cputime: cg.cputime,
            quota: cg.quota.map(|q| (q.quota, q.period)),
            throttled: cg.throttled,
        })
    }

    /// Moves a thread into `cgroup`, re-normalizing its vruntime.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids, exited threads, or a cgroup on a
    /// different node than the thread.
    pub fn move_to_cgroup(&mut self, tid: ThreadId, cgroup: CgroupId) -> Result<(), KernelError> {
        self.fault_check("move_to_cgroup")?;
        let t = self
            .threads
            .get(tid.0 as usize)
            .ok_or(KernelError::UnknownThread(tid))?;
        let cg = self
            .cgroups
            .get(cgroup.0 as usize)
            .ok_or(KernelError::UnknownCgroup(cgroup))?;
        if t.state == ThreadState::Exited {
            return Err(KernelError::ThreadExited(tid));
        }
        if t.node != cg.node {
            return Err(KernelError::CrossNode {
                thread: tid,
                cgroup,
            });
        }
        let old = t.cgroup;
        if old == cgroup {
            return Ok(());
        }
        let was_ready = t.state == ThreadState::Ready;
        if was_ready {
            self.dequeue_ready_thread(tid);
        }
        // Re-base the vruntime: keep the thread's lag relative to its old
        // group and re-apply it in the new group (what Linux does on
        // migration between cfs_rqs). The lag is clamped to one scheduling
        // period in either direction — EEVDF-style bounded lag. Unbounded
        // carry-over compounds across repeated moves through groups whose
        // min_vruntime floors drifted apart (a zero-share group inflates
        // its floor at NICE_0_WEIGHT/shares times wall rate), and a thread
        // arriving with seconds of banked negative lag starves its new
        // siblings until the bank drains.
        let period = self.config.sched_latency.as_nanos() as i128;
        let old_min = self.cgroups[old.0 as usize].min_vruntime;
        let new_min = self.cgroups[cgroup.0 as usize].min_vruntime;
        let t = &mut self.threads[tid.0 as usize];
        let lag = (t.vruntime as i128 - old_min as i128).clamp(-period, period);
        t.vruntime = (new_min as i128 + lag).max(0) as u64;
        t.cgroup = cgroup;
        self.emit(|| TraceEvent::Migration { tid, cgroup });
        if was_ready {
            self.enqueue_thread(tid, false);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Starts building a thread on `node`; finish with
    /// [`SpawnBuilder::build`].
    ///
    /// # Panics
    ///
    /// `build` panics if `node` is unknown or the chosen cgroup is on a
    /// different node.
    pub fn spawn(
        &mut self,
        node: NodeId,
        name: &str,
        body: impl ThreadBody + 'static,
    ) -> SpawnBuilder<'_> {
        assert!(
            (node.0 as usize) < self.nodes.len(),
            "spawn: unknown node {node}"
        );
        SpawnBuilder {
            kernel: self,
            node,
            name: name.to_owned(),
            body: Box::new(body),
            cgroup: None,
            nice: Nice::DEFAULT,
        }
    }

    /// Changes a thread's nice level; takes effect from now onward.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or exited threads.
    pub fn set_nice(&mut self, tid: ThreadId, nice: Nice) -> Result<(), KernelError> {
        self.fault_check("set_nice")?;
        let t = self
            .threads
            .get_mut(tid.0 as usize)
            .ok_or(KernelError::UnknownThread(tid))?;
        if t.state == ThreadState::Exited {
            return Err(KernelError::ThreadExited(tid));
        }
        t.nice = nice;
        self.emit(|| TraceEvent::NiceChange {
            tid,
            nice: nice.value(),
        });
        Ok(())
    }

    /// Moves a thread into or out of the real-time (SCHED_FIFO-like) band.
    ///
    /// RT threads always run before any CFS thread of their node, ordered
    /// by priority (higher first) then FIFO, and are never timesliced —
    /// a CPU-bound RT thread starves CFS threads, exactly like on Linux.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or exited threads.
    pub fn set_rt_priority(
        &mut self,
        tid: ThreadId,
        priority: Option<u8>,
    ) -> Result<(), KernelError> {
        self.fault_check("set_rt_priority")?;
        let t = self
            .threads
            .get(tid.0 as usize)
            .ok_or(KernelError::UnknownThread(tid))?;
        if t.state == ThreadState::Exited {
            return Err(KernelError::ThreadExited(tid));
        }
        if t.rt_priority == priority {
            return Ok(());
        }
        let state = t.state;
        if state == ThreadState::Ready {
            self.dequeue_ready_thread(tid);
        }
        let leaving_rt = self.threads[tid.0 as usize].rt_priority.is_some() && priority.is_none();
        self.threads[tid.0 as usize].rt_priority = priority;
        if leaving_rt {
            // The vruntime went stale while in the RT band; rejoin CFS at
            // the group's current floor so the thread neither hogs nor
            // starves.
            let g = self.threads[tid.0 as usize].cgroup;
            let floor = self.cgroups[g.0 as usize].min_vruntime;
            let t = &mut self.threads[tid.0 as usize];
            if t.vruntime < floor {
                t.vruntime = floor;
            }
        }
        match state {
            ThreadState::Ready => self.enqueue_thread(tid, false),
            ThreadState::Running(_) => {
                // Force a re-dispatch under the new class.
                for node_idx in 0..self.nodes.len() {
                    for cpu_idx in 0..self.nodes[node_idx].cpus.len() {
                        if self.nodes[node_idx].cpus[cpu_idx].current == Some(tid) {
                            self.preempt_running(node_idx, cpu_idx);
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Sets (or clears) a cgroup CPU quota: the group's threads may consume
    /// at most `quota` of CPU time per `period`; once exhausted, the whole
    /// group is throttled until the window ends (CFS bandwidth control).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownCgroup`] for an unknown id.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero when setting a quota.
    pub fn set_cpu_quota(
        &mut self,
        cgroup: CgroupId,
        quota: Option<(SimDuration, SimDuration)>,
    ) -> Result<(), KernelError> {
        self.fault_check("set_cpu_quota")?;
        let now = self.now;
        let cg = self
            .cgroups
            .get_mut(cgroup.0 as usize)
            .ok_or(KernelError::UnknownCgroup(cgroup))?;
        match quota {
            Some((q, period)) => {
                assert!(!period.is_zero(), "quota period must be > 0");
                cg.quota = Some(crate::cgroup::QuotaState {
                    quota: q,
                    period,
                    window_start: now,
                    usage: SimDuration::ZERO,
                });
                self.quota_in_use = true;
            }
            None => {
                cg.quota = None;
                if cg.throttled {
                    self.unthrottle(cgroup);
                }
            }
        }
        Ok(())
    }

    /// Adds `delta` to a group's quota window, throttling on overrun.
    fn account_quota(&mut self, cgroup: CgroupId, delta: SimDuration) {
        let now = self.now;
        let resume = {
            let Some(q) = self.cgroups[cgroup.0 as usize].quota.as_mut() else {
                return;
            };
            while now >= q.window_start + q.period {
                q.window_start += q.period;
                q.usage = SimDuration::ZERO;
            }
            q.usage += delta;
            if q.usage >= q.quota {
                Some(q.window_start + q.period)
            } else {
                None
            }
        };
        if let Some(resume) = resume {
            if !self.cgroups[cgroup.0 as usize].throttled {
                self.throttle(cgroup, resume);
            }
        }
    }

    /// Throttles a group: removes its entity from the parent runqueue,
    /// preempts its running threads, and schedules the unthrottle timer.
    fn throttle(&mut self, cgroup: CgroupId, resume: SimTime) {
        let node_idx = self.cgroups[cgroup.0 as usize].node.0 as usize;
        self.account_node(node_idx);
        self.cgroups[cgroup.0 as usize].throttled = true;
        // Preempt running descendants (they re-queue inside the subtree,
        // unreachable until unthrottled).
        for node_idx in 0..self.nodes.len() {
            for cpu_idx in 0..self.nodes[node_idx].cpus.len() {
                let Some(cur) = self.nodes[node_idx].cpus[cpu_idx].current else {
                    continue;
                };
                if self.settling == Some(cur) {
                    // Lazy charging lets a throttle trigger while this
                    // thread's settle (body invocation) is on the stack;
                    // enqueueing it here would leave it both queued and
                    // mid-settle. It is parked at its next slice boundary
                    // instead.
                    continue;
                }
                if self.is_descendant(self.threads[cur.0 as usize].cgroup, cgroup) {
                    self.preempt_running(node_idx, cpu_idx);
                }
            }
        }
        // Hide the subtree from the scheduler.
        if self.cgroups[cgroup.0 as usize].queued {
            let parent = self.cgroups[cgroup.0 as usize]
                .parent
                .expect("queued group has a parent");
            let (vr, seq, ent) = self.group_entity_key(cgroup);
            self.cgroups[parent.0 as usize].rq.remove(vr, seq, ent);
            self.cgroups[cgroup.0 as usize].queued = false;
            self.cascade_dequeue(parent);
        }
        self.calendar
            .insert(resume, TimerKind::Unthrottle(cgroup));
    }

    /// Lifts a throttle: re-links the group into the runqueue tree.
    fn unthrottle(&mut self, cgroup: CgroupId) {
        let node_idx = self.cgroups[cgroup.0 as usize].node.0 as usize;
        self.account_node(node_idx);
        self.cgroups[cgroup.0 as usize].throttled = false;
        if let Some(q) = self.cgroups[cgroup.0 as usize].quota.as_mut() {
            let now = self.now;
            while now >= q.window_start + q.period {
                q.window_start += q.period;
                q.usage = SimDuration::ZERO;
            }
        }
        if !self.cgroups[cgroup.0 as usize].rq.is_empty()
            && !self.cgroups[cgroup.0 as usize].queued
        {
            // Re-enter the parent runqueue (and cascade upward).
            let mut child = cgroup;
            while let Some(parent) = self.cgroups[child.0 as usize].parent {
                if self.cgroups[child.0 as usize].queued
                    || self.cgroups[child.0 as usize].throttled
                {
                    break;
                }
                let floor = self.cgroups[parent.0 as usize].min_vruntime;
                let c = &mut self.cgroups[child.0 as usize];
                if c.vruntime < floor {
                    c.vruntime = floor;
                }
                let (vr, seq, ent) = self.group_entity_key(child);
                self.cgroups[parent.0 as usize].rq.insert(vr, seq, ent);
                self.cgroups[child.0 as usize].queued = true;
                child = parent;
            }
        }
        self.mark_dirty(node_idx);
    }

    /// Whether `cgroup` is `ancestor` or nested below it.
    fn is_descendant(&self, mut cgroup: CgroupId, ancestor: CgroupId) -> bool {
        loop {
            if cgroup == ancestor {
                return true;
            }
            match self.cgroups[cgroup.0 as usize].parent {
                Some(p) => cgroup = p,
                None => return false,
            }
        }
    }

    /// Read-only view of a thread.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnknownThread`] for an unknown id.
    pub fn thread_info(&self, tid: ThreadId) -> Result<ThreadInfo, KernelError> {
        let t = self
            .threads
            .get(tid.0 as usize)
            .ok_or(KernelError::UnknownThread(tid))?;
        Ok(ThreadInfo {
            id: t.id,
            name: t.name.clone(),
            node: t.node,
            cgroup: t.cgroup,
            nice: t.nice,
            rt_priority: t.rt_priority,
            state: t.state,
            cputime: t.cputime,
            dispatches: t.dispatches,
        })
    }

    /// Ids of all threads ever spawned (including exited ones).
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.threads.iter().map(|t| t.id)
    }

    // ------------------------------------------------------------------
    // Wait channels & timers
    // ------------------------------------------------------------------

    /// Allocates a new wait channel.
    pub fn new_wait_channel(&mut self) -> WaitId {
        let id = WaitId(self.next_wait);
        self.next_wait += 1;
        if self.waiters.len() < self.next_wait as usize {
            self.waiters.resize_with(self.next_wait as usize, Vec::new);
        }
        id
    }

    /// Wakes every thread currently blocked on `channel`.
    pub fn wake(&mut self, channel: WaitId) {
        let ch = channel.0 as usize;
        if ch >= self.waiters.len() || self.waiters[ch].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.waiters[ch]);
        list.retain(|&tid| self.threads[tid.0 as usize].state == ThreadState::Blocked(channel));
        // Single-waiter wake onto an idle CPU skips the runqueue entirely.
        // The fast path runs the woken body, which may re-block threads on
        // this very channel — recycle the buffer only if none did.
        if list.len() == 1 && self.try_fast_wake(list[0]) {
            if self.waiters[ch].is_empty() {
                list.clear();
                self.waiters[ch] = list;
            }
            return;
        }
        for &tid in &list {
            let node = self.threads[tid.0 as usize].node;
            self.nodes[node.0 as usize].nr_active += 1;
            self.enqueue_thread(tid, true);
        }
        // Preemption checks are batched after all enqueues, with at most
        // one preemption per node per wake batch: once a node yields a
        // CPU it has an idle processor, so any further check there would
        // see it and no-op anyway.
        let mut preempted: Vec<usize> = Vec::new();
        for &tid in &list {
            let node_idx = self.threads[tid.0 as usize].node.0 as usize;
            if preempted.contains(&node_idx) {
                continue;
            }
            if self.maybe_preempt(tid) {
                preempted.push(node_idx);
            }
        }
        // Nothing above runs thread bodies, so no one can have re-blocked
        // on the channel meanwhile; give the buffer back for reuse.
        debug_assert!(self.waiters[ch].is_empty());
        list.clear();
        self.waiters[ch] = list;
    }

    /// CFS wake-up preemption: if a running thread of the *same* cgroup is
    /// far enough ahead in vruntime, it is put back on the runqueue so the
    /// woken thread can take the CPU at the next dispatch. This is the
    /// mechanism through which nice priorities shape batching: a heavily
    /// weighted producer accrues vruntime slowly and resists preemption by
    /// the light consumers it wakes, so it runs in long efficient bursts.
    ///
    /// Returns `true` when a running thread was preempted.
    fn maybe_preempt(&mut self, woken: ThreadId) -> bool {
        // A woken RT thread preempts any CFS thread (or a lower-priority RT
        // thread) immediately when no CPU is idle.
        if let Some(prio) = self.threads[woken.0 as usize].rt_priority {
            let node = self.threads[woken.0 as usize].node;
            if self.nodes[node.0 as usize]
                .cpus
                .iter()
                .any(|c| c.online && c.current.is_none())
            {
                return false;
            }
            let victim = (0..self.nodes[node.0 as usize].cpus.len()).find(|&i| {
                // Offline CPUs have no occupant and are no dispatch target.
                let Some(cur) = self.nodes[node.0 as usize].cpus[i].current else {
                    return false;
                };
                // A thread at a completion boundary (remaining == 0) is
                // being settled right now; preempting it here would leave
                // it both queued and mid-settle.
                if self.threads[cur.0 as usize].remaining.is_zero() {
                    return false;
                }
                match self.threads[cur.0 as usize].rt_priority {
                    None => true,
                    Some(p) => p < prio,
                }
            });
            if let Some(cpu_idx) = victim {
                self.preempt_running(node.0 as usize, cpu_idx);
                return true;
            }
            return false;
        }
        let (group, node, wvr, weight) = {
            let w = &self.threads[woken.0 as usize];
            if w.state != ThreadState::Ready {
                return false;
            }
            (w.cgroup, w.node, w.vruntime, w.nice.weight())
        };
        let node_idx = node.0 as usize;
        // Like Linux's select_idle_sibling: a woken thread starts on an
        // idle CPU when one exists; preemption only matters under load.
        if self.nodes[node_idx]
            .cpus
            .iter()
            .any(|c| c.online && c.current.is_none())
        {
            return false;
        }
        if self.quota_in_use {
            // Eager path: bring same-group running threads' charges up to
            // date, because a charge may throttle their group and free its
            // CPUs — the woken thread then starts on one of those instead
            // of preempting.
            for cpu_idx in 0..self.nodes[node_idx].cpus.len() {
                let Some(cur) = self.nodes[node_idx].cpus[cpu_idx].current else {
                    continue;
                };
                if self.threads[cur.0 as usize].cgroup == group {
                    self.charge_cpu(node_idx, cpu_idx);
                }
            }
            if self.nodes[node_idx]
                .cpus
                .iter()
                .any(|c| c.online && c.current.is_none())
            {
                return false;
            }
        }
        // The granularity is scaled by the woken thread's weight (CFS
        // `wakeup_gran`): light threads must lag further behind before
        // they may preempt, heavy threads preempt sooner.
        let gran = match self.config.wakeup_granularity.as_nanos().checked_mul(NICE_0_WEIGHT) {
            Some(p) => p / weight,
            None => (self.config.wakeup_granularity.as_nanos() as u128 * NICE_0_WEIGHT as u128
                / weight as u128) as u64,
        };
        let now = self.now;
        let mut best: Option<(usize, u64)> = None;
        for (cpu_idx, cpu) in self.nodes[node_idx].cpus.iter().enumerate() {
            let Some(cur) = cpu.current else { continue };
            let c = &self.threads[cur.0 as usize];
            if c.cgroup != group {
                continue; // vruntimes of different runqueues don't compare
            }
            // Candidates are charged lazily; evaluate them as if charged
            // up to now (same decision as an eager charge, without the
            // cgroup hierarchy walk — only the chosen victim pays one).
            let lag = now - cpu.last_charged;
            if c.remaining.saturating_sub(lag).is_zero() {
                // Completion boundary: the settle loop is driving this
                // thread right now; preempting would double-queue it.
                continue;
            }
            let mut vr = c.vruntime;
            if !lag.is_zero() && c.rt_priority.is_none() {
                vr += Kernel::weighted_vruntime(lag.as_nanos(), c.nice.weight());
            }
            if vr > wvr.saturating_add(gran) && best.is_none_or(|(_, d)| vr - wvr > d) {
                best = Some((cpu_idx, vr - wvr));
            }
        }
        if let Some((cpu_idx, _)) = best {
            self.preempt_running(node_idx, cpu_idx);
            return true;
        }
        false
    }

    /// Schedules `f` to run once after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnMut(&mut Kernel) + 'static,
    ) -> CallbackId {
        self.schedule_internal(delay, None, CallbackFn::Recurring(Box::new(f)))
    }

    /// Schedules `f` to run after `delay` and then every `period`.
    ///
    /// # Examples
    ///
    /// ```
    /// use simos::{Kernel, SimDuration};
    /// use std::{cell::RefCell, rc::Rc};
    ///
    /// let mut kernel = Kernel::default();
    /// let ticks = Rc::new(RefCell::new(0));
    /// let t = Rc::clone(&ticks);
    /// kernel.schedule_periodic(
    ///     SimDuration::from_secs(1),
    ///     SimDuration::from_secs(1),
    ///     move |_kernel| *t.borrow_mut() += 1,
    /// );
    /// kernel.run_for(SimDuration::from_secs(5));
    /// assert_eq!(*ticks.borrow(), 5);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn schedule_periodic(
        &mut self,
        delay: SimDuration,
        period: SimDuration,
        f: impl FnMut(&mut Kernel) + 'static,
    ) -> CallbackId {
        assert!(!period.is_zero(), "periodic callback period must be > 0");
        self.schedule_internal(delay, Some(period), CallbackFn::Recurring(Box::new(f)))
    }

    fn schedule_internal(
        &mut self,
        delay: SimDuration,
        period: Option<SimDuration>,
        f: CallbackFn,
    ) -> CallbackId {
        let id = self.alloc_callback(period, f);
        self.calendar
            .insert(self.now + delay, TimerKind::Callback(id));
        id
    }

    /// Registers a persistent deferred-effect handler and returns its id.
    ///
    /// The handler fires once per [`SimCtx::defer_call`] scheduling it,
    /// after the given delay, with full kernel access — like
    /// [`SimCtx::defer`], but the closure is allocated once here instead
    /// of once per event. Callers queue the per-event payload themselves
    /// (e.g. a network queue buffers in-flight tuples in arrival order and
    /// its handler delivers exactly one per firing). Handlers live for the
    /// kernel's lifetime.
    pub fn register_defer_call(
        &mut self,
        f: impl FnMut(&mut Kernel) + 'static,
    ) -> DeferCallId {
        self.defer_calls.push(Some(Box::new(f)));
        DeferCallId((self.defer_calls.len() - 1) as u64)
    }

    /// Fires one registered deferred-effect handler. The handler is taken
    /// out of its slot for the duration of the call so it can borrow the
    /// kernel mutably; re-entrant firings of the *same* handler are a bug
    /// in the caller (a handler never defers to itself with zero delay).
    fn run_defer_call(&mut self, id: DeferCallId) {
        let slot = id.0 as usize;
        let mut f = self.defer_calls[slot]
            .take()
            .expect("defer-call handler fired re-entrantly");
        f(self);
        self.defer_calls[slot] = Some(f);
    }

    /// Schedules a deferred internal effect (see [`TimerKind::Defer`]).
    ///
    /// Fast path: appended to `defer_fifo` when its due time is no earlier
    /// than the FIFO's tail (the common case — a single constant network
    /// delay makes due times nondecreasing). Out-of-order defers go through
    /// the calendar instead, which handles arbitrary times.
    fn push_defer(&mut self, delay: SimDuration, op: DeferOp) {
        let at = self.now + delay;
        if self.defer_fifo.back().is_some_and(|&(t, _, _)| t > at) {
            let f: Box<dyn FnOnce(&mut Kernel)> = match op {
                DeferOp::Boxed(f) => f,
                DeferOp::Call(id) => Box::new(move |k: &mut Kernel| k.run_defer_call(id)),
            };
            let id = self.alloc_callback(None, CallbackFn::Once(f));
            self.calendar
                .insert(at, TimerKind::Defer(id));
        } else {
            let seq = self.calendar.reserve_seq().seq();
            self.defer_fifo.push_back((at, seq, op));
        }
    }

    fn alloc_callback(&mut self, period: Option<SimDuration>, f: CallbackFn) -> CallbackId {
        let slot = match self.free_callbacks.pop() {
            Some(slot) => {
                let e = &mut self.callbacks[slot];
                e.f = Some(f);
                e.period = period;
                e.cancelled = false;
                slot
            }
            None => {
                self.callbacks.push(CallbackEntry {
                    f: Some(f),
                    period,
                    cancelled: false,
                    gen: 0,
                });
                self.callbacks.len() - 1
            }
        };
        callback_id(slot, self.callbacks[slot].gen)
    }

    /// Cancels a scheduled callback; pending firings are skipped.
    pub fn cancel_callback(&mut self, id: CallbackId) {
        let (slot, gen) = callback_slot(id);
        if let Some(cb) = self.callbacks.get_mut(slot) {
            if cb.gen == gen {
                cb.cancelled = true;
                cb.f = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Scheduler internals
    // ------------------------------------------------------------------

    fn thread_entity_key(&self, tid: ThreadId) -> (u64, u64, Entity) {
        let t = &self.threads[tid.0 as usize];
        (t.vruntime, t.seq, Entity::Thread(tid))
    }

    fn group_entity_key(&self, cg: CgroupId) -> (u64, u64, Entity) {
        let g = &self.cgroups[cg.0 as usize];
        (g.vruntime, g.seq, Entity::Group(cg))
    }

    /// Puts a ready thread into its cgroup's runqueue, cascading group
    /// entities up to the root as needed. `wakeup` grants the bounded
    /// vruntime bonus.
    fn enqueue_thread(&mut self, tid: ThreadId, wakeup: bool) {
        // The enqueue changes runqueue emptiness (the PSI condition) and
        // creates dispatchable work: account the interval up to now first
        // and put the node on the dispatch worklist.
        let node_idx = self.threads[tid.0 as usize].node.0 as usize;
        self.account_node(node_idx);
        self.mark_dirty(node_idx);
        if wakeup {
            self.emit(|| TraceEvent::Wake { tid });
        }
        if let Some(prio) = self.threads[tid.0 as usize].rt_priority {
            let node = self.threads[tid.0 as usize].node;
            let seq = self.alloc_seq();
            self.threads[tid.0 as usize].state = ThreadState::Ready;
            self.nodes[node.0 as usize]
                .rt_queue
                .insert((255 - prio, seq, tid));
            return;
        }
        // Bounded negative lag: an entity re-enters the queue no further
        // than one margin behind the group's floor. Wakeups get the small
        // wakeup-bonus margin (sleeper credit); requeues get a full
        // scheduling period. In healthy operation a runnable entity never
        // trails `min_vruntime` (it is the monotonic min over runnables),
        // so the floor is a no-op — it binds only when a sibling running
        // on another CPU of the shared node runqueue dragged the floor
        // ahead (e.g. a minimum-shares group soaking idle CPUs inflates
        // its entity vruntime at NICE_0_WEIGHT/shares times wall rate),
        // where unbounded banked lag would starve that sibling for sim-
        // seconds once capacity shrinks. Per-CPU CFS cannot bank lag this
        // way; the flattened per-node runqueue needs the explicit bound.
        let margin = if wakeup {
            self.config.wakeup_bonus.as_nanos()
        } else {
            self.config.sched_latency.as_nanos()
        };
        let g = self.threads[tid.0 as usize].cgroup;
        {
            let floor = self.cgroups[g.0 as usize].min_vruntime.saturating_sub(margin);
            let t = &mut self.threads[tid.0 as usize];
            if t.vruntime < floor {
                t.vruntime = floor;
            }
        }
        self.threads[tid.0 as usize].state = ThreadState::Ready;
        // Fresh tie-break per enqueue: threads with equal vruntime (e.g.
        // two producers woken by the same queue slot) run in FIFO enqueue
        // order instead of a fixed spawn order, which would starve one.
        self.threads[tid.0 as usize].seq = self.alloc_seq();
        let (vr, seq, ent) = self.thread_entity_key(tid);
        self.cgroups[g.0 as usize].rq.insert(vr, seq, ent);

        let mut child = g;
        while let Some(parent) = self.cgroups[child.0 as usize].parent {
            if self.cgroups[child.0 as usize].queued
                || self.cgroups[child.0 as usize].throttled
            {
                break;
            }
            {
                // Same bounded-lag floor as the thread placement above.
                let floor = self.cgroups[parent.0 as usize]
                    .min_vruntime
                    .saturating_sub(margin);
                let c = &mut self.cgroups[child.0 as usize];
                if c.vruntime < floor {
                    c.vruntime = floor;
                }
            }
            let (vr, seq, ent) = self.group_entity_key(child);
            self.cgroups[parent.0 as usize].rq.insert(vr, seq, ent);
            self.cgroups[child.0 as usize].queued = true;
            child = parent;
        }
    }

    /// Removes a Ready (queued, not running) thread from the runqueue tree.
    fn dequeue_ready_thread(&mut self, tid: ThreadId) {
        debug_assert_eq!(self.threads[tid.0 as usize].state, ThreadState::Ready);
        let node_idx = self.threads[tid.0 as usize].node.0 as usize;
        self.account_node(node_idx);
        if self.threads[tid.0 as usize].rt_priority.is_some() {
            let node = self.threads[tid.0 as usize].node;
            self.nodes[node.0 as usize]
                .rt_queue
                .retain(|&(_, _, t)| t != tid);
            return;
        }
        let g = self.threads[tid.0 as usize].cgroup;
        let (vr, seq, ent) = self.thread_entity_key(tid);
        self.cgroups[g.0 as usize].rq.remove(vr, seq, ent);
        self.cascade_dequeue(g);
    }

    /// Removes empty group entities from their parents, walking upward.
    fn cascade_dequeue(&mut self, mut g: CgroupId) {
        while self.cgroups[g.0 as usize].rq.is_empty() && self.cgroups[g.0 as usize].queued {
            let parent = self.cgroups[g.0 as usize]
                .parent
                .expect("queued group must have a parent");
            let (vr, seq, ent) = self.group_entity_key(g);
            self.cgroups[parent.0 as usize].rq.remove(vr, seq, ent);
            self.cgroups[g.0 as usize].queued = false;
            g = parent;
        }
    }

    /// Picks and dequeues the next thread: the RT band first (highest
    /// priority, FIFO within a priority), then hierarchical CFS.
    fn pick_thread(&mut self, node_idx: usize) -> Option<ThreadId> {
        if let Some(&key) = self.nodes[node_idx].rt_queue.first() {
            self.nodes[node_idx].rt_queue.remove(&key);
            return Some(key.2);
        }
        let root = self.nodes[node_idx].root;
        let mut cg = root;
        if self.cgroups[cg.0 as usize].rq.is_empty() {
            return None;
        }
        loop {
            let Some((vr, seq, ent)) = self.cgroups[cg.0 as usize].rq.first() else {
                // Descended into a stale, empty group entity (possible when
                // an external mutation — e.g. a hotplug migration — races a
                // cascade). Repair instead of panicking: unlink the empty
                // group from its ancestors and restart from the root.
                debug_assert!(cg != root, "root runqueue emptied mid-descent");
                self.cascade_dequeue(cg);
                cg = root;
                if self.cgroups[cg.0 as usize].rq.is_empty() {
                    return None;
                }
                continue;
            };
            match ent {
                Entity::Group(g) => cg = g,
                Entity::Thread(t) => {
                    let popped = self.cgroups[cg.0 as usize].rq.pop_first();
                    debug_assert_eq!(popped, Some((vr, seq, ent)));
                    self.cascade_dequeue(cg);
                    return Some(t);
                }
            }
        }
    }

    /// `dn · 1024 / weight`, at least 1: the vruntime earned over `dn`
    /// nanoseconds at the given weight. The product fits in a `u64` for any
    /// interval under ~208 days (2⁵⁴ ns), so the hot path stays clear of
    /// 128-bit division.
    #[inline]
    fn weighted_vruntime(dn: u64, weight: u64) -> u64 {
        if dn < (1 << 54) {
            (dn * NICE_0_WEIGHT / weight).max(1)
        } else {
            ((dn as u128 * NICE_0_WEIGHT as u128 / weight as u128).max(1)) as u64
        }
    }

    /// Charges `delta` of CPU time to a running thread and its cgroup path.
    fn charge(&mut self, tid: ThreadId, delta: SimDuration) {
        if delta.is_zero() {
            return;
        }
        let dn = delta.as_nanos();
        let (weight, group, is_rt) = {
            let t = &self.threads[tid.0 as usize];
            (t.nice.weight(), t.cgroup, t.rt_priority.is_some())
        };
        if is_rt {
            // RT threads bypass CFS accounting (but still count cputime).
            let t = &mut self.threads[tid.0 as usize];
            t.remaining = t.remaining.saturating_sub(delta);
            t.cputime += delta;
            t.last_ran = self.now;
            let mut g = Some(group);
            while let Some(cg) = g {
                self.cgroups[cg.0 as usize].cputime += delta;
                g = self.cgroups[cg.0 as usize].parent;
            }
            return;
        }
        let dvr = Kernel::weighted_vruntime(dn, weight);
        {
            let t = &mut self.threads[tid.0 as usize];
            t.vruntime += dvr;
            t.remaining = t.remaining.saturating_sub(delta);
            t.cputime += delta;
            t.last_ran = self.now;
        }
        let running_vr = self.threads[tid.0 as usize].vruntime;
        self.bump_min_vruntime(group, running_vr);

        let mut child = group;
        while let Some(parent) = self.cgroups[child.0 as usize].parent {
            self.cgroups[child.0 as usize].cputime += delta;
            self.account_quota(child, delta);
            let shares = self.cgroups[child.0 as usize].shares;
            let dg = Kernel::weighted_vruntime(dn, shares);
            // If the group entity is queued in the parent (other threads of
            // the group are ready), its key must be refreshed.
            if self.cgroups[child.0 as usize].queued {
                let (vr, seq, ent) = self.group_entity_key(child);
                self.cgroups[parent.0 as usize].rq.remove(vr, seq, ent);
                self.cgroups[child.0 as usize].vruntime += dg;
                let (vr, seq, ent) = self.group_entity_key(child);
                self.cgroups[parent.0 as usize].rq.insert(vr, seq, ent);
            } else {
                self.cgroups[child.0 as usize].vruntime += dg;
            }
            let child_vr = self.cgroups[child.0 as usize].vruntime;
            self.bump_min_vruntime(parent, child_vr);
            child = parent;
        }
        self.cgroups[child.0 as usize].cputime += delta;
    }

    /// Raises a group's monotonic `min_vruntime` floor.
    fn bump_min_vruntime(&mut self, g: CgroupId, running_child_vr: u64) {
        let leftmost = self.cgroups[g.0 as usize].rq.first().map(|(vr, _, _)| vr);
        let cand = leftmost.map_or(running_child_vr, |l| l.min(running_child_vr));
        let g = &mut self.cgroups[g.0 as usize];
        if cand > g.min_vruntime {
            g.min_vruntime = cand;
        }
    }

    /// CFS-style weighted timeslice: a thread's share of the latency
    /// period is proportional to its weight, so prioritized threads run in
    /// long bursts while background threads get the minimum granularity.
    fn slice_for(&self, node_idx: usize, tid: ThreadId) -> SimDuration {
        if self.threads[tid.0 as usize].rt_priority.is_some() {
            // SCHED_FIFO: no timeslice; runs until it blocks or yields.
            return SimDuration::from_secs(3600);
        }
        let nr = self.nodes[node_idx].nr_active.max(1);
        // Hierarchical weight, as in CFS `sched_slice`: the thread's nice
        // weight scaled by each ancestor group's shares. A thread inside a
        // minimum-shares group must get a minimum-granularity slice, not a
        // full nice-weight slice — its group entity's vruntime advances at
        // NICE_0_WEIGHT/shares per ran nanosecond, so an over-long burst
        // banks sim-seconds of vruntime debt and stretches the interval
        // until the group is picked again far beyond the target latency.
        let mut weight = self.threads[tid.0 as usize].nice.weight();
        let mut g = Some(self.threads[tid.0 as usize].cgroup);
        while let Some(cg) = g {
            let data = &self.cgroups[cg.0 as usize];
            if data.parent.is_some() {
                weight = (weight * data.shares / NICE_0_WEIGHT).max(1);
            }
            g = data.parent;
        }
        let base = self.config.sched_latency.as_nanos();
        let slice = match base.checked_mul(weight) {
            Some(p) => p / (NICE_0_WEIGHT * nr),
            None => (base as u128 * weight as u128 / (NICE_0_WEIGHT as u128 * nr as u128))
                .min(u64::MAX as u128) as u64,
        };
        SimDuration::from_nanos(slice)
            .max(self.config.min_granularity)
            .min(self.config.sched_latency)
    }

    /// Invokes a thread's body, applying buffered wakes afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a body performs an unbounded number of zero-time actions at
    /// one instant (a livelock that would hang the simulation).
    fn invoke_body(&mut self, tid: ThreadId) -> Action {
        let guard = &mut self.invoke_guard[tid.0 as usize];
        if guard.0 == self.now {
            guard.1 += 1;
            assert!(
                guard.1 < 1_000_000,
                "thread {} live-locked: >1e6 zero-time actions at {}",
                tid,
                self.now
            );
        } else {
            *guard = (self.now, 0);
        }
        let mut body = self.threads[tid.0 as usize]
            .body
            .take()
            .expect("invoke_body: body missing");
        let mut ctx = SimCtx::from_buffers(
            self.now,
            std::mem::take(&mut self.ctx_wakes),
            std::mem::take(&mut self.ctx_deferred),
        );
        let action = body.next_action(&mut ctx);
        self.threads[tid.0 as usize].body = Some(body);
        let (mut wakes, mut deferred) = ctx.into_effects();
        for w in wakes.drain(..) {
            self.wake(w);
        }
        for (delay, f) in deferred.drain(..) {
            self.push_defer(delay, f);
        }
        // Bodies do not nest, so nothing refilled the scratch slots while
        // the effects were applied; hand the buffers back for reuse.
        self.ctx_wakes = wakes;
        self.ctx_deferred = deferred;
        action
    }

    /// Schedules a one-shot closure (like [`schedule_in`](Kernel::schedule_in)
    /// but for `FnOnce`).
    pub fn schedule_once(&mut self, delay: SimDuration, f: impl FnOnce(&mut Kernel) + 'static) {
        self.schedule_internal(delay, None, CallbackFn::Once(Box::new(f)));
    }

    /// Returns a fired (or cancelled) callback slot to the free pool. The
    /// generation bump turns any id still held for it into a dead handle.
    fn recycle_callback(&mut self, slot: usize) {
        let e = &mut self.callbacks[slot];
        e.gen = e.gen.wrapping_add(1);
        e.f = None;
        e.period = None;
        e.cancelled = false;
        self.free_callbacks.push(slot);
    }

    /// Adds a node to the dispatch worklist unless it is already on it.
    fn mark_dirty(&mut self, node_idx: usize) {
        if !self.nodes[node_idx].dirty {
            self.nodes[node_idx].dirty = true;
            self.dispatch_worklist.push_back(node_idx);
        }
    }

    /// Accumulates busy/idle/PSI time for one node over the interval since
    /// its last accounting. Must be called *before* any mutation of CPU
    /// occupancy or runqueue emptiness; calling it again within the same
    /// instant is a no-op.
    fn account_node(&mut self, node_idx: usize) {
        let delta = self.now - self.nodes[node_idx].last_accounted;
        self.nodes[node_idx].last_accounted = self.now;
        if delta.is_zero() {
            return;
        }
        let root = self.nodes[node_idx].root;
        let stalled = !self.cgroups[root.0 as usize].rq.is_empty()
            || !self.nodes[node_idx].rt_queue.is_empty();
        let n = &mut self.nodes[node_idx];
        let busy_cpus = n.occupied;
        // Offline CPUs are neither busy nor idle: capacity shrinks.
        let online = n.cpus.iter().filter(|c| c.online).count() as u64;
        let idle_cpus = online.saturating_sub(busy_cpus);
        n.busy += delta * busy_cpus;
        n.idle += delta * idle_cpus;
        // PSI "cpu some": runnable-but-waiting threads exist.
        if stalled {
            n.stalled += delta;
        }
        // Time-weighted runqueue depth: threads ready but not on a CPU.
        let waiting = n.nr_active.saturating_sub(busy_cpus);
        if waiting > 0 {
            n.rq_wait += delta * waiting;
        }
    }

    /// Charges the thread on `(node, cpu)` for the interval since the CPU
    /// was last charged. Reentrancy-safe: `last_charged` advances *before*
    /// the charge, so a throttle triggered by it sees a zero delta.
    fn charge_cpu(&mut self, node_idx: usize, cpu_idx: usize) {
        let Some(tid) = self.nodes[node_idx].cpus[cpu_idx].current else {
            return;
        };
        let delta = self.now - self.nodes[node_idx].cpus[cpu_idx].last_charged;
        self.nodes[node_idx].cpus[cpu_idx].last_charged = self.now;
        if delta.is_zero() {
            return;
        }
        self.nodes[node_idx].cpus[cpu_idx].busy += delta;
        self.charge(tid, delta);
    }

    /// Brings every CPU charge and node account up to `now` so observers
    /// (user callbacks, stats readers) see the same state the old eager
    /// loop maintained continuously.
    fn sync_accounting(&mut self) {
        if self.synced_at == self.now {
            return; // charges and accounts since then are all zero-delta
        }
        self.synced_at = self.now;
        for node_idx in 0..self.nodes.len() {
            for cpu_idx in 0..self.nodes[node_idx].cpus.len() {
                self.charge_cpu(node_idx, cpu_idx);
            }
            self.account_node(node_idx);
        }
    }

    /// Preempts the thread running on `(node, cpu)`: charges it up to now,
    /// re-queues it and releases the CPU.
    fn preempt_running(&mut self, node_idx: usize, cpu_idx: usize) {
        self.charge_cpu(node_idx, cpu_idx);
        // The charge may throttle the thread's group, which preempts this
        // very CPU underneath us; re-check before queueing.
        if let Some(cur) = self.nodes[node_idx].cpus[cpu_idx].current {
            self.emit(|| TraceEvent::Preempt {
                node: node_idx as u64,
                cpu: cpu_idx,
                tid: cur,
            });
            self.enqueue_thread(cur, false);
            self.free_cpu(node_idx, cpu_idx);
        }
    }

    /// Arms (or re-arms) the calendar entry for an occupied CPU: the next
    /// event is the earlier of slice expiry and work completion. Bumping
    /// the generation invalidates any previously armed entry.
    ///
    /// The CPU must be charged up to `now` (its `remaining` is read as of
    /// now).
    fn rearm_cpu(&mut self, node_idx: usize, cpu_idx: usize) {
        let Some(tid) = self.nodes[node_idx].cpus[cpu_idx].current else {
            return;
        };
        debug_assert_eq!(self.nodes[node_idx].cpus[cpu_idx].last_charged, self.now);
        let due = self.nodes[node_idx].cpus[cpu_idx]
            .slice_end
            .min(self.now + self.threads[tid.0 as usize].remaining);
        let cpu = &mut self.nodes[node_idx].cpus[cpu_idx];
        cpu.gen += 1;
        let old_due = cpu.due;
        cpu.due = due;
        if due <= self.node_min_due[node_idx] {
            self.node_min_due[node_idx] = due;
        } else if old_due == self.node_min_due[node_idx] {
            // Raised the minimum holder: rescan for the new minimum.
            self.refresh_min_due(node_idx);
        }
    }

    /// Recomputes a node's cached minimum `due`; called after any mutation
    /// that may have raised the previous minimum.
    fn refresh_min_due(&mut self, node_idx: usize) {
        let mut min = SimTime::MAX;
        for c in &self.nodes[node_idx].cpus {
            if c.due < min {
                min = c.due;
            }
        }
        self.node_min_due[node_idx] = min;
    }

    /// Releases a CPU; the thread keeps whatever state the caller set.
    fn free_cpu(&mut self, node_idx: usize, cpu_idx: usize) {
        self.charge_cpu(node_idx, cpu_idx); // safety net; normally a no-op
        self.account_node(node_idx);
        let (freed, old_due) = {
            let cpu = &mut self.nodes[node_idx].cpus[cpu_idx];
            let was_occupied = cpu.current.is_some();
            cpu.last_thread = cpu.current.take();
            cpu.slice_end = SimTime::MAX;
            cpu.gen += 1; // invalidates the collected due batch, if any
            let old_due = cpu.due;
            cpu.due = SimTime::MAX;
            (was_occupied, old_due)
        };
        // Raising a CPU's `due` only moves the node minimum if this CPU
        // held it; otherwise the cached minimum (some other CPU) stands.
        if old_due == self.node_min_due[node_idx] {
            self.refresh_min_due(node_idx);
        }
        if freed {
            self.nodes[node_idx].occupied -= 1;
        }
        // A freed CPU only creates dispatchable work if something is
        // already queued; everything that *makes* a thread runnable
        // (enqueue, unthrottle, hotplug) marks the node dirty itself, so
        // an empty-runqueue release can skip the worklist round-trip.
        let root = self.nodes[node_idx].root;
        if !self.cgroups[root.0 as usize].rq.is_empty()
            || !self.nodes[node_idx].rt_queue.is_empty()
        {
            self.mark_dirty(node_idx);
        }
    }

    /// Applies a body action for a thread currently holding a CPU.
    /// Returns `true` if the thread keeps the CPU.
    fn apply_action(&mut self, node_idx: usize, cpu_idx: usize, tid: ThreadId, action: Action) -> bool {
        debug_assert!(
            matches!(self.threads[tid.0 as usize].state, ThreadState::Running(_)),
            "apply_action on non-running {} in state {:?}",
            self.threads[tid.0 as usize].name,
            self.threads[tid.0 as usize].state
        );
        match action {
            Action::Compute(cost) => {
                let cost = cost.max(SimDuration::from_nanos(1));
                self.threads[tid.0 as usize].remaining = cost;
                true
            }
            Action::Block(w) => {
                self.emit(|| TraceEvent::Block {
                    node: node_idx as u64,
                    cpu: cpu_idx,
                    tid,
                    channel: Some(w),
                });
                self.threads[tid.0 as usize].state = ThreadState::Blocked(w);
                let ch = w.0 as usize;
                if ch >= self.waiters.len() {
                    // Channel id minted by `WaitId::from_u64` rather than
                    // `new_wait_channel` (test fixtures do this).
                    self.waiters.resize_with(ch + 1, Vec::new);
                }
                self.waiters[ch].push(tid);
                self.nodes[node_idx].nr_active -= 1;
                self.free_cpu(node_idx, cpu_idx);
                false
            }
            Action::Sleep(dur) => {
                self.emit(|| TraceEvent::Block {
                    node: node_idx as u64,
                    cpu: cpu_idx,
                    tid,
                    channel: None,
                });
                let dur = dur.max(SimDuration::from_nanos(1));
                self.threads[tid.0 as usize].state = ThreadState::Sleeping;
                self.calendar
                    .insert(self.now + dur, TimerKind::Wake(tid));
                self.nodes[node_idx].nr_active -= 1;
                self.free_cpu(node_idx, cpu_idx);
                false
            }
            Action::Yield => {
                self.enqueue_thread(tid, false);
                self.free_cpu(node_idx, cpu_idx);
                false
            }
            Action::Exit => {
                self.emit(|| TraceEvent::Exit {
                    node: node_idx as u64,
                    cpu: cpu_idx,
                    tid,
                });
                self.threads[tid.0 as usize].state = ThreadState::Exited;
                self.threads[tid.0 as usize].body = None;
                self.nodes[node_idx].nr_active -= 1;
                self.free_cpu(node_idx, cpu_idx);
                false
            }
        }
    }

    /// Fills idle CPUs of one node from its runqueues.
    fn dispatch_node(&mut self, node_idx: usize) {
        // Dispatching changes occupancy and drains runqueues: settle the
        // accounting interval that ends here first.
        self.account_node(node_idx);
        'cpus: loop {
            let Some(cpu_idx) = self.nodes[node_idx]
                .cpus
                .iter()
                .position(|c| c.online && c.current.is_none())
            else {
                return;
            };
            let Some(tid) = self.pick_thread(node_idx) else {
                return;
            };
            if !self.place_thread(node_idx, cpu_idx, tid) {
                continue 'cpus;
            }
        }
    }

    /// Puts a dequeued (or fast-woken) thread on an idle CPU: context-switch
    /// accounting, body invocation until it has pending work, slice arming.
    /// Returns `false` if the body immediately blocked/yielded/exited — the
    /// CPU was released by `apply_action` and stays free.
    fn place_thread(&mut self, node_idx: usize, cpu_idx: usize, tid: ThreadId) -> bool {
        let prev = self.nodes[node_idx].cpus[cpu_idx].last_thread;
        let switch = prev != Some(tid);
        {
            let t = &mut self.threads[tid.0 as usize];
            t.state = ThreadState::Running(CpuId(cpu_idx));
            t.dispatches += 1;
        }
        if switch && !self.config.ctx_switch_cost.is_zero() {
            let cost = self.config.ctx_switch_cost;
            self.threads[tid.0 as usize].remaining += cost;
            self.nodes[node_idx].ctx_switches += 1;
            self.nodes[node_idx].overhead += cost;
        }
        // Make sure the thread has pending work; run its body if not. The
        // CPU is reserved but not yet occupied while the body runs, so a
        // re-entrant fast-path wake (triggered by this body's own pushes)
        // must be told not to place another thread on it. The reservation
        // stays live across nested placements (a wake chain inside the
        // body recurses into place_thread), hence a stack, not a slot.
        self.reserving.push((node_idx, cpu_idx));
        while self.threads[tid.0 as usize].remaining.is_zero() {
            let action = self.invoke_body(tid);
            if !self.apply_action(node_idx, cpu_idx, tid, action) {
                self.reserving.pop();
                return false;
            }
        }
        self.reserving.pop();
        let slice = self.slice_for(node_idx, tid);
        let now = self.now;
        let cpu = &mut self.nodes[node_idx].cpus[cpu_idx];
        cpu.current = Some(tid);
        cpu.last_thread = Some(tid);
        cpu.slice_end = now + slice;
        cpu.last_charged = now;
        self.nodes[node_idx].occupied += 1;
        self.emit(|| TraceEvent::Switch {
            node: node_idx as u64,
            cpu: cpu_idx,
            prev,
            next: tid,
            fresh: switch,
        });
        self.rearm_cpu(node_idx, cpu_idx);
        true
    }

    /// Wake-to-idle-CPU fast path. When a woken CFS thread's node has an
    /// idle online CPU and nothing else runnable, the dispatch outcome is
    /// forced: the regular path would enqueue the thread, mark the node
    /// dirty and — on the worklist pass — pop that same thread straight
    /// back off the runqueue onto that same CPU. This path performs the
    /// identical state transitions (accounting order, vruntime floor,
    /// trace events, context-switch cost) while skipping the runqueue
    /// insert/remove round-trip and the worklist pass. Returns `true` if
    /// the thread was placed; `false` means the caller must take the
    /// regular enqueue path.
    ///
    /// The only scalar the fast path does not replicate is the runqueue
    /// tie-break sequence number the regular path would have allocated;
    /// skipping an allocation preserves the relative order of all others,
    /// so schedules stay deterministic.
    fn try_fast_wake(&mut self, tid: ThreadId) -> bool {
        if self.fast_wake_depth >= 64 {
            return false; // bound same-instant wake-chain recursion
        }
        if self.quota_in_use || self.threads[tid.0 as usize].rt_priority.is_some() {
            return false;
        }
        let node_idx = self.threads[tid.0 as usize].node.0 as usize;
        let root = self.nodes[node_idx].root;
        // Child-cgroup placement cascades group entities; keep that on the
        // regular path (Lachesis-managed queries; the floor per level and
        // descent order are not worth replicating here).
        if self.threads[tid.0 as usize].cgroup != root {
            return false;
        }
        if !self.nodes[node_idx].rt_queue.is_empty()
            || !self.cgroups[root.0 as usize].rq.is_empty()
        {
            return false;
        }
        // Skip every CPU reserved by any in-flight place_thread frame, not
        // just the innermost: a depth-2 same-instant wake chain still has
        // the outer frame's reservation live on the stack.
        let reserved = &self.reserving;
        let cpus = &self.nodes[node_idx].cpus;
        let Some(cpu_idx) = (0..cpus.len()).find(|&i| {
            let c = &cpus[i];
            c.online && c.current.is_none() && !reserved.contains(&(node_idx, i))
        }) else {
            return false;
        };
        // Commit. Order matches wake() + enqueue_thread(wakeup=true) +
        // dispatch_node: nr_active first, then the account boundary, then
        // the Wake trace and the sleeper-credit vruntime floor.
        self.fast_wake_depth += 1;
        self.nodes[node_idx].nr_active += 1;
        self.account_node(node_idx);
        self.emit(|| TraceEvent::Wake { tid });
        let floor = self.cgroups[root.0 as usize]
            .min_vruntime
            .saturating_sub(self.config.wakeup_bonus.as_nanos());
        let t = &mut self.threads[tid.0 as usize];
        if t.vruntime < floor {
            t.vruntime = floor;
        }
        self.place_thread(node_idx, cpu_idx, tid);
        self.fast_wake_depth -= 1;
        true
    }

    /// Handles a running thread whose compute finished or slice expired.
    fn settle_cpu(&mut self, node_idx: usize, cpu_idx: usize) {
        let Some(tid) = self.nodes[node_idx].cpus[cpu_idx].current else {
            return;
        };
        // Completion: keep invoking the body while it keeps computing.
        debug_assert!(self.settling.is_none(), "settle_cpu re-entered");
        self.settling = Some(tid);
        while self.threads[tid.0 as usize].remaining.is_zero() {
            let action = self.invoke_body(tid);
            if !self.apply_action(node_idx, cpu_idx, tid, action) {
                self.settling = None;
                return;
            }
        }
        self.settling = None;
        // Slice expiry: preempt only if someone else is waiting.
        if self.nodes[node_idx].cpus[cpu_idx].slice_end <= self.now {
            let root = self.nodes[node_idx].root;
            if !self.cgroups[root.0 as usize].rq.is_empty() {
                self.emit(|| TraceEvent::SliceExpire {
                    node: node_idx as u64,
                    cpu: cpu_idx,
                    tid,
                });
                self.enqueue_thread(tid, false);
                self.free_cpu(node_idx, cpu_idx);
            } else {
                let slice = self.slice_for(node_idx, tid);
                self.nodes[node_idx].cpus[cpu_idx].slice_end = self.now + slice;
            }
        }
    }

    fn fire_timer(&mut self, kind: TimerKind) {
        match kind {
            TimerKind::Wake(tid) => {
                if self.threads[tid.0 as usize].state == ThreadState::Sleeping
                    && !self.try_fast_wake(tid)
                {
                    let node = self.threads[tid.0 as usize].node;
                    self.nodes[node.0 as usize].nr_active += 1;
                    self.enqueue_thread(tid, true);
                    self.maybe_preempt(tid);
                }
            }
            TimerKind::Unthrottle(cg) => {
                if self.cgroups[cg.0 as usize].throttled {
                    self.unthrottle(cg);
                }
            }
            TimerKind::Callback(id) | TimerKind::Defer(id) => {
                let (slot, gen) = callback_slot(id);
                let entry = &mut self.callbacks[slot];
                if entry.gen != gen {
                    return; // the slot was recycled out from under this event
                }
                if entry.cancelled {
                    // A callback has at most one pending calendar event (the
                    // next one is inserted only after a fire), and it just
                    // popped: the slot can be reused immediately.
                    self.recycle_callback(slot);
                    return;
                }
                let Some(f) = entry.f.take() else {
                    return;
                };
                // User code observes kernel state: bring lazily charged CPU
                // time and node accounting up to the present first. Deferred
                // internal effects (network deliveries) only move tuples and
                // wake threads, so they skip that sweep — it would otherwise
                // run once per in-flight remote tuple.
                if matches!(kind, TimerKind::Callback(_)) {
                    self.sync_accounting();
                }
                match f {
                    CallbackFn::Once(f) => {
                        f(self);
                        self.recycle_callback(slot);
                    }
                    CallbackFn::Recurring(mut f) => {
                        f(self);
                        let entry = &mut self.callbacks[slot];
                        if entry.cancelled {
                            self.recycle_callback(slot);
                            return;
                        }
                        match entry.period {
                            Some(period) => {
                                entry.f = Some(CallbackFn::Recurring(f));
                                self.calendar.insert(
                                    self.now + period,
                                    TimerKind::Callback(id),
                                );
                            }
                            None => self.recycle_callback(slot),
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs the simulation for `dur` of simulated time.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.now + dur;
        self.run_until(deadline);
    }

    /// Runs the simulation until `deadline`, processing every event with a
    /// timestamp `<= deadline`. On return, `now() == deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is in the past.
    pub fn run_until(&mut self, deadline: SimTime) {
        assert!(deadline >= self.now, "run_until: deadline in the past");
        // Arbitrary external mutations (spawns, cgroup edits) may have
        // happened while paused: give every node one dispatch pass.
        for node_idx in 0..self.nodes.len() {
            self.mark_dirty(node_idx);
        }
        loop {
            self.loop_iters += 1;
            while let Some(node_idx) = self.dispatch_worklist.pop_front() {
                self.nodes[node_idx].dirty = false;
                self.dispatch_node(node_idx);
            }
            let Some(t) = self.next_event_time() else {
                break; // idle forever: jump straight to the deadline
            };
            if t > deadline {
                break;
            }
            debug_assert!(t >= self.now);
            self.now = t;
            self.process_events_at_now();
        }
        self.now = deadline;
        self.sync_accounting();
    }

    /// The instant of the earliest pending event: the minimum over the
    /// timer calendar, the defer FIFO's head, and every armed CPU's `due`.
    fn next_event_time(&mut self) -> Option<SimTime> {
        let mut next = match self.calendar.peek() {
            Some((at, _)) => at,
            None => SimTime::MAX,
        };
        if let Some(&(at, _, _)) = self.defer_fifo.front() {
            next = next.min(at);
        }
        for &d in &self.node_min_due {
            next = next.min(d);
        }
        (next != SimTime::MAX).then_some(next)
    }

    /// Processes one batch of events due at the current instant, mirroring
    /// the old eager loop's order within an instant: charge every due CPU,
    /// settle them (completion / slice expiry), then fire timers. Timers
    /// that schedule work at this same instant (zero-delay callbacks) are
    /// handled before returning.
    fn process_events_at_now(&mut self) {
        loop {
            debug_assert!(self.due_cpus.is_empty() && self.due_timers.is_empty());
            while let Some((at, _)) = self.calendar.peek() {
                if at > self.now {
                    break;
                }
                let (_, id, kind) = self.calendar.pop().expect("peeked event");
                self.due_timers.push((id.seq(), DueTimer::Kind(kind)));
            }
            while self.defer_fifo.front().is_some_and(|&(at, _, _)| at <= self.now) {
                let (_, seq, f) = self.defer_fifo.pop_front().expect("peeked defer");
                self.due_timers.push((seq, DueTimer::Defer(f)));
            }
            // Collect due CPUs by scanning — index order, matching the old
            // eager loop's visit order, so same-instant interactions (quota
            // throttles, preemptions during settles) resolve identically.
            // The cached per-node minimum skips nodes with nothing due.
            for node in 0..self.nodes.len() {
                if self.node_min_due[node] > self.now {
                    continue;
                }
                for cpu in 0..self.nodes[node].cpus.len() {
                    let c = &self.nodes[node].cpus[cpu];
                    if c.due <= self.now {
                        self.due_cpus.push((node, cpu, c.gen));
                    }
                }
            }
            if self.due_cpus.is_empty() && self.due_timers.is_empty() {
                return;
            }
            let mut due_cpus = std::mem::take(&mut self.due_cpus);
            // Phase 1: charge every due CPU before settling any, so settle
            // side-effects (wakes, preemptions) observe fully charged
            // state. A charge can throttle a group and free other due
            // CPUs; their bumped generation skips them below.
            for &(node, cpu, gen) in &due_cpus {
                if self.nodes[node].cpus[cpu].gen == gen {
                    self.charge_cpu(node, cpu);
                }
            }
            // Phase 2: settle still-valid CPUs and re-arm the survivors.
            for &(node, cpu, gen) in &due_cpus {
                if self.nodes[node].cpus[cpu].gen != gen {
                    continue; // freed by an earlier settle or a throttle
                }
                self.settle_cpu(node, cpu);
                self.rearm_cpu(node, cpu);
            }
            due_cpus.clear();
            self.due_cpus = due_cpus;
            // Phase 3: timers, in calendar (sequence) order. Calendar pops
            // and FIFO drains are each already seq-sorted; the sort merges
            // the two short runs.
            let mut due_timers = std::mem::take(&mut self.due_timers);
            due_timers.sort_unstable_by_key(|e| e.0);
            for (_, t) in due_timers.drain(..) {
                match t {
                    DueTimer::Kind(kind) => self.fire_timer(kind),
                    DueTimer::Defer(DeferOp::Boxed(f)) => f(self),
                    DueTimer::Defer(DeferOp::Call(id)) => self.run_defer_call(id),
                }
            }
            self.due_timers = due_timers;
        }
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Number of main-loop iterations executed so far, cumulative over
    /// every `run_*` call. An idle kernel costs exactly one iteration per
    /// run; each additional iteration corresponds to one processed event
    /// batch. Useful for regression-testing the event-driven loop.
    pub fn loop_iterations(&self) -> u64 {
        self.loop_iters
    }

    /// A human-readable snapshot of scheduler state: per-node CPU
    /// occupancy, runqueue depths and contents, and pending event count.
    /// Intended for debugging and tests; the format is not stable.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel @ {} — {} pending events, {} loop iterations",
            self.now,
            self.calendar.len() + self.defer_fifo.len(),
            self.loop_iters
        );
        for (ni, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "node {:?} ({} cpus, {} occupied, {} active, rt queue {})",
                n.name,
                n.cpus.len(),
                n.occupied,
                n.nr_active,
                n.rt_queue.len()
            );
            for (i, cpu) in n.cpus.iter().enumerate() {
                match cpu.current {
                    Some(tid) => {
                        let t = &self.threads[tid.0 as usize];
                        let _ = writeln!(
                            out,
                            "  cpu{i}: {} ({:?}) slice_end={} gen={} vr={}",
                            t.name, tid, cpu.slice_end, cpu.gen, t.vruntime
                        );
                    }
                    None if !cpu.online => {
                        let _ = writeln!(out, "  cpu{i}: offline gen={}", cpu.gen);
                    }
                    None => {
                        let _ = writeln!(out, "  cpu{i}: idle gen={}", cpu.gen);
                    }
                }
            }
            for (gi, g) in self.cgroups.iter().enumerate() {
                if g.node != NodeId(ni as u64) {
                    continue;
                }
                if g.rq.is_empty() && g.parent.is_some() && !g.queued {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  rq {:?} (cg{gi}): {} ready, queued={} vr={} min_vr={}",
                    g.name,
                    g.rq.len(),
                    g.queued,
                    g.vruntime,
                    g.min_vruntime
                );
                for &(vr, seq, ent) in g.rq.iter() {
                    let _ = writeln!(out, "    vr={vr} seq={seq} {ent:?}");
                }
            }
        }
        out
    }

    /// Cross-checks the runqueue tree against thread and cgroup state and
    /// returns a description of the first inconsistency found, if any.
    ///
    /// The invariants checked are the ones dispatch correctness rests on:
    /// a group's `queued` flag matches its presence in the parent runqueue,
    /// every Ready CFS thread sits in its cgroup's runqueue under its
    /// current key, and every queued entity's stored key matches the
    /// entity's live vruntime (a stale key makes later removals corrupt the
    /// queue silently). Intended for tests — property tests call this after
    /// every mutation step — and for debugging; it never mutates state.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn debug_check_runqueues(&self) -> Result<(), String> {
        for (gi, g) in self.cgroups.iter().enumerate() {
            let gid = CgroupId(gi as u64);
            // queued flag vs. actual membership in the parent runqueue.
            if let Some(parent) = g.parent {
                let present = self.cgroups[parent.0 as usize]
                    .rq
                    .iter()
                    .filter(|&&(_, _, ent)| ent == Entity::Group(gid))
                    .count();
                if present > 1 {
                    return Err(format!(
                        "group {:?} appears {present} times in parent {:?} rq",
                        g.name, parent
                    ));
                }
                if g.queued != (present == 1) {
                    return Err(format!(
                        "group {:?} queued={} but parent rq holds {present} entries",
                        g.name, g.queued
                    ));
                }
                if g.queued {
                    let (vr, seq, ent) = self.group_entity_key(gid);
                    let exact = self.cgroups[parent.0 as usize]
                        .rq
                        .iter()
                        .any(|&k| k == (vr, seq, ent));
                    if !exact {
                        return Err(format!(
                            "group {:?} queued under a stale key (live vr={vr} seq={seq})",
                            g.name
                        ));
                    }
                }
            }
            // Every entity in this group's runqueue is consistent.
            for &(vr, _seq, ent) in g.rq.iter() {
                match ent {
                    Entity::Thread(t) => {
                        let th = &self.threads[t.0 as usize];
                        if th.state != ThreadState::Ready {
                            return Err(format!(
                                "thread {} in rq of {:?} but state is {:?}",
                                th.name, g.name, th.state
                            ));
                        }
                        if th.cgroup != gid {
                            return Err(format!(
                                "thread {} in rq of {:?} but belongs to cgroup {:?}",
                                th.name, g.name, th.cgroup
                            ));
                        }
                        if th.vruntime != vr {
                            return Err(format!(
                                "thread {} queued under stale vr={vr}, live vr={}",
                                th.name, th.vruntime
                            ));
                        }
                    }
                    Entity::Group(child) => {
                        if self.cgroups[child.0 as usize].parent != Some(gid) {
                            return Err(format!(
                                "group entity {:?} in rq of non-parent {:?}",
                                child, g.name
                            ));
                        }
                    }
                }
            }
        }
        // Every Ready CFS thread is reachable: present in its cgroup's rq
        // and its ancestor chain is queued up to the root (unless a
        // throttled ancestor legitimately detaches the subtree).
        for (ti, th) in self.threads.iter().enumerate() {
            let tid = ThreadId(ti as u64);
            if th.state != ThreadState::Ready || th.rt_priority.is_some() {
                continue;
            }
            let g = th.cgroup;
            let here = self.cgroups[g.0 as usize]
                .rq
                .iter()
                .any(|&(_, _, ent)| ent == Entity::Thread(tid));
            if !here {
                return Err(format!(
                    "ready thread {} missing from rq of its cgroup {:?}",
                    th.name, self.cgroups[g.0 as usize].name
                ));
            }
            let mut cg = g;
            while let Some(parent) = self.cgroups[cg.0 as usize].parent {
                if self.cgroups[cg.0 as usize].throttled {
                    break;
                }
                if !self.cgroups[cg.0 as usize].queued {
                    return Err(format!(
                        "ready thread {} unreachable: ancestor {:?} not queued in {:?}",
                        th.name, self.cgroups[cg.0 as usize].name, self.cgroups[parent.0 as usize].name
                    ));
                }
                cg = parent;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::FixedWork;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn cpu_hog() -> FixedWork {
        FixedWork::endless(SimDuration::from_micros(100))
    }

    fn zero_switch_config() -> KernelConfig {
        KernelConfig {
            ctx_switch_cost: SimDuration::ZERO,
            ..KernelConfig::default()
        }
    }

    #[test]
    fn single_thread_gets_all_cpu() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 1);
        let t = k.spawn(n, "hog", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(1));
        let info = k.thread_info(t).unwrap();
        assert_eq!(info.cputime, SimDuration::from_secs(1));
        assert_eq!(k.now(), SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn two_equal_threads_share_fairly() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 1);
        let a = k.spawn(n, "a", cpu_hog()).build();
        let b = k.spawn(n, "b", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(2));
        let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
        let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
        assert!((ca - cb).abs() < 0.02, "ca={ca} cb={cb}");
        assert!((ca + cb - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nice_controls_share_ratio() {
        // nice -5 vs 0 => weight 3121 vs 1024 => ratio ~3.05.
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 1);
        let fast = k
            .spawn(n, "fast", cpu_hog())
            .nice(Nice::new(-5).unwrap())
            .build();
        let slow = k.spawn(n, "slow", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(5));
        let cf = k.thread_info(fast).unwrap().cputime.as_secs_f64();
        let cs = k.thread_info(slow).unwrap().cputime.as_secs_f64();
        let ratio = cf / cs;
        let expect = 3121.0 / 1024.0;
        assert!(
            (ratio - expect).abs() / expect < 0.05,
            "ratio {ratio} expect {expect}"
        );
    }

    #[test]
    fn cgroup_shares_divide_cpu() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 1);
        let root = k.node_root(n).unwrap();
        let g1 = k.create_cgroup(root, "g1", 2048).unwrap();
        let g2 = k.create_cgroup(root, "g2", 1024).unwrap();
        // Two threads in g1, one in g2: groups should split 2:1 regardless
        // of the thread count inside.
        let a = k.spawn(n, "a", cpu_hog()).cgroup(g1).build();
        let b = k.spawn(n, "b", cpu_hog()).cgroup(g1).build();
        let c = k.spawn(n, "c", cpu_hog()).cgroup(g2).build();
        k.run_for(SimDuration::from_secs(6));
        let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
        let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
        let cc = k.thread_info(c).unwrap().cputime.as_secs_f64();
        assert!((ca + cb) / cc > 1.8 && (ca + cb) / cc < 2.2, "g1={} g2={cc}", ca + cb);
        assert!((ca - cb).abs() < 0.1, "intra-group fairness: {ca} vs {cb}");
    }

    #[test]
    fn multicore_runs_threads_in_parallel() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 2);
        let a = k.spawn(n, "a", cpu_hog()).build();
        let b = k.spawn(n, "b", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(1));
        assert_eq!(k.thread_info(a).unwrap().cputime, SimDuration::from_secs(1));
        assert_eq!(k.thread_info(b).unwrap().cputime, SimDuration::from_secs(1));
    }

    #[test]
    fn sleep_wakes_after_duration() {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        let log: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        let log2 = Rc::clone(&log);
        let mut first = true;
        k.spawn(n, "sleeper", move |ctx: &mut SimCtx| {
            log2.borrow_mut().push(ctx.now());
            if first {
                first = false;
                Action::Sleep(SimDuration::from_millis(10))
            } else {
                Action::Exit
            }
        })
        .build();
        k.run_for(SimDuration::from_millis(20));
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        // First invocation happens after the context-switch cost; waking
        // back onto the same (idle) CPU pays no switch cost.
        let ctx = k.config().ctx_switch_cost;
        assert_eq!(log[0], SimTime::ZERO + ctx);
        assert_eq!(log[1], log[0] + SimDuration::from_millis(10));
    }

    #[test]
    fn block_and_wake_via_channel() {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        let ch = k.new_wait_channel();
        let done: Rc<RefCell<bool>> = Rc::default();
        let done2 = Rc::clone(&done);
        let mut blocked_once = false;
        k.spawn(n, "consumer", move |_: &mut SimCtx| {
            if !blocked_once {
                blocked_once = true;
                Action::Block(ch)
            } else {
                *done2.borrow_mut() = true;
                Action::Exit
            }
        })
        .build();
        // Producer wakes the channel after 5ms via a callback.
        k.schedule_in(SimDuration::from_millis(5), move |kk| kk.wake(ch));
        k.run_for(SimDuration::from_millis(10));
        assert!(*done.borrow());
    }

    #[test]
    fn wake_before_block_is_not_lost_if_state_checked() {
        // A wake on a channel nobody blocks on is a no-op; the consumer must
        // check its queue before blocking (documented contract).
        let mut k = Kernel::default();
        let ch = {
            let n = k.add_node("n", 1);
            let ch = k.new_wait_channel();
            k.spawn(n, "c", move |_: &mut SimCtx| Action::Block(ch)).build();
            ch
        };
        k.wake(ch); // nobody blocked yet: dropped
        k.run_for(SimDuration::from_millis(5));
        // Thread is now blocked forever; wake it to prove it blocked.
        k.wake(ch);
        k.run_for(SimDuration::from_millis(5));
    }

    #[test]
    fn periodic_callbacks_fire_until_cancelled() {
        let mut k = Kernel::default();
        let count: Rc<RefCell<u32>> = Rc::default();
        let c2 = Rc::clone(&count);
        let id = k.schedule_periodic(SimDuration::from_millis(1), SimDuration::from_millis(1), move |_| {
            *c2.borrow_mut() += 1;
        });
        k.run_for(SimDuration::from_millis(5));
        assert_eq!(*count.borrow(), 5);
        k.cancel_callback(id);
        k.run_for(SimDuration::from_millis(5));
        assert_eq!(*count.borrow(), 5);
    }

    #[test]
    fn context_switches_are_counted_and_charged() {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        k.spawn(n, "a", cpu_hog()).build();
        k.spawn(n, "b", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(1));
        let stats = k.node_stats(n).unwrap();
        assert!(stats.ctx_switches > 10, "switches: {}", stats.ctx_switches);
        assert!(!stats.overhead.is_zero());
        assert_eq!(stats.busy, SimDuration::from_secs(1));
    }

    #[test]
    fn exited_threads_free_the_cpu() {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        let t = k
            .spawn(n, "short", FixedWork::new(SimDuration::from_millis(1), 1))
            .build();
        let hog = k.spawn(n, "hog", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(1));
        assert_eq!(k.thread_info(t).unwrap().state, ThreadState::Exited);
        let hog_time = k.thread_info(hog).unwrap().cputime.as_secs_f64();
        assert!(hog_time > 0.99, "hog got {hog_time}");
    }

    #[test]
    fn set_nice_rebalances_future_time() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 1);
        let a = k.spawn(n, "a", cpu_hog()).build();
        let b = k.spawn(n, "b", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(1));
        k.set_nice(a, Nice::new(-10).unwrap()).unwrap();
        let before_a = k.thread_info(a).unwrap().cputime;
        let before_b = k.thread_info(b).unwrap().cputime;
        k.run_for(SimDuration::from_secs(5));
        let da = (k.thread_info(a).unwrap().cputime - before_a).as_secs_f64();
        let db = (k.thread_info(b).unwrap().cputime - before_b).as_secs_f64();
        let expect = 9548.0 / 1024.0;
        let ratio = da / db;
        assert!(
            (ratio - expect).abs() / expect < 0.08,
            "ratio {ratio} expect {expect}"
        );
    }

    #[test]
    fn move_to_cgroup_changes_accounting() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 1);
        let root = k.node_root(n).unwrap();
        let g1 = k.create_cgroup(root, "g1", 1024).unwrap();
        let g2 = k.create_cgroup(root, "g2", 1024).unwrap();
        let a = k.spawn(n, "a", cpu_hog()).cgroup(g1).build();
        let b = k.spawn(n, "b", cpu_hog()).cgroup(g2).build();
        k.run_for(SimDuration::from_secs(1));
        k.move_to_cgroup(a, g2).unwrap();
        k.run_for(SimDuration::from_secs(1));
        assert_eq!(k.thread_info(a).unwrap().cgroup, g2);
        // After the move both threads are in g2 and share fairly.
        let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
        let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
        assert!((ca + cb - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_node_move_rejected() {
        let mut k = Kernel::default();
        let n1 = k.add_node("n1", 1);
        let n2 = k.add_node("n2", 1);
        let root2 = k.node_root(n2).unwrap();
        let t = k.spawn(n1, "t", cpu_hog()).build();
        assert!(matches!(
            k.move_to_cgroup(t, root2),
            Err(KernelError::CrossNode { .. })
        ));
    }

    #[test]
    fn nodes_are_isolated() {
        let mut k = Kernel::new(zero_switch_config());
        let n1 = k.add_node("n1", 1);
        let n2 = k.add_node("n2", 1);
        let a = k.spawn(n1, "a", cpu_hog()).build();
        let b1 = k.spawn(n2, "b1", cpu_hog()).build();
        let b2 = k.spawn(n2, "b2", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(1));
        assert_eq!(k.thread_info(a).unwrap().cputime, SimDuration::from_secs(1));
        let c1 = k.thread_info(b1).unwrap().cputime.as_secs_f64();
        let c2 = k.thread_info(b2).unwrap().cputime.as_secs_f64();
        assert!((c1 - 0.5).abs() < 0.01 && (c2 - 0.5).abs() < 0.01);
    }

    #[test]
    fn nested_cgroups_share_hierarchically() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 1);
        let root = k.node_root(n).unwrap();
        let top = k.create_cgroup(root, "top", 1024).unwrap();
        let inner_a = k.create_cgroup(top, "a", 3072).unwrap();
        let inner_b = k.create_cgroup(top, "b", 1024).unwrap();
        let other = k.create_cgroup(root, "other", 1024).unwrap();
        let a = k.spawn(n, "a", cpu_hog()).cgroup(inner_a).build();
        let b = k.spawn(n, "b", cpu_hog()).cgroup(inner_b).build();
        let c = k.spawn(n, "c", cpu_hog()).cgroup(other).build();
        k.run_for(SimDuration::from_secs(8));
        let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
        let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
        let cc = k.thread_info(c).unwrap().cputime.as_secs_f64();
        // top vs other: 50/50; within top: 3:1.
        assert!((cc - 4.0).abs() < 0.25, "other got {cc}");
        assert!((ca / cb - 3.0).abs() < 0.35, "inner ratio {}", ca / cb);
    }

    #[test]
    fn offline_cpu_migrates_running_thread() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 2);
        let a = k.spawn(n, "a", cpu_hog()).build();
        let b = k.spawn(n, "b", cpu_hog()).build();
        k.run_for(SimDuration::from_secs(1));
        // Each hog owned one CPU for 1s.
        assert_eq!(k.thread_info(a).unwrap().cputime, SimDuration::from_secs(1));
        assert_eq!(k.thread_info(b).unwrap().cputime, SimDuration::from_secs(1));
        k.offline_cpu(n, 0).unwrap();
        assert_eq!(k.online_cpus(n).unwrap(), 1);
        k.run_for(SimDuration::from_secs(2));
        // Both hogs survive on the one remaining CPU, splitting it fairly.
        let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
        let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
        assert!((ca - 2.0).abs() < 0.05, "a got {ca}");
        assert!((cb - 2.0).abs() < 0.05, "b got {cb}");
        assert!((ca + cb - 4.0).abs() < 1e-6, "total {}", ca + cb);
    }

    #[test]
    fn online_cpu_restores_capacity() {
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 2);
        let a = k.spawn(n, "a", cpu_hog()).build();
        let b = k.spawn(n, "b", cpu_hog()).build();
        k.offline_cpu(n, 1).unwrap();
        k.run_for(SimDuration::from_secs(1));
        k.online_cpu(n, 1).unwrap();
        assert_eq!(k.online_cpus(n).unwrap(), 2);
        k.run_for(SimDuration::from_secs(1));
        // 0.5s each on the single CPU, then 1s each in parallel.
        let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
        let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
        assert!((ca - 1.5).abs() < 0.05, "a got {ca}");
        assert!((cb - 1.5).abs() < 0.05, "b got {cb}");
    }

    #[test]
    fn offline_last_cpu_rejected() {
        let mut k = Kernel::default();
        let n = k.add_node("n", 1);
        assert_eq!(k.offline_cpu(n, 0), Err(KernelError::LastOnlineCpu(n)));
        let n2 = k.add_node("n2", 2);
        k.offline_cpu(n2, 0).unwrap();
        assert_eq!(k.offline_cpu(n2, 1), Err(KernelError::LastOnlineCpu(n2)));
    }

    #[test]
    fn hotplug_rejects_bad_ids_and_is_idempotent() {
        let mut k = Kernel::default();
        let n = k.add_node("n", 2);
        assert_eq!(
            k.offline_cpu(n, 7),
            Err(KernelError::UnknownCpu { node: n, cpu: 7 })
        );
        assert_eq!(
            k.online_cpu(NodeId(9), 0),
            Err(KernelError::UnknownNode(NodeId(9)))
        );
        k.offline_cpu(n, 1).unwrap();
        k.offline_cpu(n, 1).unwrap(); // no-op
        assert!(!k.cpu_online(n, 1).unwrap());
        k.online_cpu(n, 1).unwrap();
        k.online_cpu(n, 1).unwrap(); // no-op
        assert!(k.cpu_online(n, 1).unwrap());
    }

    #[test]
    fn offline_preserves_vruntime_order_and_cgroups() {
        // Two cgroups with 2:1 shares on 2 CPUs; after losing a CPU the
        // share ratio must persist on the survivor.
        let mut k = Kernel::new(zero_switch_config());
        let n = k.add_node("n", 2);
        let root = k.node_root(n).unwrap();
        let g1 = k.create_cgroup(root, "g1", 2048).unwrap();
        let g2 = k.create_cgroup(root, "g2", 1024).unwrap();
        let a = k.spawn(n, "a", cpu_hog()).cgroup(g1).build();
        let b = k.spawn(n, "b", cpu_hog()).cgroup(g2).build();
        k.run_for(SimDuration::from_secs(1));
        k.offline_cpu(n, 0).unwrap();
        // Settle: g1's group vruntime lagged g2's while each owned a CPU
        // (heavier shares accrue slower), so it first catches up — real
        // CFS lag physics. Measure the steady state after convergence.
        k.run_for(SimDuration::from_secs(2));
        let before_a = k.thread_info(a).unwrap().cputime;
        let before_b = k.thread_info(b).unwrap().cputime;
        k.run_for(SimDuration::from_secs(6));
        assert_eq!(k.thread_info(a).unwrap().cgroup, g1);
        let da = (k.thread_info(a).unwrap().cputime - before_a).as_secs_f64();
        let db = (k.thread_info(b).unwrap().cputime - before_b).as_secs_f64();
        assert!((da / db - 2.0).abs() < 0.25, "ratio {}", da / db);
        assert!((da + db - 6.0).abs() < 1e-6, "survivor capacity {}", da + db);
    }

    #[test]
    fn rt_wake_skips_offline_cpus() {
        // Regression: the RT preemption victim scan used to unwrap every
        // CPU's occupant and would panic on an (empty) offline CPU.
        let mut k = Kernel::default();
        let n = k.add_node("n", 2);
        k.offline_cpu(n, 0).unwrap();
        let hog = k.spawn(n, "hog", cpu_hog()).build();
        // An RT thread that wakes while the only online CPU is busy: the
        // wake-preemption victim scan must skip the empty offline CPU.
        let mut phase = 0u32;
        let rt = k
            .spawn(n, "rt", move |_: &mut SimCtx| {
                phase += 1;
                match phase {
                    1 => Action::Sleep(SimDuration::from_millis(5)),
                    2 => Action::Compute(SimDuration::from_millis(1)),
                    _ => Action::Exit,
                }
            })
            .build();
        k.set_rt_priority(rt, Some(50)).unwrap();
        k.run_for(SimDuration::from_millis(20));
        // The RT thread ran (preempting the hog on the surviving CPU).
        assert!(k.thread_info(rt).unwrap().cputime >= SimDuration::from_millis(1));
        assert!(!k.thread_info(hog).unwrap().cputime.is_zero());
    }

    #[test]
    fn scheduled_hotplug_fires_on_calendar_and_traces() {
        let mut k = Kernel::new(zero_switch_config());
        let handle = k.install_tracing(None);
        let n = k.add_node("n", 2);
        let a = k.spawn(n, "a", cpu_hog()).build();
        k.spawn(n, "b", cpu_hog()).build();
        k.schedule_cpu_offline(SimDuration::from_millis(10), n, 1);
        k.schedule_cpu_online(SimDuration::from_millis(30), n, 1);
        k.run_for(SimDuration::from_millis(40));
        assert!(k.cpu_online(n, 1).unwrap());
        let recs = handle.borrow_mut().drain();
        let off_at = recs
            .iter()
            .find(|r| matches!(r.event, TraceEvent::CpuOffline { node: 0, cpu: 1 }))
            .map(|r| r.at)
            .expect("CpuOffline traced");
        let on_at = recs
            .iter()
            .find(|r| matches!(r.event, TraceEvent::CpuOnline { node: 0, cpu: 1 }))
            .map(|r| r.at)
            .expect("CpuOnline traced");
        assert_eq!(off_at, SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(on_at, SimTime::ZERO + SimDuration::from_millis(30));
        // The displaced occupant left a Migration record at the same instant.
        assert!(recs.iter().any(|r| r.at == off_at
            && matches!(r.event, TraceEvent::Migration { .. })));
        // Dead-CPU window: no dispatch onto cpu 1 while it was offline.
        assert!(
            !recs.iter().any(|r| r.at > off_at
                && r.at < on_at
                && matches!(r.event, TraceEvent::Switch { cpu: 1, .. })),
            "thread dispatched onto an offline cpu"
        );
        // debug_dump renders the offline CPU without panicking mid-window.
        k.offline_cpu(n, 1).unwrap();
        assert!(k.debug_dump().contains("offline"));
        let _ = k.thread_info(a).unwrap();
    }

    #[test]
    fn run_until_rejects_past_deadline() {
        let mut k = Kernel::default();
        k.run_for(SimDuration::from_millis(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            k.run_until(SimTime::ZERO);
        }));
        assert!(result.is_err());
    }
}
