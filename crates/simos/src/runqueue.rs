//! CFS runqueues.
//!
//! Each cgroup owns one [`RunQueue`] holding its *ready* (runnable but not
//! running) child entities — threads and child groups — ordered by virtual
//! runtime, mirroring the kernel's per-`cfs_rq` red-black tree.

use crate::ids::{CgroupId, ThreadId};

/// A schedulable entity: a thread or a whole child cgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Entity {
    /// A runnable thread.
    Thread(ThreadId),
    /// A child cgroup with at least one ready descendant.
    Group(CgroupId),
}

/// Key ordering entities within a runqueue: virtual runtime first, then a
/// creation sequence number for deterministic tie-breaking.
pub(crate) type RqKey = (u64, u64, Entity);

/// A vruntime-ordered queue of ready entities.
///
/// Stored as a Vec sorted in *descending* key order, so the minimum-key
/// entity sits at the tail: `first`/`pop_first` — the dispatch hot path —
/// are O(1) with no tree-node allocation churn. Runqueues hold at most a
/// node's ready entities (typically well under a hundred), where a sorted
/// Vec beats a B-tree on every operation.
#[derive(Debug, Default)]
pub(crate) struct RunQueue {
    /// Keys sorted descending; the leftmost (minimum) entity is last.
    desc: Vec<RqKey>,
}

impl RunQueue {
    pub fn new() -> Self {
        RunQueue { desc: Vec::new() }
    }

    /// Position of `key` in the descending order (`Err` = insertion point).
    fn search(&self, key: &RqKey) -> Result<usize, usize> {
        self.desc.binary_search_by(|probe| key.cmp(probe))
    }

    /// Inserts an entity with the given vruntime and tie-break sequence.
    pub fn insert(&mut self, vruntime: u64, seq: u64, entity: Entity) {
        match self.search(&(vruntime, seq, entity)) {
            Ok(_) => debug_assert!(false, "entity {entity:?} double-enqueued"),
            Err(pos) => self.desc.insert(pos, (vruntime, seq, entity)),
        }
    }

    /// Removes an entity (must be present with exactly this key).
    pub fn remove(&mut self, vruntime: u64, seq: u64, entity: Entity) {
        match self.search(&(vruntime, seq, entity)) {
            Ok(pos) => {
                self.desc.remove(pos);
            }
            Err(_) => debug_assert!(false, "entity {entity:?} not in runqueue on remove"),
        }
    }

    /// The leftmost (minimum-vruntime) entity, if any.
    pub fn first(&self) -> Option<RqKey> {
        self.desc.last().copied()
    }

    /// Removes and returns the leftmost entity.
    pub fn pop_first(&mut self) -> Option<RqKey> {
        self.desc.pop()
    }

    pub fn is_empty(&self) -> bool {
        self.desc.is_empty()
    }

    /// Number of ready entities directly in this queue.
    pub fn len(&self) -> usize {
        self.desc.len()
    }

    /// Iterates entities in vruntime order (for diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &RqKey> {
        self.desc.iter().rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(raw: u64) -> Entity {
        Entity::Thread(ThreadId::from_u64(raw))
    }

    #[test]
    fn orders_by_vruntime_then_seq() {
        let mut rq = RunQueue::new();
        rq.insert(20, 1, t(1));
        rq.insert(10, 2, t(2));
        rq.insert(10, 3, t(3));
        assert_eq!(rq.len(), 3);
        assert_eq!(rq.pop_first(), Some((10, 2, t(2))));
        assert_eq!(rq.pop_first(), Some((10, 3, t(3))));
        assert_eq!(rq.pop_first(), Some((20, 1, t(1))));
        assert!(rq.is_empty());
    }

    #[test]
    fn remove_specific_entity() {
        let mut rq = RunQueue::new();
        rq.insert(5, 1, t(1));
        rq.insert(6, 2, Entity::Group(CgroupId::from_u64(9)));
        rq.remove(5, 1, t(1));
        assert_eq!(rq.first(), Some((6, 2, Entity::Group(CgroupId::from_u64(9)))));
    }
}
