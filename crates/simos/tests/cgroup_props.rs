//! Property-based tests of the cgroup hierarchy under edge cases: groups
//! created with degenerate (zero / huge) `cpu.shares`, and arbitrary
//! interleavings of CPU hotplug with thread reparenting. Whatever the
//! sequence, no thread starves, no thread is stranded, and the scheduler
//! never panics.

use proptest::prelude::*;
use simos::{
    clamp_shares, Action, FixedWork, Kernel, KernelConfig, KernelError, SimCtx, SimDuration,
    MAX_CPU_SHARES, MIN_CPU_SHARES,
};

fn hog() -> FixedWork {
    FixedWork::endless(SimDuration::from_micros(100))
}

fn zero_switch() -> KernelConfig {
    KernelConfig {
        ctx_switch_cost: SimDuration::ZERO,
        ..KernelConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Degenerate share values (zero, sub-minimum, beyond-maximum) clamp
    /// into the accepted range and still divide the CPU in the clamped
    /// ratio; in particular a zero-share group is never starved.
    #[test]
    fn degenerate_shares_clamp_and_never_starve(
        shares_a in 0u64..16,
        shares_b_idx in 0usize..6,
    ) {
        const EXTREMES: [u64; 6] = [0, 1, 2, 1024, 262_144, u64::MAX];
        let shares_b = EXTREMES[shares_b_idx];
        let ca = clamp_shares(shares_a);
        let cb = clamp_shares(shares_b);
        prop_assert!((MIN_CPU_SHARES..=MAX_CPU_SHARES).contains(&ca));
        prop_assert!((MIN_CPU_SHARES..=MAX_CPU_SHARES).contains(&cb));

        let mut k = Kernel::new(zero_switch());
        let n = k.add_node("n", 1);
        let root = k.node_root(n).unwrap();
        let ga = k.create_cgroup(root, "a", shares_a).unwrap();
        let gb = k.create_cgroup(root, "b", shares_b).unwrap();
        prop_assert_eq!(k.cgroup_info(ga).unwrap().shares, ca);
        prop_assert_eq!(k.cgroup_info(gb).unwrap().shares, cb);
        let ta = k.spawn(n, "ta", hog()).cgroup(ga).build();
        let tb = k.spawn(n, "tb", hog()).cgroup(gb).build();
        k.run_for(SimDuration::from_secs(4));
        let da = k.thread_info(ta).unwrap().cputime.as_secs_f64();
        let db = k.thread_info(tb).unwrap().cputime.as_secs_f64();
        // Neither group starves outright, and the split tracks the
        // clamped ratio (loosely: slice granularity quantizes small
        // shares).
        prop_assert!(da > 0.0, "zero-share group starved: {da}");
        prop_assert!(db > 0.0, "sibling starved: {db}");
        prop_assert!((da + db - 4.0).abs() < 1e-6, "lost cpu time: {}", da + db);
        let expect = ca as f64 / cb as f64;
        let got = da / db;
        // Extreme ratios (2 vs 262144 = 1:131072) hit the minimum
        // granularity floor; only check order-of-magnitude agreement
        // within the regime CFS can actually express over this window.
        if (0.01..=100.0).contains(&expect) {
            prop_assert!(
                got / expect < 4.0 && expect / got < 4.0,
                "split {got} vs clamped ratio {expect}"
            );
        } else {
            prop_assert_eq!(
                got > 1.0,
                expect > 1.0,
                "dominance inverted: got {} expect {}",
                got,
                expect
            );
        }
    }

    /// Arbitrary interleavings of CPU hotplug and thread reparenting over
    /// a nested hierarchy: the scheduler stays consistent (no panic, no
    /// stranded thread, no phantom runqueue entries) and both hogs keep
    /// making progress whenever at least one CPU is online — including
    /// reparenting a thread out of a group right after the CPU it was
    /// running on went offline.
    #[test]
    fn hotplug_and_reparenting_keep_hierarchy_consistent(
        cpus in 2usize..5,
        ops in proptest::collection::vec((0u8..4, 0usize..4, 1u64..40), 1..24),
    ) {
        let mut k = Kernel::new(zero_switch());
        let n = k.add_node("n", cpus);
        let root = k.node_root(n).unwrap();
        let g1 = k.create_cgroup(root, "g1", 2048).unwrap();
        let g1a = k.create_cgroup(g1, "a", 0).unwrap(); // zero-share leaf
        let g2 = k.create_cgroup(root, "g2", 1024).unwrap();
        let ta = k.spawn(n, "ta", hog()).cgroup(g1a).build();
        let tb = k.spawn(n, "tb", hog()).cgroup(g2).build();
        let groups = [g1a, g2, g1, root];
        let mut flip = false;
        for (kind, pick, ms) in ops {
            match kind {
                0 => {
                    // Offline a CPU; refusing to kill the last one is the
                    // documented contract, not a failure.
                    match k.offline_cpu(n, pick % cpus) {
                        Ok(()) | Err(KernelError::LastOnlineCpu(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("offline: {e}"))),
                    }
                }
                1 => k.online_cpu(n, pick % cpus).unwrap(),
                2 => {
                    // Reparent the zero-share-group thread somewhere else
                    // (possibly right after its CPU went offline).
                    let dst = groups[pick % groups.len()];
                    k.move_to_cgroup(ta, dst).unwrap();
                }
                _ => {
                    let dst = if flip { g1a } else { g2 };
                    flip = !flip;
                    k.move_to_cgroup(tb, dst).unwrap();
                }
            }
            prop_assert!(k.online_cpus(n).unwrap() >= 1);
            k.run_for(SimDuration::from_millis(ms));
            // The dump renders mid-migration state without panicking, and
            // the runqueue tree stays internally consistent after every op.
            let _ = k.debug_dump();
            if let Err(e) = k.debug_check_runqueues() {
                return Err(TestCaseError::fail(format!("inconsistent runqueues: {e}")));
            }
        }
        // Both hogs stayed schedulable: they make progress in a final
        // window regardless of where the interleaving left the hierarchy.
        let before_a = k.thread_info(ta).unwrap().cputime;
        let before_b = k.thread_info(tb).unwrap().cputime;
        k.run_for(SimDuration::from_secs(1));
        let da = k.thread_info(ta).unwrap().cputime - before_a;
        let db = k.thread_info(tb).unwrap().cputime - before_b;
        prop_assert!(!da.is_zero(), "thread ta stranded");
        prop_assert!(!db.is_zero(), "thread tb stranded");
        // Capacity conservation: the final window hands out exactly
        // online-cpus worth of time when both hogs can soak it, never
        // more (a stranded runqueue entry would double-dispatch).
        let online = k.online_cpus(n).unwrap() as f64;
        let handed = (da + db).as_secs_f64();
        prop_assert!(handed <= online.min(2.0) + 1e-6, "over-dispatch: {handed} > {online}");
    }

    /// A thread sleeping through a hotplug cycle of every CPU it could
    /// run on wakes up and runs — wake-time CPU selection never targets a
    /// dead CPU.
    #[test]
    fn sleeper_survives_full_hotplug_cycle(
        sleep_ms in 5u64..50,
        offline_first in proptest::bool::ANY,
    ) {
        let mut k = Kernel::default();
        let n = k.add_node("n", 2);
        let mut phase = 0u32;
        let t = k
            .spawn(n, "sleeper", move |_: &mut SimCtx| {
                phase += 1;
                match phase {
                    1 => Action::Sleep(SimDuration::from_millis(sleep_ms)),
                    2 => Action::Compute(SimDuration::from_millis(1)),
                    _ => Action::Exit,
                }
            })
            .build();
        if offline_first {
            k.offline_cpu(n, 0).unwrap();
        }
        k.run_for(SimDuration::from_millis(2));
        // While it sleeps, cycle both CPUs through offline (one at a
        // time: the node keeps a processor).
        k.offline_cpu(n, if offline_first { 1 } else { 0 }).unwrap_or(());
        let _ = k.offline_cpu(n, if offline_first { 0 } else { 1 });
        k.run_for(SimDuration::from_millis(sleep_ms + 20));
        let info = k.thread_info(t).unwrap();
        prop_assert!(
            info.cputime >= SimDuration::from_millis(1),
            "sleeper never ran after wake: {:?}",
            info.cputime
        );
    }
}

/// Regression: a fixed hotplug/reparenting interleaving (found by the
/// property test above) that once banked ~5 sim-seconds of vruntime lag
/// against a thread — the zero-share group's entity vruntime inflated at
/// 512× wall rate while it soaked an otherwise-idle CPU, and after the
/// node shrank to one CPU the sibling monopolized it for sim-seconds
/// while catching up. With bounded lag at enqueue and hierarchical
/// slices, the victim must keep receiving its (tiny but nonzero) fair
/// share in any one-second window.
#[test]
fn banked_lag_does_not_starve_after_hotplug() {
    let cpus = 3usize;
    let ops: Vec<(u8, usize, u64)> = vec![
        (2, 3, 23), (0, 0, 5), (1, 2, 25), (3, 2, 27), (2, 1, 20), (3, 1, 8),
        (0, 0, 24), (2, 0, 23), (2, 0, 14), (1, 2, 26), (1, 0, 16), (2, 2, 10),
        (3, 0, 16), (0, 2, 1), (0, 3, 11), (3, 0, 10), (0, 2, 12),
    ];
    let mut k = Kernel::new(zero_switch());
    let n = k.add_node("n", cpus);
    let root = k.node_root(n).unwrap();
    let g1 = k.create_cgroup(root, "g1", 2048).unwrap();
    let g1a = k.create_cgroup(g1, "a", 0).unwrap();
    let g2 = k.create_cgroup(root, "g2", 1024).unwrap();
    let ta = k.spawn(n, "ta", hog()).cgroup(g1a).build();
    let tb = k.spawn(n, "tb", hog()).cgroup(g2).build();
    let groups = [g1a, g2, g1, root];
    let mut flip = false;
    for (i, (kind, pick, ms)) in ops.iter().copied().enumerate() {
        match kind {
            0 => {
                let _ = k.offline_cpu(n, pick % cpus);
            }
            1 => k.online_cpu(n, pick % cpus).unwrap(),
            2 => {
                k.move_to_cgroup(ta, groups[pick % groups.len()]).unwrap();
            }
            _ => {
                let dst = if flip { g1a } else { g2 };
                flip = !flip;
                k.move_to_cgroup(tb, dst).unwrap();
            }
        }
        k.run_for(SimDuration::from_millis(ms));
        if let Err(e) = k.debug_check_runqueues() {
            panic!("after op {i} {:?}: {e}\n{}", (kind, pick, ms), k.debug_dump());
        }
    }
    // End state: one CPU online, ta in g1 (2048 shares), tb in the
    // zero-share leaf under g1. tb's fair share is ~0.2%, so it must
    // still run in any one-second window.
    let before_b = k.thread_info(tb).unwrap().cputime;
    k.run_for(SimDuration::from_secs(1));
    let db = k.thread_info(tb).unwrap().cputime - before_b;
    assert!(
        !db.is_zero(),
        "zero-share thread starved for a full second after hotplug:\n{}",
        k.debug_dump()
    );
}
