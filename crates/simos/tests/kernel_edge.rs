//! Edge-case tests of kernel APIs: one-shot callbacks, callback
//! self-cancellation, state-transition errors, and cgroup moves of
//! non-runnable threads.

use std::cell::RefCell;
use std::rc::Rc;

use simos::{
    Action, FixedWork, Kernel, KernelError, Nice, SimCtx, SimDuration, ThreadState,
};

#[test]
fn schedule_once_fires_exactly_once() {
    let mut k = Kernel::default();
    let count: Rc<RefCell<u32>> = Rc::default();
    let c = Rc::clone(&count);
    k.schedule_once(SimDuration::from_millis(5), move |_| {
        *c.borrow_mut() += 1;
    });
    k.run_for(SimDuration::from_secs(1));
    assert_eq!(*count.borrow(), 1);
}

#[test]
fn callback_can_cancel_itself() {
    let mut k = Kernel::default();
    let count: Rc<RefCell<u32>> = Rc::default();
    let c = Rc::clone(&count);
    // The callback cancels itself on the third firing.
    let id = Rc::new(RefCell::new(None));
    let id2 = Rc::clone(&id);
    let cb = k.schedule_periodic(SimDuration::from_millis(1), SimDuration::from_millis(1), move |kk| {
        *c.borrow_mut() += 1;
        if *c.borrow() == 3 {
            kk.cancel_callback(id2.borrow().unwrap());
        }
    });
    *id.borrow_mut() = Some(cb);
    k.run_for(SimDuration::from_secs(1));
    assert_eq!(*count.borrow(), 3);
}

#[test]
fn callbacks_can_schedule_callbacks() {
    let mut k = Kernel::default();
    let hits: Rc<RefCell<Vec<u64>>> = Rc::default();
    let h = Rc::clone(&hits);
    k.schedule_once(SimDuration::from_millis(1), move |kk| {
        let h2 = Rc::clone(&h);
        h.borrow_mut().push(kk.now().as_nanos());
        kk.schedule_once(SimDuration::from_millis(2), move |kk2| {
            h2.borrow_mut().push(kk2.now().as_nanos());
        });
    });
    k.run_for(SimDuration::from_millis(10));
    assert_eq!(*hits.borrow(), vec![1_000_000, 3_000_000]);
}

#[test]
fn exited_thread_operations_error() {
    let mut k = Kernel::default();
    let n = k.add_node("n", 1);
    let t = k
        .spawn(n, "short", FixedWork::new(SimDuration::from_micros(1), 1))
        .build();
    k.run_for(SimDuration::from_millis(1));
    assert_eq!(k.thread_info(t).unwrap().state, ThreadState::Exited);
    assert_eq!(
        k.set_nice(t, Nice::DEFAULT),
        Err(KernelError::ThreadExited(t))
    );
    assert_eq!(
        k.set_rt_priority(t, Some(10)),
        Err(KernelError::ThreadExited(t))
    );
    let root = k.node_root(n).unwrap();
    let g = k.create_cgroup(root, "g", 1024).unwrap();
    assert_eq!(k.move_to_cgroup(t, g), Err(KernelError::ThreadExited(t)));
}

#[test]
fn unknown_ids_error() {
    let mut k = Kernel::default();
    let bogus_t = simos::ThreadId::from_u64(999);
    let bogus_c = simos::CgroupId::from_u64(999);
    let bogus_n = simos::NodeId::from_u64(999);
    assert!(matches!(
        k.set_nice(bogus_t, Nice::DEFAULT),
        Err(KernelError::UnknownThread(_))
    ));
    assert!(matches!(
        k.set_cpu_shares(bogus_c, 1024),
        Err(KernelError::UnknownCgroup(_))
    ));
    assert!(matches!(k.node_root(bogus_n), Err(KernelError::UnknownNode(_))));
    assert!(matches!(
        k.cgroup_info(bogus_c),
        Err(KernelError::UnknownCgroup(_))
    ));
}

#[test]
fn blocked_thread_can_move_cgroups() {
    let mut k = Kernel::default();
    let n = k.add_node("n", 1);
    let ch = k.new_wait_channel();
    let mut phase = 0u32;
    let t = k
        .spawn(n, "blocked", move |_: &mut SimCtx| {
            phase += 1;
            match phase {
                1 => Action::Block(ch),
                2 => Action::Compute(SimDuration::from_millis(1)),
                _ => Action::Exit,
            }
        })
        .build();
    k.run_for(SimDuration::from_millis(1));
    assert!(matches!(
        k.thread_info(t).unwrap().state,
        ThreadState::Blocked(_)
    ));
    let root = k.node_root(n).unwrap();
    let g = k.create_cgroup(root, "g", 512).unwrap();
    k.move_to_cgroup(t, g).unwrap();
    assert_eq!(k.thread_info(t).unwrap().cgroup, g);
    // Wake it: it must run inside the new cgroup without issue.
    k.wake(ch);
    k.run_for(SimDuration::from_millis(1));
    assert!(k.cgroup_info(g).unwrap().cputime.as_nanos() > 0);
}

#[test]
fn moving_to_same_cgroup_is_a_noop() {
    let mut k = Kernel::default();
    let n = k.add_node("n", 1);
    let t = k
        .spawn(n, "t", FixedWork::endless(SimDuration::from_micros(50)))
        .build();
    let root = k.node_root(n).unwrap();
    k.run_for(SimDuration::from_millis(5));
    k.move_to_cgroup(t, root).unwrap();
    k.run_for(SimDuration::from_millis(5));
    assert_eq!(k.thread_info(t).unwrap().cgroup, root);
}

#[test]
fn yield_action_round_robins() {
    // Two yield-looping threads must interleave rather than starve.
    let mut k = Kernel::default();
    let n = k.add_node("n", 1);
    let log: Rc<RefCell<Vec<u8>>> = Rc::default();
    for id in 0..2u8 {
        let l = Rc::clone(&log);
        let mut work_next = true;
        k.spawn(n, &format!("y{id}"), move |_: &mut SimCtx| {
            if work_next {
                work_next = false;
                l.borrow_mut().push(id);
                Action::Compute(SimDuration::from_micros(100))
            } else {
                work_next = true;
                Action::Yield
            }
        })
        .build();
    }
    k.run_for(SimDuration::from_millis(10));
    let log = log.borrow();
    let zeros = log.iter().filter(|&&b| b == 0).count();
    let ones = log.len() - zeros;
    assert!(zeros > 10 && ones > 10, "both progress: {zeros}/{ones}");
}

#[test]
fn run_until_processes_events_at_deadline() {
    let mut k = Kernel::default();
    let fired: Rc<RefCell<bool>> = Rc::default();
    let f = Rc::clone(&fired);
    k.schedule_once(SimDuration::from_millis(10), move |_| {
        *f.borrow_mut() = true;
    });
    k.run_until(simos::SimTime::ZERO + SimDuration::from_millis(10));
    assert!(*fired.borrow(), "event exactly at the deadline fires");
}

#[test]
fn fault_hook_injects_and_clears() {
    let mut k = Kernel::default();
    let n = k.add_node("n", 1);
    let t = k
        .spawn(n, "w", FixedWork::endless(SimDuration::from_millis(1)))
        .build();
    let root = k.node_root(n).unwrap();

    // Fail every nice change; leave cgroup operations alone.
    k.set_fault_hook(|op, _now| op == "set_nice");
    assert_eq!(
        k.set_nice(t, Nice::new(5).unwrap()),
        Err(KernelError::InjectedFault { op: "set_nice" })
    );
    // The failed call must not have mutated the thread.
    assert_eq!(k.thread_info(t).unwrap().nice, Nice::DEFAULT);
    let g = k.create_cgroup(root, "g", 512).expect("unaffected op");
    k.set_cpu_shares(g, 600).expect("unaffected op");

    k.clear_fault_hook();
    k.set_nice(t, Nice::new(5).unwrap()).expect("hook removed");
    assert_eq!(k.thread_info(t).unwrap().nice, Nice::new(5).unwrap());
}

#[test]
fn fault_hook_sees_sim_time() {
    let mut k = Kernel::default();
    let n = k.add_node("n", 1);
    let t = k
        .spawn(n, "w", FixedWork::endless(SimDuration::from_millis(1)))
        .build();
    // Faults only during [5ms, 10ms).
    k.set_fault_hook(|_op, now| {
        now >= simos::SimTime::ZERO + SimDuration::from_millis(5)
            && now < simos::SimTime::ZERO + SimDuration::from_millis(10)
    });
    k.set_nice(t, Nice::new(1).unwrap()).expect("before window");
    k.run_for(SimDuration::from_millis(6));
    assert!(k.set_nice(t, Nice::new(2).unwrap()).is_err(), "inside window");
    k.run_for(SimDuration::from_millis(6));
    k.set_nice(t, Nice::new(3).unwrap()).expect("after window");
}

#[test]
fn idle_kernel_costs_one_loop_iteration_per_run() {
    // The event-driven main loop must not busy-spin through simulated
    // time: with nothing scheduled, an hour of simulation is a single
    // iteration that jumps straight to the deadline.
    let mut k = Kernel::default();
    k.add_node("n", 4); // idle CPUs must not generate events either
    k.run_for(SimDuration::from_secs(3_600));
    assert_eq!(k.loop_iterations(), 1);
    k.run_for(SimDuration::from_secs(3_600));
    assert_eq!(k.loop_iterations(), 2);
}

#[test]
fn loop_iterations_match_event_batches() {
    // Ten one-shot timers at distinct instants: one iteration per event
    // batch plus the final idle iteration that hits the deadline. A
    // redundant tail iteration (the old `run_until` bug) would add one.
    let mut k = Kernel::default();
    for i in 1..=10u64 {
        k.schedule_once(SimDuration::from_millis(i), |_| {});
    }
    k.run_for(SimDuration::from_secs(1));
    assert_eq!(k.loop_iterations(), 11);
}

#[test]
fn same_instant_timers_are_one_batch() {
    // Timers due at the same instant fire in one batch => one iteration.
    let mut k = Kernel::default();
    for _ in 0..10 {
        k.schedule_once(SimDuration::from_millis(5), |_| {});
    }
    k.run_for(SimDuration::from_secs(1));
    assert_eq!(k.loop_iterations(), 2);
}

#[test]
fn nested_wake_chain_respects_outer_reservation() {
    // Depth-2 same-instant wake chain through the wake-to-idle-CPU fast
    // path: A's wake-up body wakes B (fast-placed while A's CPU is still
    // reserved), and B's body wakes C while B's own placement is in
    // flight. Both CPUs are reserved by in-flight place_thread frames at
    // that point, so C must take the runqueue path — a fast placement
    // onto A's reserved CPU would be overwritten when A's outer frame
    // commits, leaving C Running with no CPU (lost thread).
    let mut k = Kernel::default();
    let n = k.add_node("n", 2);
    let ch_b = k.new_wait_channel();
    let ch_c = k.new_wait_channel();

    let mut cp = 0u32;
    let c = k
        .spawn(n, "c", move |_: &mut SimCtx| {
            cp += 1;
            match cp {
                1 => Action::Block(ch_c),
                2 => Action::Compute(SimDuration::from_millis(1)),
                _ => Action::Exit,
            }
        })
        .build();
    let mut bp = 0u32;
    let b = k
        .spawn(n, "b", move |ctx: &mut SimCtx| {
            bp += 1;
            match bp {
                1 => Action::Block(ch_b),
                2 => {
                    ctx.wake(ch_c);
                    Action::Compute(SimDuration::from_millis(1))
                }
                _ => Action::Exit,
            }
        })
        .build();
    let mut ap = 0u32;
    let a = k
        .spawn(n, "a", move |ctx: &mut SimCtx| {
            ap += 1;
            match ap {
                1 => Action::Sleep(SimDuration::from_millis(5)),
                2 => {
                    ctx.wake(ch_b);
                    Action::Compute(SimDuration::from_millis(1))
                }
                _ => Action::Exit,
            }
        })
        .build();

    k.run_for(SimDuration::from_millis(50));
    for tid in [a, b, c] {
        assert_eq!(
            k.thread_info(tid).unwrap().state,
            ThreadState::Exited,
            "thread {tid:?} was lost by the wake chain"
        );
    }
}
