//! Tests of the extension mechanisms from the paper's future-work list
//! (§8): real-time (SCHED_FIFO-like) threads and cgroup CPU quotas.

use simos::{FixedWork, Kernel, KernelConfig, SimDuration};

fn quiet() -> KernelConfig {
    KernelConfig {
        ctx_switch_cost: SimDuration::ZERO,
        ..KernelConfig::default()
    }
}

fn hog() -> FixedWork {
    FixedWork::endless(SimDuration::from_micros(100))
}

#[test]
fn rt_thread_starves_cfs_threads() {
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let rt = k.spawn(n, "rt", hog()).build();
    let cfs = k.spawn(n, "cfs", hog()).build();
    k.set_rt_priority(rt, Some(50)).unwrap();
    k.run_for(SimDuration::from_secs(1));
    assert_eq!(
        k.thread_info(rt).unwrap().cputime,
        SimDuration::from_secs(1),
        "CPU-bound RT thread owns the core"
    );
    assert_eq!(k.thread_info(cfs).unwrap().cputime, SimDuration::ZERO);
}

#[test]
fn higher_rt_priority_wins() {
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let low = k.spawn(n, "low", hog()).build();
    let high = k.spawn(n, "high", hog()).build();
    k.set_rt_priority(low, Some(10)).unwrap();
    k.set_rt_priority(high, Some(90)).unwrap();
    k.run_for(SimDuration::from_secs(1));
    assert_eq!(
        k.thread_info(high).unwrap().cputime,
        SimDuration::from_secs(1)
    );
    assert_eq!(k.thread_info(low).unwrap().cputime, SimDuration::ZERO);
}

#[test]
fn rt_thread_can_return_to_cfs() {
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let a = k.spawn(n, "a", hog()).build();
    let b = k.spawn(n, "b", hog()).build();
    k.set_rt_priority(a, Some(50)).unwrap();
    k.run_for(SimDuration::from_secs(1));
    k.set_rt_priority(a, None).unwrap();
    let before_b = k.thread_info(b).unwrap().cputime;
    k.run_for(SimDuration::from_secs(2));
    let db = (k.thread_info(b).unwrap().cputime - before_b).as_secs_f64();
    assert!((db - 1.0).abs() < 0.1, "b gets its fair half again: {db}");
    assert_eq!(k.thread_info(a).unwrap().rt_priority, None);
}

#[test]
fn rt_wake_preempts_running_cfs_thread() {
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let _cfs = k.spawn(n, "cfs", hog()).build();
    // An RT thread that sleeps 10ms, computes 1ms, repeats.
    let mut phase = 0u32;
    let rt = k
        .spawn(n, "rt", move |_: &mut simos::SimCtx| {
            phase += 1;
            if phase % 2 == 1 {
                simos::Action::Sleep(SimDuration::from_millis(10))
            } else {
                simos::Action::Compute(SimDuration::from_millis(1))
            }
        })
        .build();
    k.set_rt_priority(rt, Some(50)).unwrap();
    k.run_for(SimDuration::from_secs(1));
    let rt_time = k.thread_info(rt).unwrap().cputime.as_secs_f64();
    // ~1ms of work per ~11ms cycle => ~90ms of CPU; without wake preemption
    // it would be delayed behind the hog's slices.
    assert!((0.07..=0.1).contains(&rt_time), "rt got {rt_time}");
}

#[test]
fn quota_caps_group_cpu_share() {
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let root = k.node_root(n).unwrap();
    let limited = k.create_cgroup(root, "limited", 1024).unwrap();
    let t = k.spawn(n, "t", hog()).cgroup(limited).build();
    // 20ms per 100ms window = 20% cap, alone on the machine.
    k.set_cpu_quota(
        limited,
        Some((SimDuration::from_millis(20), SimDuration::from_millis(100))),
    )
    .unwrap();
    k.run_for(SimDuration::from_secs(5));
    let used = k.thread_info(t).unwrap().cputime.as_secs_f64();
    assert!((0.95..=1.1).contains(&used), "20% of 5s = ~1s, got {used}");
    let info = k.cgroup_info(limited).unwrap();
    assert_eq!(
        info.quota,
        Some((SimDuration::from_millis(20), SimDuration::from_millis(100)))
    );
}

#[test]
fn quota_releases_cpu_to_others() {
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let root = k.node_root(n).unwrap();
    let limited = k.create_cgroup(root, "limited", 1024).unwrap();
    let capped = k.spawn(n, "capped", hog()).cgroup(limited).build();
    let free = k.spawn(n, "free", hog()).build();
    k.set_cpu_quota(
        limited,
        Some((SimDuration::from_millis(10), SimDuration::from_millis(100))),
    )
    .unwrap();
    k.run_for(SimDuration::from_secs(5));
    let capped_t = k.thread_info(capped).unwrap().cputime.as_secs_f64();
    let free_t = k.thread_info(free).unwrap().cputime.as_secs_f64();
    assert!((0.45..=0.6).contains(&capped_t), "capped got {capped_t}");
    assert!((4.4..=4.6).contains(&free_t), "free thread got {free_t}");
}

#[test]
fn clearing_quota_unthrottles() {
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let root = k.node_root(n).unwrap();
    let limited = k.create_cgroup(root, "limited", 1024).unwrap();
    let t = k.spawn(n, "t", hog()).cgroup(limited).build();
    k.set_cpu_quota(
        limited,
        Some((SimDuration::from_millis(1), SimDuration::from_secs(10))),
    )
    .unwrap();
    k.run_for(SimDuration::from_secs(1)); // throttled almost immediately
    assert!(k.cgroup_info(limited).unwrap().throttled);
    k.set_cpu_quota(limited, None).unwrap();
    let before = k.thread_info(t).unwrap().cputime;
    k.run_for(SimDuration::from_secs(1));
    let gained = (k.thread_info(t).unwrap().cputime - before).as_secs_f64();
    assert!(gained > 0.99, "unthrottled thread runs again: {gained}");
}

#[test]
fn quota_interacts_with_shares() {
    // Two groups with equal shares, one also quota-capped at 10%: the
    // capped one gets 10%, the other the rest.
    let mut k = Kernel::new(quiet());
    let n = k.add_node("n", 1);
    let root = k.node_root(n).unwrap();
    let g1 = k.create_cgroup(root, "g1", 1024).unwrap();
    let g2 = k.create_cgroup(root, "g2", 1024).unwrap();
    let a = k.spawn(n, "a", hog()).cgroup(g1).build();
    let b = k.spawn(n, "b", hog()).cgroup(g2).build();
    k.set_cpu_quota(
        g1,
        Some((SimDuration::from_millis(10), SimDuration::from_millis(100))),
    )
    .unwrap();
    k.run_for(SimDuration::from_secs(4));
    let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
    let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
    assert!((0.35..=0.45).contains(&ca), "capped group: {ca}");
    assert!(cb > 3.5, "uncapped group absorbs the rest: {cb}");
}

#[test]
fn psi_reports_cpu_pressure_under_contention() {
    // One CPU, one thread: never stalled. Three threads: ~always stalled.
    let run = |threads: usize| -> f64 {
        let mut k = Kernel::new(quiet());
        let n = k.add_node("n", 1);
        for i in 0..threads {
            k.spawn(n, &format!("t{i}"), hog()).build();
        }
        k.run_for(SimDuration::from_secs(2));
        k.node_stats(n).unwrap().cpu_pressure_some()
    };
    assert!(run(1) < 0.01, "single thread has no CPU pressure");
    let contended = run(3);
    assert!(contended > 0.95, "3 hogs on 1 cpu stall constantly: {contended}");
}
