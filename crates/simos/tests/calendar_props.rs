//! Property-based tests of the unified event calendar: under arbitrary
//! interleavings of inserts and cancellations, events pop in nondecreasing
//! time order, ties break by insertion order (FIFO), and cancelled events
//! never fire.

use proptest::prelude::*;
use simos::{EventCalendar, EventId, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the interleaving of insert / cancel / pop, pops come out
    /// sorted by (time, insertion seq) and exclude exactly the cancelled
    /// events. Each op is `(kind, micros, pick)`: kind 0-3 inserts at
    /// `ZERO + micros` (duplicates likely), kind 4 cancels the pick-th
    /// live event, kinds 5-6 pop.
    #[test]
    fn pops_nondecreasing_under_insert_cancel(
        ops in collection::vec((0u8..7, 0u64..2_000, 0usize..4096), 1..120),
    ) {
        let mut cal: EventCalendar<u64> = EventCalendar::new();
        let mut live: Vec<(EventId, SimTime, u64)> = Vec::new();
        let mut cancelled: Vec<u64> = Vec::new();
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        let mut label = 0u64;

        for (kind, micros, pick) in ops {
            match kind {
                0..=3 => {
                    let at = SimTime::ZERO + SimDuration::from_micros(micros);
                    let id = cal.insert(at, label);
                    live.push((id, at, label));
                    label += 1;
                }
                4 => {
                    if !live.is_empty() {
                        let (id, _, lab) = live.remove(pick % live.len());
                        cal.cancel(id);
                        cancelled.push(lab);
                    }
                }
                _ => {
                    if let Some((at, id, lab)) = cal.pop() {
                        // The model agrees this event is live, due at `at`,
                        // earliest-due, and earliest-inserted among ties.
                        let pos = live
                            .iter()
                            .position(|&(_, _, l)| l == lab)
                            .expect("popped event is live in the model");
                        prop_assert_eq!(live[pos].1, at);
                        let min_at = live.iter().map(|&(_, t, _)| t).min().unwrap();
                        prop_assert_eq!(at, min_at, "pop must return the earliest due time");
                        let first_at_min = live
                            .iter()
                            .filter(|&&(_, t, _)| t == min_at)
                            .map(|&(i, _, _)| i.seq())
                            .min()
                            .unwrap();
                        prop_assert_eq!(
                            id.seq(),
                            first_at_min,
                            "ties must break FIFO by insertion order"
                        );
                        live.remove(pos);
                        popped.push((at, lab));
                    } else {
                        prop_assert!(live.is_empty(), "empty pop with live events pending");
                    }
                }
            }
        }

        // Drain the rest. With no more inserts interleaved, the drain
        // must be nondecreasing in time (the kernel's situation: it never
        // inserts in the past, so its pops never go backwards).
        let drain_from = popped.len();
        while let Some((at, _, lab)) = cal.pop() {
            popped.push((at, lab));
        }
        for pair in popped[drain_from..].windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "pops went back in time: {:?}", pair);
        }
        for &(_, lab) in &popped {
            prop_assert!(!cancelled.contains(&lab), "cancelled event {} fired", lab);
        }
        // Everything not cancelled was eventually popped.
        prop_assert_eq!(popped.len() as u64, label - cancelled.len() as u64);
    }

    /// `peek` never disagrees with the following `pop`, even with
    /// cancellations pending lazily inside the heap.
    #[test]
    fn peek_matches_pop(
        times in collection::vec(0u64..500, 1..60),
        cancels in collection::vec(0usize..4096, 0..20),
    ) {
        let mut cal: EventCalendar<usize> = EventCalendar::new();
        let ids: Vec<EventId> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| cal.insert(SimTime::ZERO + SimDuration::from_micros(t), i))
            .collect();
        let mut gone = Vec::new();
        for c in cancels {
            let id = ids[c % ids.len()];
            if !gone.contains(&id.seq()) {
                cal.cancel(id);
                gone.push(id.seq());
            }
        }
        loop {
            let peeked = cal.peek().map(|(at, &p)| (at, p));
            match (peeked, cal.pop()) {
                (Some((at, payload)), Some((pat, _, ppayload))) => {
                    prop_assert_eq!(at, pat);
                    prop_assert_eq!(payload, ppayload);
                }
                (None, None) => break,
                (peeked, popped) => {
                    return Err(TestCaseError::Fail(format!(
                        "peek {peeked:?} disagrees with pop {popped:?}"
                    )));
                }
            }
        }
        prop_assert_eq!(cal.len(), 0);
    }
}
