//! Property-based tests of the CFS simulator's fairness invariants.

use proptest::prelude::*;
use simos::{FixedWork, Kernel, KernelConfig, Nice, SimDuration};

fn quiet_config() -> KernelConfig {
    KernelConfig {
        ctx_switch_cost: SimDuration::ZERO,
        ..KernelConfig::default()
    }
}

fn hog() -> FixedWork {
    FixedWork::endless(SimDuration::from_micros(100))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two always-runnable threads split one CPU in proportion to their
    /// nice weights, within 8%.
    #[test]
    fn nice_ratio_controls_cpu_split(n1 in -20i32..=19, n2 in -20i32..=19) {
        // Extreme weight ratios need very long runs to converge; keep the
        // spread bounded like the paper's translators do.
        prop_assume!((n1 - n2).abs() <= 15);
        let mut k = Kernel::new(quiet_config());
        let node = k.add_node("n", 1);
        let a = k.spawn(node, "a", hog()).nice(Nice::new(n1).unwrap()).build();
        let b = k.spawn(node, "b", hog()).nice(Nice::new(n2).unwrap()).build();
        k.run_for(SimDuration::from_secs(20));
        let ca = k.thread_info(a).unwrap().cputime.as_secs_f64();
        let cb = k.thread_info(b).unwrap().cputime.as_secs_f64();
        let measured = ca / cb;
        let expected = Nice::new(n1).unwrap().weight() as f64
            / Nice::new(n2).unwrap().weight() as f64;
        prop_assert!(
            (measured / expected - 1.0).abs() < 0.08,
            "nice ({n1},{n2}): measured {measured}, expected {expected}"
        );
    }

    /// Sibling cgroups split CPU in proportion to cpu.shares regardless of
    /// how many threads each contains.
    #[test]
    fn shares_ratio_controls_group_split(
        s1 in 64u64..8192,
        s2 in 64u64..8192,
        t1 in 1usize..4,
        t2 in 1usize..4,
    ) {
        prop_assume!(s1.max(s2) as f64 / s1.min(s2) as f64 <= 16.0);
        let mut k = Kernel::new(quiet_config());
        let node = k.add_node("n", 1);
        let root = k.node_root(node).unwrap();
        let g1 = k.create_cgroup(root, "g1", s1).unwrap();
        let g2 = k.create_cgroup(root, "g2", s2).unwrap();
        for i in 0..t1 {
            k.spawn(node, &format!("a{i}"), hog()).cgroup(g1).build();
        }
        for i in 0..t2 {
            k.spawn(node, &format!("b{i}"), hog()).cgroup(g2).build();
        }
        k.run_for(SimDuration::from_secs(20));
        let c1 = k.cgroup_info(g1).unwrap().cputime.as_secs_f64();
        let c2 = k.cgroup_info(g2).unwrap().cputime.as_secs_f64();
        let measured = c1 / c2;
        let expected = s1 as f64 / s2 as f64;
        prop_assert!(
            (measured / expected - 1.0).abs() < 0.10,
            "shares ({s1},{s2}) threads ({t1},{t2}): measured {measured}, expected {expected}"
        );
    }

    /// CPU time is conserved: sum of thread cputime equals node busy time,
    /// and busy + idle equals capacity.
    #[test]
    fn cpu_time_is_conserved(nthreads in 1usize..8, cpus in 1usize..4, secs in 1u64..5) {
        let mut k = Kernel::new(quiet_config());
        let node = k.add_node("n", cpus);
        let mut tids = Vec::new();
        for i in 0..nthreads {
            tids.push(k.spawn(node, &format!("t{i}"), hog()).build());
        }
        k.run_for(SimDuration::from_secs(secs));
        let stats = k.node_stats(node).unwrap();
        let total_thread: u64 = tids
            .iter()
            .map(|t| k.thread_info(*t).unwrap().cputime.as_nanos())
            .sum();
        prop_assert_eq!(total_thread, stats.busy.as_nanos());
        prop_assert_eq!(
            stats.busy.as_nanos() + stats.idle.as_nanos(),
            secs * 1_000_000_000 * cpus as u64
        );
    }

    /// The simulation is deterministic: the same setup yields identical
    /// per-thread cputimes on every run.
    #[test]
    fn simulation_is_deterministic(nthreads in 2usize..6, nice_step in 0i32..5) {
        let run = || {
            let mut k = Kernel::default();
            let node = k.add_node("n", 2);
            let mut out = Vec::new();
            for i in 0..nthreads {
                let nice = Nice::clamped(i as i32 * nice_step - 5);
                let t = k
                    .spawn(node, &format!("t{i}"), hog())
                    .nice(nice)
                    .build();
                out.push(t);
            }
            k.run_for(SimDuration::from_secs(3));
            out
                .into_iter()
                .map(|t| k.thread_info(t).unwrap().cputime.as_nanos())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Blocked threads consume no CPU and fairness holds among the rest.
#[test]
fn blocked_threads_consume_nothing() {
    let mut k = Kernel::new(quiet_config());
    let node = k.add_node("n", 1);
    let ch = k.new_wait_channel();
    let blocked = k
        .spawn(node, "blocked", move |_: &mut simos::SimCtx| {
            simos::Action::Block(ch)
        })
        .build();
    let worker = k.spawn(node, "worker", hog()).build();
    k.run_for(SimDuration::from_secs(1));
    assert_eq!(k.thread_info(blocked).unwrap().cputime, SimDuration::ZERO);
    assert_eq!(
        k.thread_info(worker).unwrap().cputime,
        SimDuration::from_secs(1)
    );
}
