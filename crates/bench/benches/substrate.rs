//! Micro-benchmarks of the substrates: the simulated kernel's event loop
//! (simulated-seconds per wall-second) and the hot data structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use queries::BloomFilter;
use simos::{machines, FixedWork, Kernel, SimDuration};
use spe::{deploy, EngineConfig, LogHistogram, Placement};

/// Raw scheduler dispatch rate: N CPU-bound threads on 4 cores.
fn kernel_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_dispatch");
    for threads in [4usize, 16, 64] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            b.iter_batched(
                || {
                    let mut k = Kernel::default();
                    let node = k.add_node("n", 4);
                    for i in 0..n {
                        k.spawn(node, &format!("t{i}"), FixedWork::endless(SimDuration::from_micros(100)))
                            .build();
                    }
                    k
                },
                |mut k| k.run_for(SimDuration::from_millis(100)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// End-to-end engine simulation rate for the LR query at saturation.
fn engine_simulation(c: &mut Criterion) {
    c.bench_function("simulate_1s_lr_at_5000tps", |b| {
        b.iter_batched(
            || {
                let mut kernel = Kernel::new(machines::odroid_config());
                let node = machines::add_odroid(&mut kernel, "odroid");
                let _q = deploy(
                    &mut kernel,
                    queries::lr(5_000.0, 1),
                    EngineConfig::storm(),
                    &Placement::single(node),
                    None,
                )
                .unwrap();
                kernel
            },
            |mut kernel| kernel.run_for(SimDuration::from_secs(1)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn histogram(c: &mut Criterion) {
    c.bench_function("loghistogram_record", |b| {
        let mut h = LogHistogram::new();
        let mut x = 0.001;
        b.iter(|| {
            x = (x * 1.37) % 10.0 + 1e-6;
            h.record(x);
        })
    });
    let mut h = LogHistogram::new();
    for i in 1..100_000 {
        h.record(i as f64 * 1e-5);
    }
    c.bench_function("loghistogram_p999", |b| b.iter(|| h.quantile(0.999)));
}

fn bloom(c: &mut Criterion) {
    let mut filter = BloomFilter::new(1 << 16, 4);
    let mut i = 0u64;
    c.bench_function("bloom_check_and_insert", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B97F4A7C15);
            filter.check_and_insert(i)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = kernel_dispatch, engine_simulation, histogram, bloom
);
criterion_main!(benches);
