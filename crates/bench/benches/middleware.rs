//! Micro-benchmarks of the Lachesis middleware path: metric resolution,
//! policy computation, normalization and translator application. These
//! back the paper's observation that Lachesis' own footprint is ~1% CPU
//! (§6.7): one full scheduling period must cost far less than the 1 s
//! between periods.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lachesis::{
    to_nice, to_shares, LachesisBuilder, NiceTranslator, PriorityKind, QueueSizePolicy, Scope,
    StoreDriver,
};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement, RunningQuery};

fn deployed_syn(pipelines: usize) -> (Kernel, RunningQuery, Rc<RefCell<TimeSeriesStore>>) {
    let mut kernel = Kernel::new(machines::server_config());
    let node = machines::add_server(&mut kernel, "xeon");
    let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
    let cfg = queries::SynConfig {
        queries: pipelines,
        ..queries::SynConfig::default()
    };
    let q = deploy(
        &mut kernel,
        queries::syn(100.0 * pipelines as f64, cfg),
        EngineConfig::liebre(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .unwrap();
    // Populate the metric store with a couple of reporting periods.
    kernel.run_for(SimDuration::from_secs(3));
    (kernel, q, store)
}

/// One full Algorithm-1 iteration (metrics + policy + translation) at
/// different operator counts.
fn full_scheduling_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_period");
    for pipelines in [2usize, 20, 100] {
        let ops = pipelines * 5;
        let (mut kernel, q, store) = deployed_syn(pipelines);
        let mut lachesis = LachesisBuilder::new()
            .driver(StoreDriver::liebre(vec![q], store))
            .policy(
                0,
                Scope::AllQueries,
                QueueSizePolicy::new(SimDuration::from_nanos(1)), // always due
                NiceTranslator::new(),
            )
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| {
                // Advance the clock one tick so the policy is due again.
                kernel.run_for(SimDuration::from_nanos(1));
                lachesis.run_if_due(&mut kernel).unwrap()
            });
        });
    }
    group.finish();
}

fn normalization(c: &mut Criterion) {
    let values: Vec<f64> = (0..1_000).map(|i| (i as f64 * 37.0) % 997.0).collect();
    c.bench_function("to_nice_1000_linear", |b| {
        b.iter(|| to_nice(std::hint::black_box(&values), PriorityKind::Linear))
    });
    c.bench_function("to_shares_1000_log", |b| {
        b.iter(|| to_shares(std::hint::black_box(&values), PriorityKind::Logarithmic, 2, 2048))
    });
}

fn metric_store(c: &mut Criterion) {
    let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
    for s in 0..600u64 {
        for op in 0..100 {
            store.record(
                &format!("liebre.syn.{op}.queue.size"),
                simos::SimTime::ZERO + SimDuration::from_secs(s),
                s as f64,
            );
        }
    }
    c.bench_function("store_latest_100_series", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for op in 0..100 {
                if let Some((_, v)) = store.latest(&format!("liebre.syn.{op}.queue.size")) {
                    acc += v;
                }
            }
            acc
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = full_scheduling_period, normalization, metric_store
);
criterion_main!(benches);
