//! Experiment harness: deploys queries, attaches schedulers, runs
//! warm-up + measurement phases, and extracts the paper's metrics (§3.2).

use std::cell::RefCell;
use std::rc::Rc;

use lachesis_metrics::TimeSeriesStore;
use simos::{Kernel, NodeId, SimDuration};
use spe::{LogHistogram, RunningQuery};

/// The value a scheduling policy tries to optimize, sampled once per
/// second during measurement (the bottom rows of Figs. 5–16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoalKind {
    /// QS goal: variance of operator input queue sizes.
    QueueSizeVariance,
    /// FCFS goal: maximum head-of-queue tuple age (seconds).
    MaxHeadAge,
    /// HR goal: average tuple (processing) latency — computed from sinks
    /// at the end of the run rather than sampled.
    AvgLatency,
}

/// Summary statistics of one trial run.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Offered load (sum of source rates), tuples/s.
    pub offered_tps: f64,
    /// Measured throughput: ingress tuples per second.
    pub throughput_tps: f64,
    /// Mean processing latency, seconds.
    pub latency_mean_s: f64,
    /// Processing latency percentiles: (p50, p99, p99.9), seconds.
    pub latency_p: (f64, f64, f64),
    /// Mean end-to-end latency, seconds.
    pub e2e_mean_s: f64,
    /// End-to-end latency percentiles: (p50, p99, p99.9), seconds.
    pub e2e_p: (f64, f64, f64),
    /// End-to-end latency target (SLO) for this point, seconds; `0.0`
    /// means no target was set and the miss rate is meaningless.
    pub slo_target_s: f64,
    /// Fraction of end-to-end samples above [`slo_target_s`], at the
    /// histogram's ~5% bucket resolution (see [`apply_slo`]).
    ///
    /// [`slo_target_s`]: Measured::slo_target_s
    pub slo_miss_rate: f64,
    /// Mean sampled policy-goal value.
    pub goal: f64,
    /// Per-operator queue sizes sampled each second (pooled over queries).
    pub queue_samples: Vec<Vec<usize>>,
    /// CPU utilization of the measured node(s), 0–1.
    pub utilization: f64,
    /// Context switches per simulated second.
    pub ctx_switches_per_s: f64,
    /// Egress tuples per second (for selectivity sanity checks).
    pub egress_tps: f64,
}

/// Latency distributions captured alongside [`Measured`] (Fig. 13).
#[derive(Debug, Clone)]
pub struct Distributions {
    /// Processing latency histogram.
    pub latency: LogHistogram,
    /// End-to-end latency histogram.
    pub e2e: LogHistogram,
}

/// Trial phase durations.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Discarded warm-up time.
    pub warmup: SimDuration,
    /// Measured time.
    pub measure: SimDuration,
    /// Which goal to sample.
    pub goal: GoalKind,
}

impl RunConfig {
    /// Full-length runs (30 s measured after 5 s warm-up).
    pub fn full(goal: GoalKind) -> Self {
        RunConfig {
            warmup: SimDuration::from_secs(5),
            measure: SimDuration::from_secs(30),
            goal,
        }
    }

    /// Quick runs for smoke testing (10 s measured after 3 s warm-up).
    pub fn quick(goal: GoalKind) -> Self {
        RunConfig {
            warmup: SimDuration::from_secs(3),
            measure: SimDuration::from_secs(10),
            goal,
        }
    }
}

/// Creates the shared Graphite-like store with the paper's 1 s resolution.
pub fn new_store() -> Rc<RefCell<TimeSeriesStore>> {
    Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))))
}

/// Runs warm-up + measurement over already-deployed queries and collects
/// the metrics. The scheduler (if any) must already be attached.
pub fn run_trial(
    kernel: &mut Kernel,
    nodes: &[NodeId],
    queries: &[RunningQuery],
    cfg: &RunConfig,
) -> (Measured, Distributions) {
    // Warm-up.
    kernel.run_for(cfg.warmup);
    for q in queries {
        q.reset_stats();
    }
    let busy_before: u64 = nodes
        .iter()
        .map(|&n| kernel.node_stats(n).unwrap().busy.as_nanos())
        .sum();
    let ctx_before: u64 = nodes
        .iter()
        .map(|&n| kernel.node_stats(n).unwrap().ctx_switches)
        .sum();

    // Samplers: goal + queue sizes, once per second.
    let goal_samples: Rc<RefCell<Vec<f64>>> = Rc::default();
    let queue_samples: Rc<RefCell<Vec<Vec<usize>>>> = Rc::default();
    let sampler_queries: Vec<RunningQuery> = queries.to_vec();
    let goal_kind = cfg.goal;
    let gs = Rc::clone(&goal_samples);
    let qs = Rc::clone(&queue_samples);
    let sampler = kernel.schedule_periodic(
        SimDuration::from_secs(1),
        SimDuration::from_secs(1),
        move |k| {
            // Ingress queues are the external source buffer, not operator
            // input queues: goals and queue distributions exclude them.
            let mut sizes: Vec<usize> = Vec::new();
            let mut head_ages: Vec<f64> = Vec::new();
            for q in &sampler_queries {
                for c in q.cells() {
                    if c.is_ingress() {
                        continue;
                    }
                    sizes.push(c.in_queue().len());
                    if let Some(a) = c.in_queue().head_age(k.now()) {
                        head_ages.push(a);
                    }
                }
            }
            let goal = match goal_kind {
                GoalKind::QueueSizeVariance => {
                    let n = sizes.len().max(1) as f64;
                    let mean = sizes.iter().sum::<usize>() as f64 / n;
                    sizes
                        .iter()
                        .map(|&s| (s as f64 - mean).powi(2))
                        .sum::<f64>()
                        / n
                }
                GoalKind::MaxHeadAge => head_ages.iter().copied().fold(0.0, f64::max),
                GoalKind::AvgLatency => 0.0, // from sinks at the end
            };
            gs.borrow_mut().push(goal);
            qs.borrow_mut().push(sizes);
        },
    );

    kernel.run_for(cfg.measure);
    kernel.cancel_callback(sampler);

    let secs = cfg.measure.as_secs_f64();
    let ingress: u64 = queries.iter().map(|q| q.ingress_total()).sum();
    let egress: u64 = queries.iter().map(|q| q.egress_total()).sum();
    let offered: f64 = queries
        .iter()
        .flat_map(|q| q.sources().iter().map(|s| s.borrow().rate_tps()))
        .sum();
    let mut latency = LogHistogram::new();
    let mut e2e = LogHistogram::new();
    for q in queries {
        latency.merge(&q.latency_histogram());
        e2e.merge(&q.e2e_histogram());
    }
    let goal = {
        let samples = goal_samples.borrow();
        match cfg.goal {
            GoalKind::AvgLatency => latency.mean().unwrap_or(0.0),
            _ if samples.is_empty() => 0.0,
            _ => samples.iter().sum::<f64>() / samples.len() as f64,
        }
    };
    let busy_after: u64 = nodes
        .iter()
        .map(|&n| kernel.node_stats(n).unwrap().busy.as_nanos())
        .sum();
    let ctx_after: u64 = nodes
        .iter()
        .map(|&n| kernel.node_stats(n).unwrap().ctx_switches)
        .sum();
    let cpus: usize = nodes
        .iter()
        .map(|&n| kernel.node_stats(n).unwrap().cpus)
        .sum();
    let capacity = secs * cpus as f64;

    let q = |h: &LogHistogram, p: f64| h.quantile(p).unwrap_or(0.0);
    let measured = Measured {
        offered_tps: offered,
        throughput_tps: ingress as f64 / secs,
        latency_mean_s: latency.mean().unwrap_or(0.0),
        latency_p: (q(&latency, 0.5), q(&latency, 0.99), q(&latency, 0.999)),
        e2e_mean_s: e2e.mean().unwrap_or(0.0),
        e2e_p: (q(&e2e, 0.5), q(&e2e, 0.99), q(&e2e, 0.999)),
        slo_target_s: 0.0,
        slo_miss_rate: 0.0,
        goal,
        queue_samples: queue_samples.take(),
        utilization: (busy_after - busy_before) as f64 / 1e9 / capacity,
        ctx_switches_per_s: (ctx_after - ctx_before) as f64 / secs,
        egress_tps: egress as f64 / secs,
    };
    (measured, Distributions { latency, e2e })
}

/// Annotates a measurement with an SLO verdict: stores the end-to-end
/// latency target and the fraction of measured end-to-end samples above
/// it, read from the trial's latency distribution at the histogram's ~5%
/// bucket resolution. A non-positive `target_s` clears the verdict.
pub fn apply_slo(m: &mut Measured, dist: &Distributions, target_s: f64) {
    if target_s > 0.0 {
        m.slo_target_s = target_s;
        m.slo_miss_rate = dist.e2e.fraction_above(target_s).unwrap_or(0.0);
    } else {
        m.slo_target_s = 0.0;
        m.slo_miss_rate = 0.0;
    }
}

/// Averages several repetitions into one point (queue samples pooled).
pub fn average_runs(mut runs: Vec<Measured>) -> Measured {
    assert!(!runs.is_empty(), "no runs to average");
    let n = runs.len() as f64;
    let mut acc = runs.pop().expect("non-empty");
    for r in &runs {
        acc.throughput_tps += r.throughput_tps;
        acc.latency_mean_s += r.latency_mean_s;
        acc.e2e_mean_s += r.e2e_mean_s;
        acc.goal += r.goal;
        acc.utilization += r.utilization;
        acc.ctx_switches_per_s += r.ctx_switches_per_s;
        acc.egress_tps += r.egress_tps;
        acc.latency_p.0 += r.latency_p.0;
        acc.latency_p.1 += r.latency_p.1;
        acc.latency_p.2 += r.latency_p.2;
        acc.e2e_p.0 += r.e2e_p.0;
        acc.e2e_p.1 += r.e2e_p.1;
        acc.e2e_p.2 += r.e2e_p.2;
        // The SLO target is a configuration knob, identical across reps:
        // keep it rather than averaging it.
        acc.slo_miss_rate += r.slo_miss_rate;
        acc.queue_samples.extend(r.queue_samples.iter().cloned());
    }
    acc.throughput_tps /= n;
    acc.latency_mean_s /= n;
    acc.e2e_mean_s /= n;
    acc.goal /= n;
    acc.utilization /= n;
    acc.ctx_switches_per_s /= n;
    acc.egress_tps /= n;
    acc.latency_p.0 /= n;
    acc.latency_p.1 /= n;
    acc.latency_p.2 /= n;
    acc.e2e_p.0 /= n;
    acc.e2e_p.1 /= n;
    acc.e2e_p.2 /= n;
    acc.slo_miss_rate /= n;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(tput: f64, lat: f64) -> Measured {
        Measured {
            offered_tps: tput,
            throughput_tps: tput,
            latency_mean_s: lat,
            latency_p: (lat, lat * 2.0, lat * 3.0),
            e2e_mean_s: lat * 1.5,
            e2e_p: (lat, lat, lat),
            slo_target_s: 0.5,
            slo_miss_rate: lat,
            goal: 1.0,
            queue_samples: vec![vec![1, 2]],
            utilization: 0.5,
            ctx_switches_per_s: 100.0,
            egress_tps: tput,
        }
    }

    #[test]
    fn average_runs_means_scalars_and_pools_samples() {
        let avg = average_runs(vec![m(100.0, 0.1), m(300.0, 0.3)]);
        assert_eq!(avg.throughput_tps, 200.0);
        assert!((avg.latency_mean_s - 0.2).abs() < 1e-12);
        assert!((avg.latency_p.1 - 0.4).abs() < 1e-12);
        assert!((avg.e2e_mean_s - 0.3).abs() < 1e-12);
        assert_eq!(avg.queue_samples.len(), 2, "samples pooled, not averaged");
    }

    #[test]
    fn average_of_one_is_identity() {
        let one = m(42.0, 0.5);
        let avg = average_runs(vec![one.clone()]);
        assert_eq!(avg.throughput_tps, one.throughput_tps);
        assert_eq!(avg.latency_p, one.latency_p);
    }

    #[test]
    #[should_panic]
    fn average_of_none_panics() {
        let _ = average_runs(vec![]);
    }

    #[test]
    fn run_config_presets() {
        let full = RunConfig::full(GoalKind::MaxHeadAge);
        assert_eq!(full.measure, SimDuration::from_secs(30));
        let quick = RunConfig::quick(GoalKind::AvgLatency);
        assert!(quick.measure < full.measure);
        assert_eq!(quick.goal, GoalKind::AvgLatency);
    }
}
